"""Legacy shim: all metadata lives in pyproject.toml.

Kept so `python setup.py develop` still works in offline environments
whose setuptools predates bundled wheel support; normal installs should
use `pip install -e .`.
"""

from setuptools import setup

setup()
