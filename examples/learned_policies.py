#!/usr/bin/env python3
"""Learned policies: online-learning bandits vs. the static registry.

Demonstrates the learned policy species (``repro.policy.learned``) end
to end:

1. the learned-vs-static bake-off across the three drift scenarios —
   bursty MMPP admission, tenant-churn dispatch, heterogeneous-fleet
   placement — each run as one single-axis policy grid where the
   learned policy is just another cell, judged on goodput at equal SLO
   compliance;
2. one within-run learning curve: the heterogeneous placement scenario
   binned into arrival windows, showing SLO compliance climbing as the
   placement bandit's feedback count grows;
3. the determinism receipt: the same learned run twice, byte-identical
   reports (exploration is seeded, never wall clock).

Optionally writes the bake-off as JSON (used by CI to publish the
learned-vs-static numbers as a workflow artifact):

    python examples/learned_policies.py [--quick] [--summary-json PATH]
"""

import argparse
import json

from repro.cluster import run_cluster
from repro.eval import (
    ExperimentOrchestrator,
    bursty_scenario,
    format_learned,
    hetero_devices,
    hetero_scenario,
    learned_bakeoff,
    learning_curve,
)
from repro.platform import ClusterConfig
from repro.policy import PolicySpec


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="shrink every scenario for a CI smoke run")
    parser.add_argument("--summary-json", default=None,
                        help="write the bake-off summary to this JSON file")
    args = parser.parse_args()

    orchestrator = ExperimentOrchestrator(workers=4)

    print("== Learned vs. static policies ==")
    comparisons = learned_bakeoff(quick=args.quick,
                                  orchestrator=orchestrator)
    print(format_learned(comparisons))

    print("\n== Learning curve (adaptive admission, single run) ==")
    curve_scenario = bursty_scenario(
        duration_s=2.0 if args.quick else 4.0).with_overrides(
        admission_spec=PolicySpec("adaptive_admission"))
    curve = learning_curve(curve_scenario, windows=8)
    for window in curve:
        bar = "#" * round(40 * window.slo_compliance)
        print(f"  [{window.start_s:4.2f}s..{window.end_s:4.2f}s)  "
              f"offered {window.offered:4d}  "
              f"slo_ok {100 * window.slo_compliance:6.2f}%  {bar}")

    print("\n== Placement bandit state (hetero fleet) ==")
    scenario = hetero_scenario(duration_s=2.0 if args.quick else 4.0)
    cluster = ClusterConfig(devices=hetero_devices(),
                            placement_spec=PolicySpec("linucb_placement"))
    report = run_cluster(scenario, cluster)
    snapshot = report.learned["placement"]
    print(f"  placement bandit: {snapshot['decisions']} decisions, "
          f"{snapshot['feedback_events']} feedback events, "
          f"{snapshot['explore_count']} explored")
    for index in sorted(snapshot["arms"], key=int):
        arm = snapshot["arms"][index]
        theta = ", ".join(f"{t:.4f}" for t in arm["theta"])
        print(f"  arm {index}: {arm['count']:5d} obs  theta=[{theta}]")

    print("\n== Determinism receipt ==")
    repeat = run_cluster(scenario, cluster)
    first = json.dumps(report.to_dict(), sort_keys=True)
    second = json.dumps(repeat.to_dict(), sort_keys=True)
    print(f"  same-seed repeat byte-identical: {first == second}")

    if args.summary_json:
        payload = {
            "quick": args.quick,
            "comparisons": [
                {
                    "scenario": comp.scenario,
                    "domain": comp.domain,
                    "beats_best_static": comp.beats_best_static(),
                    "cells": [vars(cell) for cell in comp.cells],
                }
                for comp in comparisons
            ],
            "determinism": {"byte_identical": first == second},
        }
        with open(args.summary_json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote learned summary to {args.summary_json}")


if __name__ == "__main__":
    main()
