#!/usr/bin/env python3
"""Compare the four FlashAbacus schedulers on a heterogeneous mix.

The paper's Section 4 introduces four policies — static inter-kernel
(InterSt), dynamic inter-kernel (InterDy), in-order intra-kernel (IntraIo)
and out-of-order intra-kernel (IntraO3).  This example offloads one of the
Table 2 heterogeneous mixes (six applications, several instances each) to
all four and shows where each policy wins and loses: throughput, average
kernel latency, worker utilization, and how many screens the out-of-order
scheduler "borrowed" across kernel boundaries.

The four scheduler runs are dispatched through the experiment
orchestrator: each simulation owns an independent environment, so they
execute in parallel worker processes, and re-running the example serves
the results from the orchestrator cache when ``REPRO_CACHE_DIR`` is set.

Run with:  python examples/scheduler_comparison.py [MX1..MX14]
"""

import sys

from repro import PlatformConfig
from repro.eval import ExperimentOrchestrator, WorkloadSpec, format_table
from repro.workloads import MIX_COMPOSITIONS

INPUT_SCALE = 0.1
INSTANCES_PER_KERNEL = 2
SCHEDULERS = ("InterSt", "IntraIo", "InterDy", "IntraO3")


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "MX1"
    if mix not in MIX_COMPOSITIONS:
        raise SystemExit(f"unknown mix {mix!r}; choose MX1..MX14")
    print(f"Heterogeneous mix {mix}: {', '.join(MIX_COMPOSITIONS[mix])}")
    print(f"{INSTANCES_PER_KERNEL} instances per kernel, "
          f"input scale {INPUT_SCALE}\n")

    # from_env honors REPRO_CACHE_DIR (persistent cache) and REPRO_PARALLEL.
    orchestrator = ExperimentOrchestrator.from_env(
        default_workers=len(SCHEDULERS))
    comparison = orchestrator.compare(
        WorkloadSpec("heterogeneous", mix), SCHEDULERS,
        PlatformConfig(instances=INSTANCES_PER_KERNEL,
                       input_scale=INPUT_SCALE))

    rows = []
    for scheduler in SCHEDULERS:
        report = comparison.reports[scheduler]
        latency = report.latency_summary()
        rows.append((scheduler,
                     report.throughput_mb_per_s,
                     latency.mean,
                     latency.max,
                     report.worker_utilization * 100.0,
                     int(report.scheduler_stats.get("borrowed_dispatches", 0))))

    print(format_table(
        ["scheduler", "MB/s", "avg latency (s)", "max latency (s)",
         "util (%)", "borrowed screens"], rows))

    print("\nWhat to look for (paper, Section 5.1/5.2):")
    print(" * InterSt suffers from load imbalance: lowest throughput, "
          "longest average latency.")
    print(" * InterDy keeps every LWP busy but a straggler kernel bounds "
          "its makespan.")
    print(" * IntraO3 borrows screens across kernels, shortening the "
          "straggler and achieving the best mix throughput.")


if __name__ == "__main__":
    main()
