#!/usr/bin/env python3
"""Cross-layer policy grid: one sweep over every policy domain at once.

With all four policy families on the unified registry (``repro.policy``),
comparing policies is a cross product, not a script per family: this
driver runs scheduler x admission x dispatch x placement as ONE
orchestrated batch (cached cells served from disk, uncached ones fanned
out over the worker pool) and prints the fleet-level outcome per
combination plus the best SLO-compliant pick.

The default grid is 2x2x2x2 over the headline schedulers, a depth-bound
vs. deadline-aware admission pair, round-robin vs. weighted-fair
dispatch, and round-robin vs. least-outstanding placement; ``--wide``
grows the admission axis with the token-bucket limiter and the placement
axis with join-shortest-queue (both added *through* the registry — each
is one registered class).

    python examples/policy_grid.py [--quick] [--wide]
                                   [--summary-json PATH]
"""

import argparse
import json

from repro import PlatformConfig
from repro.eval import (
    ExperimentOrchestrator,
    best_by_goodput,
    format_policy_grid,
    policy_grid,
)
from repro.policy import PolicySpec
from repro.serve import ServingScenario, TenantSpec

INPUT_SCALE = 0.01
SLO_S = 0.25
OFFERED_RPS = 480.0             # past the ~240 rps single-device knee
DEVICE_COUNT = 2
TENANTS = (TenantSpec("tenant-a", weight=2.0, slo_s=SLO_S),
           TenantSpec("tenant-b", weight=1.0, slo_s=SLO_S))

SCHEDULERS = ("InterDy", "IntraO3")
ADMISSIONS = (PolicySpec("queue_depth", {"max_tenant_depth": 24}),
              PolicySpec("deadline", {"slack_factor": 1.2}))
DISPATCHES = ("round_robin", "weighted_fair")
PLACEMENTS = ("round_robin", "least_outstanding")

WIDE_ADMISSIONS = (PolicySpec("token_bucket",
                              {"rate_rps": 150.0, "burst": 20.0}),)
WIDE_PLACEMENTS = ("join_shortest_queue",)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="tiny grid (short run; the CI smoke step)")
    parser.add_argument("--wide", action="store_true",
                        help="add token_bucket admission and "
                             "join_shortest_queue placement to the axes")
    parser.add_argument("--summary-json", default=None,
                        help="write the grid summary to this JSON file")
    args = parser.parse_args()

    duration_s = 0.5 if args.quick else 1.0
    scenario = ServingScenario(
        process="poisson", offered_rps=OFFERED_RPS, duration_s=duration_s,
        seed=7, tenants=TENANTS)
    device = PlatformConfig(system="IntraO3", input_scale=INPUT_SCALE)
    admissions = ADMISSIONS + (WIDE_ADMISSIONS if args.wide else ())
    placements = PLACEMENTS + (WIDE_PLACEMENTS if args.wide else ())

    orchestrator = ExperimentOrchestrator(workers=4)
    points = policy_grid(
        schedulers=SCHEDULERS, admissions=admissions,
        dispatches=DISPATCHES, placements=placements,
        scenario=scenario, device_config=device,
        device_count=DEVICE_COUNT, orchestrator=orchestrator)

    cells = (len(SCHEDULERS) * len(admissions) * len(DISPATCHES)
             * len(placements))
    print(f"== Policy grid: {len(SCHEDULERS)}x{len(admissions)}"
          f"x{len(DISPATCHES)}x{len(placements)} = {cells} cells, "
          f"{DEVICE_COUNT} devices @ {OFFERED_RPS:g} rps ==")
    print(format_policy_grid(points, slo_s=SLO_S))
    stats = orchestrator.cache_stats
    print(f"\norchestrator: {stats['misses']} simulated, "
          f"{stats['hits']} served from cache")

    if args.summary_json:
        best = best_by_goodput(points, slo_s=SLO_S)
        summary = {
            "slo_s": SLO_S,
            "offered_rps": OFFERED_RPS,
            "device_count": DEVICE_COUNT,
            "axes": {
                "scheduler": list(SCHEDULERS),
                "admission": [spec.name if isinstance(spec, PolicySpec)
                              else spec for spec in admissions],
                "dispatch": list(DISPATCHES),
                "placement": list(placements),
            },
            "points": [vars(point) for point in points],
            "best": None if best is None else vars(best),
        }
        with open(args.summary_json, "w") as handle:
            json.dump(summary, handle, indent=2)
        print(f"wrote policy-grid summary to {args.summary_json}")


if __name__ == "__main__":
    main()
