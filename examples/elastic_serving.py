#!/usr/bin/env python3
"""Elastic fleets: an autoscaled cluster vs. provisioning for the peak.

Demonstrates the ``autoscaler`` policy domain end to end:

1. the elastic-vs-static sweep across the three ROADMAP scenarios —
   diurnal traffic, a spot-style preemption drill, tenant churn — each
   run twice (autoscaled within ``[min, max]`` devices, and pinned at
   ``max``) and compared on device-seconds at equal SLO compliance;
2. one fleet-size timeline, printed tick by tick, showing the warm-up /
   drain lifecycle reacting to the diurnal ramp;
3. the drain-safety contract: across every scale-down, zero admitted
   requests are dropped.

Optionally writes the comparison as JSON (used by CI to publish the
elastic numbers as a workflow artifact):

    python examples/elastic_serving.py [--quick] [--summary-json PATH]
"""

import argparse
import json

from repro.eval import (
    DEFAULT_AUTOSCALER,
    ExperimentOrchestrator,
    diurnal_scenario,
    elastic_cluster,
    elastic_sweep,
    format_elastic,
)
from repro.cluster import run_cluster


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="shrink every scenario for a CI smoke run")
    parser.add_argument("--summary-json", default=None,
                        help="write the elastic summary to this JSON file")
    args = parser.parse_args()

    orchestrator = ExperimentOrchestrator(workers=4)

    print("== Elastic vs. static-max fleet ==")
    comparisons = elastic_sweep(quick=args.quick,
                                orchestrator=orchestrator)
    print(format_elastic(comparisons))

    print("\n== Fleet-size timeline (diurnal) ==")
    scenario = (diurnal_scenario(peak_rps=360.0, duration_s=2.0,
                                 period_s=2.0) if args.quick
                else diurnal_scenario())
    report = run_cluster(scenario, elastic_cluster())
    summary = report.autoscaler
    print(f"  policy {summary['policy']['name']}, "
          f"bounds [{summary['min_devices']}, {summary['max_devices']}], "
          f"warmup {summary['warmup_s']}s")
    for time_s, size in summary["size_timeline"]:
        print(f"  t={time_s:5.2f}s  fleet={size}  " + "#" * size)
    for time_s, action, device in summary["events"]:
        print(f"  t={time_s:5.2f}s  {action:>10}  device {device}")

    dropped = report.admitted - report.completed
    print(f"\n  admitted {report.admitted}, completed {report.completed} "
          f"(dropped {dropped}) across "
          f"{len(summary['events'])} scale events — drain-safe")

    if args.summary_json:
        payload = {
            "autoscaler": DEFAULT_AUTOSCALER.to_dict(),
            "quick": args.quick,
            "comparisons": [
                {
                    "scenario": comp.scenario,
                    "device_seconds_saved_pct":
                        comp.device_seconds_saved_pct,
                    "compliance_gap": comp.compliance_gap,
                    "elastic": vars(comp.elastic),
                    "static": vars(comp.static),
                }
                for comp in comparisons
            ],
            "timeline": {
                "size_timeline": summary["size_timeline"],
                "events": summary["events"],
                "total_device_seconds": summary["total_device_seconds"],
                "dropped": dropped,
            },
        }
        with open(args.summary_json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote elastic summary to {args.summary_json}")


if __name__ == "__main__":
    main()
