#!/usr/bin/env python3
"""Quickstart: run one PolyBench workload on FlashAbacus and on the baseline.

This is the smallest end-to-end use of the public API:

1. describe each platform with a :class:`repro.PlatformConfig` (the single
   entry point for spec, scheduler, instance counts, scale, and feature
   toggles),
2. build a workload (six instances of ATAX, as in the paper's homogeneous
   evaluation),
3. run it on the FlashAbacus accelerator with the out-of-order intra-kernel
   scheduler (``IntraO3``) and on the conventional ``SIMD`` baseline
   (host + NVMe SSD + storage stack),
4. compare throughput, energy, and LWP utilization.

Run with:  python examples/quickstart.py
"""

from repro import PlatformConfig
from repro.eval import format_table, improvement_pct, run_system
from repro.workloads import homogeneous_workload

# Scale the 640 MB-per-instance data set down so the example finishes in a
# couple of seconds; every reported ratio is invariant to this factor.
INPUT_SCALE = 0.1
INSTANCES = 6


def main() -> None:
    workload_name = "ATAX"

    flashabacus = run_system(
        PlatformConfig(system="IntraO3", instances=INSTANCES,
                       input_scale=INPUT_SCALE),
        homogeneous_workload(workload_name, instances=INSTANCES,
                             input_scale=INPUT_SCALE),
        workload_name=workload_name)

    simd = run_system(
        PlatformConfig(system="SIMD", instances=INSTANCES,
                       input_scale=INPUT_SCALE),
        homogeneous_workload(workload_name, instances=INSTANCES,
                             input_scale=INPUT_SCALE),
        workload_name=workload_name)

    rows = []
    for report in (simd, flashabacus):
        rows.append((report.system,
                     report.throughput_mb_per_s,
                     report.energy_joules,
                     report.worker_utilization * 100.0,
                     report.makespan_s))
    print(f"Workload: {workload_name} ({INSTANCES} instances, "
          f"input scale {INPUT_SCALE})\n")
    print(format_table(
        ["system", "throughput (MB/s)", "energy (J)", "LWP util (%)",
         "makespan (s)"], rows))

    gain = improvement_pct(flashabacus.throughput_mb_per_s,
                           simd.throughput_mb_per_s)
    saving = (1.0 - flashabacus.energy_joules / simd.energy_joules) * 100.0
    print(f"\nFlashAbacus (IntraO3) vs SIMD: {gain:+.0f}% throughput, "
          f"{saving:.0f}% less energy")
    print("Paper reports +127% bandwidth and 78.4% energy reduction on "
          "average across all workloads.")


if __name__ == "__main__":
    main()
