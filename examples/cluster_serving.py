#!/usr/bin/env python3
"""Cluster scale-out: shard open-loop serving across a fleet of devices.

Demonstrates the ``repro.cluster`` layer end to end:

1. a fleet-sizing scaling sweep through the experiment orchestrator —
   goodput and p99 vs. device count at a fixed offered load past the
   single-device knee;
2. a placement-policy comparison (round-robin vs. least-outstanding vs.
   tenant-affinity vs. power-aware) at the same load;
3. a failure drill — one device of four fails mid-run; its backlog is
   rerouted and every admitted request still completes.

Optionally writes the scaling summary as JSON (used by CI to publish the
fleet numbers as a workflow artifact):

    python examples/cluster_serving.py [--summary-json PATH]
"""

import argparse
import json

from repro import PlatformConfig, run_cluster
from repro.eval import (
    ExperimentOrchestrator,
    format_scaling_sweep,
    scaling_efficiency,
    scaling_sweep,
)
from repro.platform import ClusterConfig, FaultSpec
from repro.serve import ServingScenario, TenantSpec

INPUT_SCALE = 0.01
SLO_S = 0.25
OFFERED_RPS = 720.0             # past the ~240 rps single-device knee
DEVICE_COUNTS = (1, 2, 4)
TENANTS = (TenantSpec("tenant-a", weight=1.0, slo_s=SLO_S),
           TenantSpec("tenant-b", weight=1.0, slo_s=SLO_S))

SCENARIO = ServingScenario(
    process="poisson", offered_rps=OFFERED_RPS, duration_s=1.0, seed=3,
    tenants=TENANTS, max_queue_depth=24)

DEVICE = PlatformConfig(system="IntraO3", input_scale=INPUT_SCALE)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--summary-json", default=None,
                        help="write the scaling summary to this JSON file")
    args = parser.parse_args()

    orchestrator = ExperimentOrchestrator(workers=4)

    print("== Fleet scaling sweep ==")
    points = scaling_sweep(DEVICE_COUNTS, OFFERED_RPS, scenario=SCENARIO,
                           device_config=DEVICE,
                           orchestrator=orchestrator)
    print(format_scaling_sweep(points, slo_s=SLO_S))

    print("\n== Placement policies @ 4 devices ==")
    for placement in ("round_robin", "least_outstanding",
                      "tenant_affinity", "power_aware"):
        cluster = ClusterConfig.homogeneous(4, DEVICE, placement=placement)
        report = run_cluster(SCENARIO, cluster)
        p99 = report.p99_s
        print(f"  {placement:>18}: goodput {report.goodput_rps:7.1f} rps, "
              f"p99 {'n/a' if p99 is None else f'{p99 * 1e3:6.1f} ms'}, "
              f"routed {report.placement_stats['routed']}")

    # A saturated two-device fleet keeps real backlogs queued, so the
    # failure visibly reroutes requests (an idle fleet has nothing queued).
    print("\n== Failure drill: device 1 of 2 fails mid-run ==")
    drill = ClusterConfig.homogeneous(
        2, DEVICE, faults=(FaultSpec(0.4, 1, "failed"),))
    report = run_cluster(SCENARIO, drill)
    print(f"  admitted {report.admitted}, completed {report.completed} "
          f"(dropped {report.admitted - report.completed}), "
          f"rerouted {report.reroutes} queued requests off the failed "
          f"device")
    print(f"  final health: {report.placement_stats['final_health']}")

    if args.summary_json:
        summary = {
            "slo_s": SLO_S,
            "input_scale": INPUT_SCALE,
            "offered_rps": OFFERED_RPS,
            "device_counts": list(DEVICE_COUNTS),
            "speedups": scaling_efficiency(points),
            "points": [vars(point) for point in points],
            "failure_drill": {
                "admitted": report.admitted,
                "completed": report.completed,
                "reroutes": report.reroutes,
                "health_events": report.health_events,
            },
        }
        with open(args.summary_json, "w") as handle:
            json.dump(summary, handle, indent=2)
        print(f"\nwrote scaling summary to {args.summary_json}")


if __name__ == "__main__":
    main()
