#!/usr/bin/env python3
"""Observability tour: trace a serving run, report its bottleneck.

Demonstrates the ``repro.obs`` layer end to end:

1. one serving run with tracing *and* the metrics bus on — every request
   leaves a span trail (arrival → admit → dispatch → kernel →
   complete) and the bus samples queue depths, rates, utilization and
   the rolling p99 on a fixed sim-time cadence;
2. the trace-driven bottleneck breakdown — how much of the end-to-end
   time went to queueing vs. rerouting vs. service, per tenant, and
   which stage dominates;
3. a Chrome ``trace_event`` export — open the written JSON in Perfetto
   (https://ui.perfetto.dev) to see per-tenant lifecycles, the
   device's service/scheduler tracks and per-LWP screen executions:

       python examples/trace_serving.py [--out trace.json]
"""

import argparse

from repro import PlatformConfig
from repro.eval import bottleneck_breakdown, format_bottleneck
from repro.obs import ObsConfig, to_chrome_trace, write_chrome_trace
from repro.serve import ServingScenario, ServingSession, TenantSpec

# Scale the Table-2 data sets down so the example finishes in seconds.
INPUT_SCALE = 0.01
SLO_S = 0.25

SCENARIO = ServingScenario(
    process="poisson", offered_rps=60.0, duration_s=4.0, seed=7,
    tenants=(TenantSpec("web", weight=2.0, slo_s=SLO_S),
             TenantSpec("batch", weight=1.0, slo_s=SLO_S)))


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default=None,
                        help="write the Chrome trace_event JSON here")
    args = parser.parse_args()

    config = PlatformConfig(system="IntraO3", input_scale=INPUT_SCALE)
    session = ServingSession(SCENARIO, config, obs=ObsConfig())
    report = session.run()

    print("== run ==")
    print(f"offered {report.offered}, admitted {report.admitted}, "
          f"rejected {report.rejected}, completed {report.completed}; "
          f"goodput {report.goodput_rps:.1f} rps")

    tracer = session.tracer
    print(f"\n== trace ==\n{tracer.recorded} spans recorded "
          f"({tracer.dropped} dropped by the ring buffer)")
    for phase, count in sorted(tracer.phase_counts().items()):
        print(f"  {phase:14s} {count}")

    print("\n== metrics bus ==")
    timeline = session.metrics
    print(f"{len(timeline.names())} series at "
          f"{timeline.cadence_s}s cadence:")
    for name in timeline.names():
        latest = timeline.latest(name)
        shown = "n/a" if latest is None else f"{latest:.3f}"
        print(f"  {name:28s} samples={len(timeline.values(name)):4d} "
              f"last={shown}")

    print(f"\n{format_bottleneck(bottleneck_breakdown(tracer))}")

    if args.out:
        data = to_chrome_trace(tracer, label=SCENARIO.label)
        write_chrome_trace(args.out, data)
        print(f"\nwrote {args.out}: {len(data['traceEvents'])} events — "
              f"open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
