#!/usr/bin/env python3
"""Online serving: open-loop traffic, admission control, saturation sweep.

Demonstrates the ``repro.serve`` subsystem end to end:

1. one serving run — Poisson arrivals from two tenants against the
   ``InterDy`` scheduler, with per-tenant SLO accounting
   (p50/p95/p99/p99.9 latency, goodput, violations);
2. a bursty (MMPP) run on the same platform, showing the tail moving;
3. a saturation sweep through the experiment orchestrator — offered load
   vs. goodput and p99 latency for the baseline and two schedulers, with
   the per-system SLO knee.

Optionally writes the sweep summary as JSON (used by CI to publish the
serving numbers as a workflow artifact):

    python examples/online_serving.py [--summary-json PATH]
"""

import argparse
import json

from repro import PlatformConfig
from repro.eval import (
    ExperimentOrchestrator,
    find_knee,
    format_saturation_sweep,
    saturation_sweep,
)
from repro.serve import ServingScenario, TenantSpec, run_serving

# Scale the Table-2 data sets down so the example finishes in seconds;
# the scheduling behavior and every reported ratio survive the scaling.
INPUT_SCALE = 0.01
SLO_S = 0.25
TENANTS = (TenantSpec("tenant-a", weight=2.0, slo_s=SLO_S),
           TenantSpec("tenant-b", weight=1.0, slo_s=SLO_S))
SWEEP_RATES = (20.0, 60.0, 120.0, 240.0)
SWEEP_SYSTEMS = ("SIMD", "InterDy", "IntraO3")


def show_report(title, report):
    print(f"\n== {title} ==")
    print(f"offered {report.offered} requests "
          f"({report.offered_rps:.1f} rps), admitted {report.admitted}, "
          f"rejected {report.rejected}, completed {report.completed}")
    print(f"goodput {report.goodput_rps:.1f} rps, "
          f"SLO violations {report.slo_violations}")
    for tenant, stats in report.per_tenant.items():
        p99 = stats["p99_s"]
        print(f"  {tenant}: completed {stats['completed']}, "
              f"goodput {stats['goodput_rps']:.1f} rps, "
              f"p99 {'n/a' if p99 is None else f'{p99 * 1e3:.1f} ms'}")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--summary-json", default=None,
                        help="write the sweep summary to this JSON file")
    args = parser.parse_args()

    config = PlatformConfig(system="InterDy", input_scale=INPUT_SCALE)
    steady = ServingScenario(process="poisson", offered_rps=120.0,
                             duration_s=2.0, seed=7, tenants=TENANTS)
    show_report("Poisson @ 120 rps on InterDy",
                run_serving(steady, config=config))

    bursty = steady.with_overrides(process="mmpp", offered_rps=60.0,
                                   mmpp_burst_factor=6.0,
                                   mmpp_burst_dwell_s=0.3)
    show_report("MMPP (bursty) @ 60 rps base on InterDy",
                run_serving(bursty, config=config))

    print("\n== Saturation sweep ==")
    orchestrator = ExperimentOrchestrator(workers=4)
    sweep_scenario = steady.with_overrides(duration_s=1.5, max_queue_depth=24)
    curves = saturation_sweep(
        SWEEP_RATES, SWEEP_SYSTEMS, scenario=sweep_scenario,
        config=PlatformConfig(input_scale=INPUT_SCALE),
        orchestrator=orchestrator)
    print(format_saturation_sweep(curves, slo_s=SLO_S))

    if args.summary_json:
        summary = {
            "slo_s": SLO_S,
            "input_scale": INPUT_SCALE,
            "rates_rps": list(SWEEP_RATES),
            "knees_rps": {system: find_knee(points, SLO_S)
                          for system, points in curves.items()},
            "curves": {system: [vars(point) for point in points]
                       for system, points in curves.items()},
        }
        with open(args.summary_json, "w") as handle:
            json.dump(summary, handle, indent=2)
        print(f"\nwrote sweep summary to {args.summary_json}")


if __name__ == "__main__":
    main()
