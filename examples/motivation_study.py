#!/usr/bin/env python3
"""Reproduce the motivation study (Figure 3) from the command line.

Prints the serial-fraction scalability sweep (Fig. 3b/3c) and the
execution-time / energy breakdown of the conventional heterogeneous system
(Fig. 3d/3e) for a representative subset of PolyBench kernels — the
observations that motivate FlashAbacus: serialized data transfers destroy
both scalability and the energy budget of a low-power accelerator.

Run with:  python examples/motivation_study.py
"""

from repro.eval import (
    baseline_breakdown,
    format_table,
    serial_fraction_sweep,
)


def main() -> None:
    print("=== Fig. 3b/3c: throughput and utilization vs serial fraction ===")
    points = serial_fraction_sweep(cores_list=[1, 2, 4, 8],
                                   serial_fractions=[0.0, 0.1, 0.3, 0.5])
    rows = [(p.cores, f"{int(p.serial_fraction * 100)}%",
             p.throughput_gb_per_s, p.utilization_pct) for p in points]
    print(format_table(["cores", "serial", "GB/s", "util %"], rows))
    eight_core = {p.serial_fraction: p for p in points if p.cores == 8}
    degradation = (1 - eight_core[0.3].throughput_gb_per_s
                   / eight_core[0.0].throughput_gb_per_s) * 100
    print(f"\nAt 8 cores, 30% serialization costs {degradation:.0f}% of the "
          f"ideal throughput (paper: 44%) and drops utilization to "
          f"{eight_core[0.3].utilization_pct:.0f}% (paper: below 46%).\n")

    print("=== Fig. 3d/3e: where the conventional system spends time/energy ===")
    rows = baseline_breakdown(
        workloads=("ATAX", "BICG", "MVT", "SYRK", "3MM"), input_scale=0.1)
    table = [(r.workload,
              f"{r.accelerator_fraction * 100:.0f}%",
              f"{(r.ssd_fraction + r.host_stack_fraction) * 100:.0f}%",
              f"{r.energy_accelerator_fraction * 100:.0f}%",
              f"{(r.energy_ssd_fraction + r.energy_host_stack_fraction) * 100:.0f}%")
             for r in rows]
    print(format_table(
        ["workload", "time: accel", "time: storage path",
         "energy: accel", "energy: storage path"], table))
    print("\nData-intensive kernels (ATAX, BICG, MVT) spend most of their "
          "time and energy moving data through the SSD, the host storage "
          "stack and PCIe — the overheads FlashAbacus eliminates by fusing "
          "flash into the accelerator.")


if __name__ == "__main__":
    main()
