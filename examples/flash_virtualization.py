#!/usr/bin/env python3
"""Peek inside Flashvisor and Storengine: translation, locking, and GC.

This example drives the flash-virtualization layer directly (no kernels, no
schedulers) to illustrate the mechanisms of Section 4.3:

* page-group address translation out of the scratchpad-resident table,
* the range lock that lets concurrent readers share a data section while
  writers are exclusive,
* Storengine's background write-buffer flushing and round-robin garbage
  collection on a deliberately tiny flash backbone so GC actually triggers.

Run with:  python examples/flash_virtualization.py
"""

from dataclasses import replace

from repro import PlatformConfig
from repro.core.flashvisor import Flashvisor
from repro.core.kernel import build_kernel
from repro.core.storengine import Storengine
from repro.hw.spec import FlashSpec, prototype_spec
from repro.platform import PlatformBuilder


def build_platform(flash_spec):
    # The substrate (LWPs, DDR3L, scratchpad, crossbars, backbone) comes
    # from the shared builder; only the flash geometry is customized, and
    # the Flashvisor/Storengine software is wired by hand so this example
    # can use aggressive poll/journal intervals.
    config = PlatformConfig(
        system="IntraO3",
        spec=replace(prototype_spec(), flash=flash_spec))
    sub = PlatformBuilder(config).build_flashabacus_substrate()
    flashvisor = Flashvisor(sub.env, sub.cluster.flashvisor_lwp, sub.backbone,
                            sub.ddr, sub.scratchpad,
                            sub.interconnect.new_queue("fv"), sub.energy)
    storengine = Storengine(sub.env, sub.cluster.storengine_lwp, flashvisor,
                            sub.backbone, sub.energy, poll_interval_s=1e-4,
                            journal_interval_s=50e-3)
    return sub.env, flashvisor, storengine, sub.backbone


def demo_translation_and_locking() -> None:
    print("=== Address translation and range locking (prototype backbone) ===")
    env, flashvisor, storengine, backbone = build_platform(
        prototype_spec().flash)
    print(f"mapping table footprint: "
          f"{flashvisor.mapping_table_bytes() / 2**20:.1f} MiB "
          f"(fits the 4 MiB scratchpad)")

    kernel_a = build_kernel("reader-A", 1e6, 8 << 20, 1 << 20, 1, 0, 1)
    kernel_b = build_kernel("reader-B", 1e6, 8 << 20, 1 << 20, 1, 0, 1)

    def reader(env, kernel, label):
        yield from flashvisor.map_for_read(kernel, 0, 8 << 20)
        print(f"  t={env.now * 1e3:7.2f} ms  {label}: 8 MiB data section "
              f"mapped and loaded into DDR3L")

    def writer(env, kernel):
        yield from flashvisor.map_for_write(kernel, 0, 4 << 20)
        print(f"  t={env.now * 1e3:7.2f} ms  writer: 4 MiB buffered in DDR3L "
              f"(waited for the readers' range lock)")

    env.process(reader(env, kernel_a, "reader-A"))
    env.process(reader(env, kernel_b, "reader-B"))
    env.process(writer(env, build_kernel("writer", 1e6, 0, 4 << 20, 1, 0, 1)))
    env.run(until=1.0)
    print(f"  range-lock conflicts observed: "
          f"{flashvisor.stats.lock_conflicts}")
    print(f"  page groups translated: {flashvisor.stats.translations}\n")
    storengine.stop()


def demo_garbage_collection() -> None:
    print("=== Background GC on a miniature backbone ===")
    tiny = FlashSpec(channels=2, packages_per_channel=1, dies_per_package=1,
                     planes_per_die=2, page_bytes=4096, pages_per_block=8,
                     blocks_per_die=16, page_read_latency_s=10e-6,
                     page_program_latency_s=100e-6,
                     block_erase_latency_s=200e-6,
                     channel_bus_bandwidth=400 << 20, overprovision=0.2)
    env, flashvisor, storengine, backbone = build_platform(tiny)
    group_bytes = backbone.geometry.page_group_bytes
    print(f"  capacity: {backbone.geometry.capacity_bytes >> 10} KiB, "
          f"{backbone.geometry.page_groups_total} page groups")

    # Keep a little live data, then overwrite one hot logical group until
    # the free pool shrinks into the reserved region.
    flashvisor.translate_write(0, 4 * group_bytes)
    rewrites = 0
    while not flashvisor.allocator.needs_gc():
        flashvisor.translate_write(8 * (group_bytes // 4), group_bytes)
        rewrites += 1
    print(f"  {rewrites} hot-group rewrites until GC threshold")
    env.run(until=2.0)
    stats = storengine.stats
    print(f"  GC invocations: {stats.gc_invocations}, "
          f"rows erased: {stats.erased_rows}, "
          f"valid groups migrated: {stats.migrated_groups}")
    print(f"  journal dumps: {stats.journal_dumps}, "
          f"free groups now: {flashvisor.allocator.free_group_count}")
    # Live data survived garbage collection.
    survivors = sum(1 for g in range(4)
                    if flashvisor.mapping.lookup(g) is not None)
    print(f"  live logical groups still mapped: {survivors}/4")
    storengine.stop()


if __name__ == "__main__":
    demo_translation_and_locking()
    demo_garbage_collection()
