#!/usr/bin/env python3
"""Time a serving sweep with the perf toolkit; diff BENCH_PERF snapshots.

Two modes:

1. Default — run a small serving saturation sweep twice through the
   experiment orchestrator and time it with ``repro.perf.WallTimer``:
   the first pass simulates (cache misses), the second is served from
   the result cache, and the printed report shows what the cache buys.

       python examples/perf_profile.py

2. ``--diff OLD.json NEW.json`` — compare two ``BENCH_PERF.json``
   snapshots (e.g. the committed one vs. a fresh local run) with
   ``repro.perf.diff_reports``: per-metric percent deltas, a ``!``
   highlight on every metric past the regression threshold
   (``--regress-threshold``, default the 15% policy tolerance of
   PERFORMANCE.md), and exit status 1 when anything regressed:

       python benchmarks/perf/perfbench.py --output /tmp/now.json
       python examples/perf_profile.py --diff BENCH_PERF.json /tmp/now.json
       python examples/perf_profile.py --diff old.json new.json \\
           --regress-threshold 5
"""

from __future__ import annotations

import argparse
import tempfile

from repro import PlatformConfig
from repro.eval import ExperimentOrchestrator, saturation_sweep
from repro.perf import PerfReport, WallTimer, check_regression, diff_reports
from repro.serve import ServingScenario, TenantSpec

RATES = (30.0, 60.0, 120.0)
SYSTEMS = ("SIMD", "IntraO3")


def time_serving_sweep() -> None:
    scenario = ServingScenario(
        process="poisson", offered_rps=RATES[0], duration_s=2.0, seed=5,
        tenants=(TenantSpec("web", weight=2.0, slo_s=0.25),
                 TenantSpec("batch", weight=1.0, slo_s=0.25)))
    config = PlatformConfig(input_scale=0.01)

    with tempfile.TemporaryDirectory(prefix="repro-perf-example-") as cache:
        orchestrator = ExperimentOrchestrator(cache_dir=cache, workers=2)

        with WallTimer() as cold:
            curves = saturation_sweep(RATES, SYSTEMS, scenario=scenario,
                                      config=config,
                                      orchestrator=orchestrator)
        with WallTimer() as warm:
            saturation_sweep(RATES, SYSTEMS, scenario=scenario,
                             config=config, orchestrator=orchestrator)

    simulations = len(RATES) * len(SYSTEMS)
    print(f"saturation sweep: {len(RATES)} rates x {len(SYSTEMS)} systems "
          f"= {simulations} simulations")
    print(f"  cold (simulated):    {cold.elapsed_s:6.2f} s "
          f"({simulations / cold.elapsed_s:5.2f} sims/s)")
    print(f"  warm (cache-served): {warm.elapsed_s:6.2f} s "
          f"({cold.elapsed_s / max(warm.elapsed_s, 1e-9):,.0f}x faster)")
    for system, points in curves.items():
        knees = ", ".join(f"{point.offered_rps:g}rps" for point in points)
        print(f"  {system:8s} swept: {knees}")


def diff_snapshots(old_path: str, new_path: str,
                   regress_threshold_pct: float = 15.0) -> int:
    old = PerfReport.load(old_path)
    new = PerfReport.load(new_path)
    tolerance = regress_threshold_pct / 100.0
    regressions = check_regression(old, new, tolerance=tolerance)
    regressed = {r.metric for r in regressions}
    print(f"old: {old_path} (created {old.created})")
    print(f"new: {new_path} (created {new.created})")
    print()
    print(f"{'metric':38s} {'old':>14s} {'new':>14s} {'delta%':>8s} "
          f"{'speedup':>8s}")
    for name, entry in diff_reports(old, new).items():
        # Snapshots from different PRs legitimately disagree on which
        # metrics exist; one-sided entries are labeled, never an error
        # (adding or retiring a benchmark is not a regression).
        if entry.get("only_in_old"):
            print(f"{name:38s} {entry['old']:>14,.2f} {'—':>14s} "
                  f"{'—':>8s} {'removed':>8s}")
            continue
        if entry.get("only_in_new"):
            print(f"{name:38s} {'—':>14s} {entry['new']:>14,.2f} "
                  f"{'—':>8s} {'added':>8s}")
            continue
        speedup = entry.get("speedup")
        shown = f"{speedup:.2f}x" if speedup is not None else "—"
        delta = ((entry["new"] - entry["old"]) / entry["old"] * 100.0
                 if entry["old"] else None)
        delta_shown = f"{delta:+.1f}%" if delta is not None else "—"
        # Highlight metrics past the regression threshold — the same
        # verdicts the exit status is computed from.
        mark = " !" if name in regressed else ""
        print(f"{name:38s} {entry['old']:>14,.2f} "
              f"{entry['new']:>14,.2f} {delta_shown:>8s} "
              f"{shown:>8s}{mark}")
    if regressions:
        print(f"\nregressions past the {regress_threshold_pct:g}% "
              f"threshold:")
        for regression in regressions:
            print(f"  {regression}")
        return 1
    print(f"\nno regressions past the {regress_threshold_pct:g}% "
          f"threshold")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"),
                        help="compare two BENCH_PERF.json snapshots "
                             "instead of timing a sweep")
    parser.add_argument("--regress-threshold", type=float, default=15.0,
                        metavar="PCT",
                        help="highlight metrics that regressed by more "
                             "than PCT percent (default: 15, the "
                             "PERFORMANCE.md policy tolerance)")
    args = parser.parse_args(argv)
    if args.regress_threshold < 0:
        parser.error("--regress-threshold must be non-negative")
    if args.diff:
        return diff_snapshots(*args.diff, args.regress_threshold)
    time_serving_sweep()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
