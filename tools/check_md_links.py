#!/usr/bin/env python3
"""Link-check every Markdown document in the repository.

Walks all ``*.md`` files (skipping dot-directories and caches), extracts
inline links and images (``[text](target)`` / ``![alt](target)``), and
fails if a relative target does not exist.  External (``http(s)://``,
``mailto:``) links are not fetched — CI must stay hermetic — and pure
anchors (``#section``) are ignored, as are plain backtick path
references (they are prose, not links).

Used by the CI perf-smoke job; run locally with:

    python tools/check_md_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Inline Markdown links/images: [text](target) — target until ')' or space.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_DIRS = {".git", ".github", "__pycache__", ".pytest_cache",
             ".repro-cache", "node_modules", ".claude"}

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files() -> list[Path]:
    """Every tracked-looking .md file under the repo root."""
    files = []
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        files.append(path)
    return files


def check_file(path: Path) -> list[str]:
    """Return problem descriptions for one Markdown file."""
    problems = []
    text = path.read_text(encoding="utf-8")
    # Fenced code blocks routinely show shell snippets with fake paths;
    # strip them before extracting links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        # Drop any #anchor suffix from a file target.
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append(f"{path.relative_to(REPO_ROOT)}: broken link "
                            f"-> {target}")
    return problems


def main() -> int:
    files = markdown_files()
    problems = []
    for path in files:
        problems.extend(check_file(path))
    if problems:
        print("\n".join(problems), file=sys.stderr)
        print(f"\n{len(problems)} broken link(s) across "
              f"{len(files)} Markdown files", file=sys.stderr)
        return 1
    print(f"OK: {len(files)} Markdown files, no broken relative links")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
