#!/usr/bin/env python3
"""Export (or validate) a Chrome trace_event JSON from an observed run.

Runs one serving or cluster scenario with the observability layer on and
writes the recorded span trace in the Chrome ``trace_event`` format —
load the file in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing`` to see per-tenant request lifecycles, per-device
service/scheduler tracks and per-LWP screen executions.

    python tools/trace_export.py --mode serving --out serving-trace.json
    python tools/trace_export.py --mode cluster --quick --out fleet.json
    python tools/trace_export.py --validate serving-trace.json

``--validate`` schema-checks an existing export (the CI artifact gate)
instead of running anything; exit status 1 on problems.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:                                  # clean checkout
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.obs import (
    ObsConfig,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.platform.cluster import ClusterConfig, FaultSpec
from repro.platform.config import PlatformConfig
from repro.cluster.session import ClusterSession
from repro.serve.session import ServingScenario, ServingSession

#: Keep example runs fast: scale the Table-2 data sets down.
INPUT_SCALE = 0.01


def build_scenario(args) -> ServingScenario:
    return ServingScenario(
        process="poisson", offered_rps=args.rps,
        duration_s=args.duration, seed=args.seed)


def run_serving_trace(args, obs: ObsConfig):
    scenario = build_scenario(args)
    config = PlatformConfig(system=args.system, input_scale=INPUT_SCALE)
    session = ServingSession(scenario, config, obs=obs)
    report = session.run()
    return session.tracer, report, f"serving:{scenario.label}"


def run_cluster_trace(args, obs: ObsConfig):
    scenario = build_scenario(args)
    device = PlatformConfig(system=args.system, input_scale=INPUT_SCALE)
    # One mid-run device failure so the exported trace exercises the
    # evict/reroute instants, not just the happy path.
    fault_t = args.duration / 3.0
    cluster = ClusterConfig.homogeneous(
        args.devices, device,
        faults=(FaultSpec(fault_t, args.devices - 1, "failed"),))
    session = ClusterSession(scenario, cluster, obs=obs)
    report = session.run()
    return session.tracer, report, f"cluster:{scenario.label}"


def validate_file(path: str) -> int:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"FAIL {path}: unreadable ({exc})")
        return 1
    problems = validate_chrome_trace(data)
    if problems:
        print(f"FAIL {path}: {len(problems)} problem(s)")
        for problem in problems[:20]:
            print(f"  - {problem}")
        return 1
    events = data.get("traceEvents", [])
    print(f"OK {path}: {len(events)} events, "
          f"recorded={data.get('otherData', {}).get('recorded', '?')}, "
          f"dropped={data.get('otherData', {}).get('dropped', '?')}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--validate", metavar="FILE", default=None,
                        help="schema-check an existing export and exit")
    parser.add_argument("--mode", choices=("serving", "cluster"),
                        default="serving")
    parser.add_argument("--out", default=None,
                        help="output JSON path (required unless --validate)")
    parser.add_argument("--quick", action="store_true",
                        help="short run (1s, CI smoke settings)")
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--rps", type=float, default=40.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--system", default="IntraO3")
    parser.add_argument("--devices", type=int, default=3,
                        help="fleet size for --mode cluster")
    parser.add_argument("--no-metrics", action="store_true",
                        help="trace only, skip the metrics bus")
    args = parser.parse_args()

    if args.validate is not None:
        return validate_file(args.validate)
    if args.out is None:
        parser.error("--out is required (or use --validate FILE)")
    if args.quick:
        args.duration = min(args.duration, 1.0)

    obs = ObsConfig(metrics=not args.no_metrics)
    runner = run_serving_trace if args.mode == "serving" \
        else run_cluster_trace
    tracer, report, label = runner(args, obs)
    data = to_chrome_trace(tracer, label=label)
    problems = validate_chrome_trace(data)
    if problems:
        # An exporter bug, not user error: surface loudly.
        for problem in problems:
            print(f"  - {problem}")
        raise SystemExit(f"exporter produced an invalid trace "
                         f"({len(problems)} problem(s))")
    write_chrome_trace(args.out, data)
    print(f"wrote {args.out}: {len(data['traceEvents'])} trace events "
          f"({tracer.recorded} spans recorded, {tracer.dropped} dropped)")
    print(f"run: offered={report.offered} completed={report.completed} "
          f"rejected={report.rejected} "
          f"goodput={report.goodput_rps:.1f} rps")
    if report.metrics is not None:
        print(f"metrics timeline: {len(report.metrics['series'])} series "
              f"@ {report.metrics['cadence_s']}s cadence")
    print("view: https://ui.perfetto.dev (open trace file)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
