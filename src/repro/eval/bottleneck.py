"""Trace-driven bottleneck report: where did requests spend their time?

:func:`bottleneck_breakdown` folds a recorded span trace
(:class:`~repro.obs.Tracer`) into per-stage latency totals per tenant —
how much of the end-to-end time went to *queueing* (admission to the
first eviction or dispatch), to *rerouting* (eviction on a failing
device until the adopting device dispatched), and to *service*
(dispatch to completion).  The three stages partition each completed
request's latency exactly, so per-tenant stage sums reconcile with the
end-to-end totals to floating-point round-off — a property the test
suite asserts.

:func:`format_bottleneck` renders the breakdown as the usual fixed-width
table and names the dominant stage per tenant, which is the one-look
answer to "is this workload dispatch-bound or queue-bound?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from ..obs.trace import SpanEvent, Tracer
from .report import format_table

#: The latency stages a completed request's end-to-end time splits into.
STAGES = ("queue", "reroute", "service")


@dataclass
class StageStats:
    """Per-tenant (or aggregate) stage-time accounting."""

    tenant: str
    completed: int = 0
    #: Summed seconds per stage across completed requests.
    totals: Dict[str, float] = field(
        default_factory=lambda: {stage: 0.0 for stage in STAGES})

    @property
    def total_s(self) -> float:
        """Summed end-to-end latency (the stage sums, by construction)."""
        return sum(self.totals.values())

    def mean_s(self, stage: str) -> float:
        """Mean seconds spent in ``stage`` per completed request."""
        if self.completed == 0:
            return 0.0
        return self.totals[stage] / self.completed

    @property
    def dominant(self) -> Optional[str]:
        """The stage with the largest summed time (None if no data).

        Ties break in :data:`STAGES` order — the earlier lifecycle
        stage wins, deterministically.
        """
        if self.completed == 0:
            return None
        return max(STAGES, key=lambda s: (self.totals[s],
                                          -STAGES.index(s)))

    def share(self, stage: str) -> float:
        """Fraction of total time spent in ``stage`` (0.0 if no data)."""
        total = self.total_s
        if total <= 0:
            return 0.0
        return self.totals[stage] / total


def bottleneck_breakdown(
        trace: Union[Tracer, Iterable[SpanEvent]]
) -> Dict[str, StageStats]:
    """Fold a span trace into per-tenant stage statistics.

    Returns ``{tenant: StageStats}`` plus the ``"__all__"`` aggregate.
    Only *completed* requests contribute (rejected ones never queue;
    requests truncated by ring-buffer wraparound lack their arrival and
    are skipped rather than miscounted).  Stage definitions:

    * ``queue``   — arrival until the first eviction, or until dispatch
      when the request was never evicted;
    * ``reroute`` — first eviction until dispatch (0 without a reroute);
    * ``service`` — dispatch until completion.

    The last recorded dispatch is the one that led to completion, so
    the three stages partition ``complete - arrival`` exactly.
    """
    events = trace.events if isinstance(trace, Tracer) else trace
    folded: Dict[int, Dict[str, float]] = {}
    tenant_of: Dict[int, str] = {}
    for t, phase, rid, tenant, device, aux in events:
        if phase == "screen":
            continue
        req = folded.setdefault(rid, {})
        tenant_of[rid] = tenant
        if phase == "arrival":
            req["arrival"] = t
        elif phase == "evict":
            req.setdefault("first_evict", t)
        elif phase == "dispatch":
            # Rerouted requests dispatch more than once; the last
            # dispatch is the one the completion belongs to.
            req["dispatch"] = t
        elif phase == "complete":
            req["complete"] = t

    stats: Dict[str, StageStats] = {"__all__": StageStats("__all__")}
    for rid in sorted(folded):
        req = folded[rid]
        arrival = req.get("arrival")
        dispatch = req.get("dispatch")
        complete = req.get("complete")
        if arrival is None or dispatch is None or complete is None:
            continue
        first_evict = req.get("first_evict")
        queue_end = first_evict if first_evict is not None else dispatch
        parts = {
            "queue": max(0.0, queue_end - arrival),
            "reroute": (max(0.0, dispatch - first_evict)
                        if first_evict is not None else 0.0),
            "service": max(0.0, complete - dispatch),
        }
        tenant = tenant_of[rid]
        for key in (tenant, "__all__"):
            entry = stats.setdefault(key, StageStats(key))
            entry.completed += 1
            for stage in STAGES:
                entry.totals[stage] += parts[stage]
    return stats


def format_bottleneck(breakdown: Dict[str, StageStats]) -> str:
    """Render a breakdown as a table + one dominant-stage line per tenant.

    Tenants sort lexically with the ``"__all__"`` aggregate last, so the
    fleet-level verdict closes the table.
    """
    ordered = sorted(breakdown,
                     key=lambda name: (name == "__all__", name))
    headers = ["tenant", "completed", "queue_ms", "reroute_ms",
               "service_ms", "total_ms", "dominant"]
    rows: List[List[object]] = []
    verdicts: List[str] = []
    for name in ordered:
        entry = breakdown[name]
        rows.append([
            name, entry.completed,
            entry.totals["queue"] * 1e3,
            entry.totals["reroute"] * 1e3,
            entry.totals["service"] * 1e3,
            entry.total_s * 1e3,
            entry.dominant or "-",
        ])
        if entry.dominant is not None:
            verdicts.append(
                f"  {name}: {entry.dominant} "
                f"({entry.share(entry.dominant) * 100:.1f}% of "
                f"{entry.total_s * 1e3:.1f} ms)")
    text = ("Bottleneck breakdown (summed stage time per tenant)\n"
            + format_table(headers, rows))
    if verdicts:
        text += "\nDominant stage:\n" + "\n".join(verdicts)
    return text


__all__ = [
    "STAGES",
    "StageStats",
    "bottleneck_breakdown",
    "format_bottleneck",
]
