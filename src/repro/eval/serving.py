"""Serving experiments: saturation sweeps through the orchestrator.

The serving counterpart of :mod:`repro.eval.experiments`: a
:class:`ServingExperimentSpec` pairs a
:class:`~repro.serve.session.ServingScenario` with a
:class:`~repro.platform.PlatformConfig` and runs through the same
registry, result cache and parallel pool as the batch experiments — a
serving run is deterministic for a fixed scenario seed, so its report is
cacheable by content hash exactly like a batch report.

:func:`saturation_sweep` produces the paper-style serving figure: offered
load versus goodput and tail latency (p50/p95/p99) for each system, from
which :func:`find_knee` extracts the SLO knee — the highest offered load a
system sustains with its p99 still inside the SLO.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Sequence

from ..obs import ObsConfig
from ..platform.config import PlatformConfig
from ..serve.fastforward import FastForwardServingSession
from ..serve.report import ServingReport
from ..serve.session import ServingScenario, ServingSession
from ..sim.fastforward import FastForwardConfig
from .orchestrator import (
    CACHE_REVISION,
    ExperimentKey,
    ExperimentOrchestrator,
    default_orchestrator,
    register_report_class,
)

#: Default sweep systems: the baseline plus the two headline schedulers.
DEFAULT_SWEEP_SYSTEMS = ("SIMD", "InterDy", "IntraO3")

register_report_class("serving", ServingReport)


@dataclass(frozen=True)
class ServingExperimentSpec:
    """One serving run to execute: a scenario on a configured platform.

    Duck-type compatible with
    :class:`~repro.eval.orchestrator.ExperimentSpec`: exposes a stable
    ``key`` and a picklable ``execute()``, so the orchestrator treats both
    uniformly.
    """

    scenario: ServingScenario
    config: PlatformConfig
    #: Optional steady-state fast-forward (None = exact engine).  An
    #: *approximating* execution mode, so it folds into the cache key:
    #: exact and fast-forwarded results never alias.
    fastforward: Optional[FastForwardConfig] = None
    #: Optional observability (None = no tracing/metrics).  Changes the
    #: report payload (the ``metrics`` timeline), so it folds into the
    #: cache key: instrumented and plain results never alias.
    obs: Optional[ObsConfig] = None

    @cached_property
    def key(self) -> ExperimentKey:
        # The digest covers the full scenario (arrival process, seed,
        # tenants, admission, ...), the platform config hash and the cache
        # revision — any change to the simulated behavior re-keys the
        # entry instead of serving a stale result.
        payload: Dict[str, object] = {
            "scenario": self.scenario.to_dict(),
            "config": self.config.config_hash(),
            "revision": CACHE_REVISION,
        }
        # Folded in only when set, so pre-fast-forward specs keep their
        # cache keys byte-identical.
        if self.fastforward is not None:
            payload["fastforward"] = self.fastforward.to_dict()
        if self.obs is not None:
            payload["obs"] = self.obs.to_dict()
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
        return ExperimentKey(self.config.system, self.scenario.label, digest)

    def execute(self) -> ServingReport:
        """Run this serving experiment in-process (fresh Environment)."""
        if self.fastforward is not None:
            return FastForwardServingSession(
                self.scenario, self.config, self.fastforward,
                obs=self.obs).run()
        return ServingSession(self.scenario, self.config,
                              obs=self.obs).run()


@dataclass
class SaturationPoint:
    """One point of a goodput-vs-offered-load curve."""

    offered_rps: float          # nominal rate of the arrival process
    actual_offered_rps: float   # realized arrivals / duration
    goodput_rps: float
    admitted: int
    rejected: int
    completed: int
    slo_violations: int
    p50_s: Optional[float]
    p95_s: Optional[float]
    p99_s: Optional[float]
    #: Fast-forward provenance: None for plain exact runs, "engaged"
    #: when the analytic cruise ran, "exact (<reason>)" on refusals.
    fastforward: Optional[str] = None

    @classmethod
    def from_report(cls, nominal_rps: float,
                    report: ServingReport) -> "SaturationPoint":
        return cls(
            offered_rps=nominal_rps,
            actual_offered_rps=report.offered_rps,
            goodput_rps=report.goodput_rps,
            admitted=report.admitted,
            rejected=report.rejected,
            completed=report.completed,
            slo_violations=report.slo_violations,
            p50_s=report.p50_s,
            p95_s=report.p95_s,
            p99_s=report.p99_s,
            fastforward=describe_fastforward(report.fastforward),
        )


def describe_fastforward(annotation) -> Optional[str]:
    """One-word-ish summary of a report's ``fastforward`` annotation.

    ``None`` in, ``None`` out (an exact run that never considered
    fast-forwarding); otherwise ``"engaged"`` or ``"exact (<reason>)"``.
    """
    if annotation is None:
        return None
    if annotation.get("engaged"):
        return "engaged"
    return f"exact ({annotation.get('reason', 'refused')})"


def sweep_specs(rates: Sequence[float],
                systems: Sequence[str] = DEFAULT_SWEEP_SYSTEMS,
                scenario: Optional[ServingScenario] = None,
                config: Optional[PlatformConfig] = None
                ) -> Dict[str, List[ServingExperimentSpec]]:
    """The {system: [spec per rate]} grid of one saturation sweep."""
    base_scenario = scenario if scenario is not None else ServingScenario()
    base_config = config if config is not None else PlatformConfig()
    return {system: [ServingExperimentSpec(
                        scenario=base_scenario.with_overrides(
                            offered_rps=rate),
                        config=base_config.with_system(system))
                     for rate in rates]
            for system in systems}


def saturation_sweep(rates: Sequence[float],
                     systems: Sequence[str] = DEFAULT_SWEEP_SYSTEMS,
                     scenario: Optional[ServingScenario] = None,
                     config: Optional[PlatformConfig] = None,
                     orchestrator: Optional[ExperimentOrchestrator] = None,
                     parallel: Optional[bool] = None
                     ) -> Dict[str, List[SaturationPoint]]:
    """Offered-load sweep: goodput and latency tail per system and rate.

    The whole ``systems`` x ``rates`` grid is submitted as one
    orchestrated batch, so cached points are served from disk and uncached
    ones fan out over the worker pool.  Points are returned in ascending
    nominal-rate order per system.
    """
    if not rates:
        # Empty sweep: empty curves (a sentinel, not an error), so sweep
        # drivers composing rate lists programmatically need no guard.
        return {system: [] for system in systems}
    orch = orchestrator if orchestrator is not None else \
        default_orchestrator()
    grid = sweep_specs(rates, systems, scenario, config)
    reports = orch.run([spec for specs in grid.values() for spec in specs],
                       parallel=parallel)
    curves: Dict[str, List[SaturationPoint]] = {}
    for system, specs in grid.items():
        points = [SaturationPoint.from_report(rate, reports[spec.key])
                  for rate, spec in zip(rates, specs)]
        curves[system] = sorted(points, key=lambda p: p.offered_rps)
    return curves


def find_knee(points: Sequence[SaturationPoint],
              slo_s: float) -> Optional[float]:
    """Highest offered load up to which p99 latency stays within ``slo_s``.

    The knee is the last point of the *contiguous* in-SLO prefix of the
    sweep: once a measured point violates the SLO (or has no latency data
    at all, e.g. everything was rejected), later in-SLO points are noise
    from an already-saturated regime and do not extend the knee — noisy
    seeds can make p99 dip back under the SLO past saturation, and
    reporting that load as sustainable would overstate capacity.

    Returns ``None`` (a sentinel, never an exception) for an empty sweep
    or when the very first measured point already violates the SLO (the
    knee lies below the sweep range).
    """
    knee: Optional[float] = None
    for point in sorted(points, key=lambda p: p.offered_rps):
        if point.p99_s is None or point.p99_s > slo_s:
            break
        knee = point.offered_rps
    return knee
