"""Learned-vs-static policy bake-off: do the bandits earn their keep?

The learned species (:mod:`repro.policy.learned`) claims to recover the
headroom static policies leave on the table when the workload drifts.
This module builds the three scenario families where that drift exists —

- ``bursty``: MMPP arrivals whose burst phase overruns the fleet, so the
  right admission bar moves with the phase (:class:`AdaptiveAdmission`
  vs. the static controllers);
- ``churn``: a tenant-churn trace where the tenant mix — and which queue
  rewards service — changes mid-run (:class:`EpsilonGreedyDispatch` vs.
  the static dispatch orders);
- ``hetero``: a heterogeneous fleet with a straggler device that static
  placement keeps as loaded as the fast boards
  (:class:`LinUCBPlacement` vs. the static placements);

— and runs each as one single-axis :func:`~repro.eval.policy_grid.policy_grid`
batch: the learned policy is just another cell, cached and compared
exactly like the static ones.  The verdict
(:meth:`LearnedComparison.beats_best_static`) is goodput at equal SLO
compliance, the paper's currency: a learned cell wins only if every
static cell matching its compliance (within tolerance) delivers less
goodput.

:func:`learning_curve` is the within-run view: one exact serving run,
binned into arrival-time windows, showing compliance improving as the
model's feedback count grows — the online-learning receipt.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..platform.config import PlatformConfig
from ..policy import PolicySpec, policy_is_learned
from ..serve.request import RequestStatus
from ..serve.session import ServingScenario, ServingSession, TenantSpec
from .orchestrator import ExperimentOrchestrator, default_orchestrator
from .policy_grid import PolicyGridPoint, policy_grid
from .report import format_table

#: The learned bake-off scenario axis, in presentation order.
LEARNED_SCENARIOS: Tuple[str, ...] = ("bursty", "churn", "hetero")

#: Tail-latency objective of the ``bursty``/``hetero`` scenarios.  Tight
#: on purpose: at the calibrated device scale (~23 ms service under
#: load) a 100 ms bar leaves room for a short queue but not a deep one,
#: so a misrouted or over-admitted request actually shows up as a miss.
LEARNED_SLO_S = 0.10

#: The ``churn`` scenario's split objectives: the interactive tenants
#: run under the tight bar, the background tenant under the loose one —
#: the asymmetry a dispatch order can exploit.
TIGHT_SLO_S = 0.08
LOOSE_SLO_S = 0.30

#: The calibrated fast board (single-device p99-SLO knee near 240 rps)
#: and the straggler the ``hetero`` fleet hides among them (~6x slower
#: service: 60-100 ms against the 100 ms SLO, so requests routed there
#: mostly miss).
FAST_INPUT_SCALE = 0.01
SLOW_INPUT_SCALE = 0.06


def learned_device(input_scale: float = FAST_INPUT_SCALE) -> PlatformConfig:
    """The device template of the bake-off scenarios."""
    return PlatformConfig(system="IntraO3", input_scale=input_scale)


def hetero_devices() -> Tuple[PlatformConfig, ...]:
    """Two fast boards plus one straggler (same system, ~6x slower).

    The straggler has the *same* dispatch capacity as its peers, so
    backlog-per-capacity placement cannot tell it apart at equal queue
    depth — only its observed latency gives it away, which is exactly
    the signal the placement bandit learns.
    """
    return (learned_device(), learned_device(),
            learned_device(SLOW_INPUT_SCALE))


def learned_tenants() -> Tuple[TenantSpec, ...]:
    """Two equal-share tenants under the bake-off SLO."""
    return (TenantSpec("tenant-a", 1.0, LEARNED_SLO_S),
            TenantSpec("tenant-b", 1.0, LEARNED_SLO_S))


# ---------------------------------------------------------------------- #
# Scenario factories                                                      #
# ---------------------------------------------------------------------- #
def bursty_scenario(offered_rps: float = 240.0, duration_s: float = 3.0,
                    seed: int = 21) -> ServingScenario:
    """MMPP arrivals whose burst phase overruns the two-board fleet.

    The normal phase fits comfortably; the burst phase (4x) does not, so
    a fixed admission bar is wrong in one phase or the other: deep
    enough for the bursts means queueing past the SLO, shallow enough
    for the SLO means refusing work the normal phase could serve.
    """
    return ServingScenario(process="mmpp", offered_rps=offered_rps,
                           duration_s=duration_s, seed=seed,
                           tenants=learned_tenants(),
                           mmpp_burst_factor=4.0,
                           mmpp_normal_dwell_s=0.8,
                           mmpp_burst_dwell_s=0.3)


def churn_scenario(duration_s: float = 3.0, seed: int = 23,
                   busy_rps: float = 400.0,
                   quiet_rps: float = 80.0) -> ServingScenario:
    """Tenant churn: the busy tenant departs mid-run and a new one lands.

    ``tenant-a`` serves loose-SLO background load throughout;
    ``tenant-b`` is a busy tight-SLO tenant through the first half, then
    leaves; ``tenant-c`` (also tight) onboards in the second half.
    Which queue rewards prompt service flips with the population — the
    signal the dispatch bandit tracks, while a static order keeps
    serving the background tenant at par.  The trace is a pure function
    of ``seed``.
    """
    rng = random.Random(seed)
    workloads = list(ServingScenario().workloads)
    half = duration_s / 2.0

    def wave(tenant: str, start: float, end: float, rps: float):
        t = start
        while True:
            t += rng.expovariate(rps)
            if t >= end:
                return
            yield (t, tenant, rng.choice(workloads))

    events: List[Tuple[float, str, str]] = []
    events.extend(wave("tenant-a", 0.0, duration_s, quiet_rps))
    events.extend(wave("tenant-b", 0.0, half, busy_rps))
    events.extend(wave("tenant-c", half, duration_s, busy_rps))
    events.sort()
    tenants = (TenantSpec("tenant-a", 1.0, LOOSE_SLO_S),
               TenantSpec("tenant-b", 1.0, TIGHT_SLO_S),
               TenantSpec("tenant-c", 1.0, TIGHT_SLO_S))
    return ServingScenario(process="trace", duration_s=duration_s,
                           seed=seed, tenants=tenants,
                           trace_events=tuple(events))


def hetero_scenario(offered_rps: float = 380.0, duration_s: float = 3.0,
                    seed: int = 25) -> ServingScenario:
    """Steady Poisson load near the heterogeneous fleet's knee.

    The interesting dynamics come from the fleet (:func:`hetero_devices`
    hides a straggler), not the arrivals: the two fast boards can carry
    the offered rate inside the SLO, so every request routed to the
    straggler instead is a likely miss.
    """
    return ServingScenario(process="poisson", offered_rps=offered_rps,
                           duration_s=duration_s, seed=seed,
                           tenants=learned_tenants())


# ---------------------------------------------------------------------- #
# Comparison                                                              #
# ---------------------------------------------------------------------- #
@dataclass
class CellOutcome:
    """One bake-off cell: a policy selection and its fleet metrics."""

    policy: str                 # name{params} of the varied domain
    learned: bool
    goodput_rps: float
    admitted: int
    rejected: int
    completed: int
    slo_violations: int
    p99_s: Optional[float]

    @property
    def slo_compliance(self) -> float:
        """Fraction of completed requests inside their SLO."""
        if self.completed == 0:
            return 1.0
        return (self.completed - self.slo_violations) / self.completed

    @classmethod
    def from_point(cls, domain: str,
                   point: PolicyGridPoint) -> "CellOutcome":
        name = getattr(point, domain)
        return cls(
            policy=point.describe(domain),
            learned=policy_is_learned(domain, PolicySpec(name)),
            goodput_rps=point.goodput_rps,
            admitted=point.admitted,
            rejected=point.rejected,
            completed=point.completed,
            slo_violations=point.slo_violations,
            p99_s=point.p99_s)


@dataclass
class LearnedComparison:
    """One scenario's bake-off: learned cells vs. static cells."""

    scenario: str
    domain: str                 # the varied policy domain
    slo_s: float
    cells: List[CellOutcome]

    @property
    def learned_cells(self) -> List[CellOutcome]:
        return [cell for cell in self.cells if cell.learned]

    @property
    def static_cells(self) -> List[CellOutcome]:
        return [cell for cell in self.cells if not cell.learned]

    @property
    def best_learned(self) -> Optional[CellOutcome]:
        """Highest-goodput learned cell (None without learned cells)."""
        cells = self.learned_cells
        return max(cells, key=lambda c: c.goodput_rps) if cells else None

    @property
    def best_static(self) -> Optional[CellOutcome]:
        """Highest-goodput static cell (None without static cells)."""
        cells = self.static_cells
        return max(cells, key=lambda c: c.goodput_rps) if cells else None

    def beats_best_static(self, tol: float = 0.01) -> bool:
        """Goodput-at-equal-SLO-compliance verdict for the learned cells.

        True when some learned cell out-delivers every static cell that
        matches its compliance: statics whose compliance is within
        ``tol`` of (or above) the learned cell's must all have strictly
        lower goodput.  Statics that only win goodput by giving up more
        than ``tol`` compliance do not count as beating it — that is
        the classic fast-but-wrong trade, not a better policy.
        """
        for learned in self.learned_cells:
            bar = learned.slo_compliance - tol
            rivals = [static for static in self.static_cells
                      if static.slo_compliance >= bar]
            if all(static.goodput_rps < learned.goodput_rps
                   for static in rivals):
                return True
        return False


#: Static baselines each scenario's learned policy must face: every
#: registered static policy of the domain that is meaningful for the
#: scenario, in declaration order.
_BURSTY_ADMISSIONS: Tuple[Any, ...] = (
    PolicySpec("queue_depth", {"max_tenant_depth": 12}),
    PolicySpec("queue_depth", {"max_tenant_depth": 4}),
    PolicySpec("deadline"),
    PolicySpec("token_bucket"),
    PolicySpec("adaptive_admission"),
)
_CHURN_DISPATCHES: Tuple[Any, ...] = (
    PolicySpec("round_robin"),
    PolicySpec("weighted_fair"),
    PolicySpec("strict_priority"),
    PolicySpec("epsilon_greedy_dispatch"),
)
_HETERO_PLACEMENTS: Tuple[Any, ...] = (
    PolicySpec("round_robin"),
    PolicySpec("least_outstanding"),
    PolicySpec("join_shortest_queue"),
    PolicySpec("linucb_placement"),
)


def _bakeoff_one(name: str, quick: bool,
                 orchestrator: Optional[ExperimentOrchestrator]
                 ) -> LearnedComparison:
    scale = 0.5 if quick else 1.0
    if name == "bursty":
        domain = "admission"
        points = policy_grid(
            schedulers=("IntraO3",),
            admissions=_BURSTY_ADMISSIONS,
            dispatches=("round_robin",),
            placements=("round_robin",),
            scenario=bursty_scenario(duration_s=4.0 * scale),
            device_config=learned_device(), device_count=2,
            orchestrator=orchestrator)
    elif name == "churn":
        domain = "dispatch"
        points = policy_grid(
            schedulers=("IntraO3",),
            admissions=(PolicySpec("queue_depth",
                                   {"max_tenant_depth": 12}),),
            dispatches=_CHURN_DISPATCHES,
            placements=("round_robin",),
            scenario=churn_scenario(duration_s=4.0 * scale),
            device_config=learned_device(), device_count=2,
            orchestrator=orchestrator)
    elif name == "hetero":
        domain = "placement"
        points = policy_grid(
            schedulers=("IntraO3",),
            admissions=(PolicySpec("queue_depth",
                                   {"max_tenant_depth": 12}),),
            dispatches=("round_robin",),
            placements=_HETERO_PLACEMENTS,
            scenario=hetero_scenario(duration_s=4.0 * scale),
            devices=hetero_devices(),
            orchestrator=orchestrator)
    else:
        raise ValueError(f"unknown learned scenario {name!r}; "
                         f"choose from {list(LEARNED_SCENARIOS)}")
    return LearnedComparison(
        scenario=name, domain=domain, slo_s=LEARNED_SLO_S,
        cells=[CellOutcome.from_point(domain, point) for point in points])


def learned_bakeoff(scenarios: Sequence[str] = LEARNED_SCENARIOS,
                    quick: bool = False,
                    orchestrator: Optional[ExperimentOrchestrator] = None,
                    ) -> List[LearnedComparison]:
    """The learned-vs-static bake-off across the named scenarios.

    Each scenario is one single-axis policy grid (the learned policy's
    domain varies, everything else is pinned), run through the shared
    orchestrator so repeats are cache hits.  ``quick`` halves every
    scenario's duration for CI smoke runs.  Unknown scenario names raise
    with the valid set.
    """
    unknown = sorted(set(scenarios) - set(LEARNED_SCENARIOS))
    if unknown:
        raise ValueError(f"unknown learned scenario(s) {unknown}; "
                         f"choose from {list(LEARNED_SCENARIOS)}")
    orch = orchestrator if orchestrator is not None \
        else default_orchestrator()
    return [_bakeoff_one(name, quick, orch) for name in scenarios]


# ---------------------------------------------------------------------- #
# Within-run learning curve                                               #
# ---------------------------------------------------------------------- #
@dataclass
class LearningWindow:
    """One arrival-time window of a learning curve."""

    start_s: float
    end_s: float
    offered: int                # arrivals in the window
    completed: int
    slo_violations: int

    @property
    def slo_compliance(self) -> float:
        """Fraction of the window's completions inside their SLO."""
        if self.completed == 0:
            return 1.0
        return (self.completed - self.slo_violations) / self.completed


def learning_curve(scenario: ServingScenario,
                   config: Optional[PlatformConfig] = None,
                   windows: int = 8) -> List[LearningWindow]:
    """Per-window SLO compliance over one exact serving run.

    The run executes once on the exact engine (learned policies refuse
    fast-forward anyway); its request records are then binned by
    *arrival* time into ``windows`` equal windows.  For a learned
    policy the early windows are the exploration tax and the late ones
    the dividend — compliance should trend up as feedback accumulates.
    Deterministic for a fixed scenario seed, like every serving run.
    """
    if windows < 1:
        raise ValueError("windows must be >= 1")
    device = config if config is not None else learned_device()
    session = ServingSession(scenario, device)
    session.run()
    records = session.frontend.records
    width = scenario.duration_s / windows
    curve = []
    for index in range(windows):
        start = index * width
        end = scenario.duration_s if index == windows - 1 \
            else (index + 1) * width
        in_window = [r for r in records
                     if start <= r.request.arrival_s < end
                     or (index == windows - 1
                         and r.request.arrival_s == end)]
        done = [r for r in in_window
                if r.status is RequestStatus.COMPLETED]
        curve.append(LearningWindow(
            start_s=start, end_s=end, offered=len(in_window),
            completed=len(done),
            slo_violations=sum(1 for r in done if r.slo_met is False)))
    return curve


# ---------------------------------------------------------------------- #
# Rendering                                                               #
# ---------------------------------------------------------------------- #
def format_learned(comparisons: Sequence[LearnedComparison]) -> str:
    """Render the learned-vs-static bake-off as one table.

    One row per cell (the varied domain's policy), grouped by scenario;
    a per-scenario verdict line follows the table stating whether a
    learned cell beat the best compliance-matched static cell.
    """
    headers = ["scenario", "domain", "policy", "kind", "goodput_rps",
               "rejected", "p99_ms", "slo_ok_pct"]
    rows = []
    for comparison in comparisons:
        for cell in comparison.cells:
            rows.append([
                comparison.scenario, comparison.domain, cell.policy,
                "learned" if cell.learned else "static",
                cell.goodput_rps, cell.rejected,
                -1.0 if cell.p99_s is None else cell.p99_s * 1e3,
                100.0 * cell.slo_compliance,
            ])
    text = ("Learned vs. static policies (goodput at equal SLO "
            "compliance)\n" + format_table(headers, rows))
    for comparison in comparisons:
        best_learned = comparison.best_learned
        best_static = comparison.best_static
        if best_learned is None or best_static is None:
            continue
        if comparison.beats_best_static():
            delta = (100.0 * (best_learned.goodput_rps
                              - best_static.goodput_rps)
                     / best_static.goodput_rps
                     if best_static.goodput_rps > 0 else float("inf"))
            text += (f"\n{comparison.scenario}: {best_learned.policy} "
                     f"beats every compliance-matched static cell "
                     f"({delta:+.1f}% goodput vs. best static)")
        else:
            text += (f"\n{comparison.scenario}: learned cell does not "
                     f"beat {best_static.policy} at equal compliance")
    return text


__all__ = [
    "FAST_INPUT_SCALE",
    "LEARNED_SCENARIOS",
    "LEARNED_SLO_S",
    "LOOSE_SLO_S",
    "SLOW_INPUT_SCALE",
    "TIGHT_SLO_S",
    "CellOutcome",
    "LearnedComparison",
    "LearningWindow",
    "bursty_scenario",
    "churn_scenario",
    "format_learned",
    "hetero_devices",
    "hetero_scenario",
    "learned_bakeoff",
    "learned_device",
    "learned_tenants",
    "learning_curve",
]
