"""Experiment orchestration: registry, persistent result cache, parallel runner.

The paper's evaluation re-runs dozens of (system, workload) simulations.
Before this module existed every figure function looped over
``compare_systems`` serially and recomputed everything from scratch on each
invocation.  The orchestrator turns that into a declarative, cached and
parallelizable sweep:

* :class:`WorkloadSpec` — declarative description of a workload (kind +
  name); kernels are built inside the worker from the spec, so experiments
  are picklable and can run in separate processes.
* :class:`ExperimentSpec` — a workload plus a
  :class:`~repro.platform.PlatformConfig`; identified by an
  :class:`ExperimentKey` ``(system, workload, config-hash)``.
* :class:`ResultCache` — in-memory plus optional on-disk JSON cache of
  :class:`~repro.core.accelerator.ExecutionReport` objects keyed by
  :class:`ExperimentKey`; re-running an experiment set is served from disk.
* :class:`ExperimentOrchestrator` — the registry plus runner.  Each
  simulation owns an independent :class:`~repro.sim.engine.Environment`,
  so uncached experiments can fan out over a ``multiprocessing`` pool.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pickle
import re
import sys
import threading
import traceback
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Union

from ..core.accelerator import ExecutionReport
from ..core.kernel import Kernel
from ..platform.config import PlatformConfig
from ..workloads.mixes import INSTANCES_PER_KERNEL, heterogeneous_workload
from ..workloads.polybench import homogeneous_workload
from ..workloads.rodinia import realworld_workload
from .runner import ComparisonResult, run_system

#: Default instance counts from Section 5.1 (the heterogeneous default is
#: the workload layer's own, re-exported under the paper-facing name).
HOMOGENEOUS_INSTANCES = 6
HETEROGENEOUS_INSTANCES_PER_KERNEL = INSTANCES_PER_KERNEL

#: Environment variables steering the default orchestrator.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
PARALLEL_ENV = "REPRO_PARALLEL"

#: Salted into every cache key.  Bump whenever simulator behavior changes
#: (event ordering, timing models, energy accounting, report fields), so
#: persistent caches written by older code are invalidated instead of
#: silently serving stale results.
CACHE_REVISION = 1

_WORKLOAD_KINDS = ("homogeneous", "heterogeneous", "realworld")

# --------------------------------------------------------------------------- #
# Report types                                                                 #
# --------------------------------------------------------------------------- #
#: Registry of cacheable report classes by type name.  Every class must
#: round-trip through ``to_dict``/``from_dict``; the type name is written
#: next to each on-disk entry so the cache can rebuild the right class.
#: ``repro.eval.serving`` registers ``"serving"`` for
#: :class:`~repro.serve.report.ServingReport`.
_REPORT_CLASSES: Dict[str, type] = {"execution": ExecutionReport}


def register_report_class(type_name: str, cls: type) -> None:
    """Register a report class for cache (de)serialization."""
    existing = _REPORT_CLASSES.get(type_name)
    if existing is not None and existing is not cls:
        raise ValueError(f"report type {type_name!r} already registered "
                         f"for {existing.__name__}")
    _REPORT_CLASSES[type_name] = cls


def _report_type_name(report: Any) -> str:
    for name, cls in _REPORT_CLASSES.items():
        if type(report) is cls:
            return name
    raise TypeError(f"unregistered report class {type(report).__name__}; "
                    f"call register_report_class() first")


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative workload identity: how to build its kernels.

    ``kind`` selects the constructor (``homogeneous`` PolyBench,
    ``heterogeneous`` mix, ``realworld`` Rodinia/Mars); sizing (instances,
    input scale) comes from the :class:`PlatformConfig` so one workload
    spec can be swept across configurations.
    """

    kind: str
    name: str

    def __post_init__(self) -> None:
        if self.kind not in _WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; "
                f"choose from {_WORKLOAD_KINDS}")

    def resolved_instances(self, config: PlatformConfig) -> int:
        """The instance count this workload actually runs with.

        Resolves ``config.instances=None`` to the per-kind paper default —
        used both to build kernels and to canonicalize cache keys, so an
        explicit ``instances=6`` and the implicit default hash identically.
        """
        if config.instances is not None:
            return config.instances
        if self.kind == "heterogeneous":
            return HETEROGENEOUS_INSTANCES_PER_KERNEL
        return HOMOGENEOUS_INSTANCES

    def build(self, config: PlatformConfig) -> List[Kernel]:
        """Construct fresh kernels for one simulation run."""
        instances = self.resolved_instances(config)
        if self.kind == "homogeneous":
            return homogeneous_workload(self.name, instances=instances,
                                        input_scale=config.input_scale)
        if self.kind == "heterogeneous":
            return heterogeneous_workload(self.name,
                                          instances_per_kernel=instances,
                                          input_scale=config.input_scale)
        return realworld_workload(self.name, instances=instances,
                                  input_scale=config.input_scale)

    def to_dict(self) -> Dict[str, str]:
        return {"kind": self.kind, "name": self.name}

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "WorkloadSpec":
        return cls(kind=data["kind"], name=data["name"])


class ExperimentKey(NamedTuple):
    """Registry/cache key: which system ran which workload under which config."""

    system: str
    workload: str
    config_hash: str


@dataclass(frozen=True)
class ExperimentSpec:
    """One simulation to run: a workload on a configured platform.

    Frozen like its parts: the spec is registered and cached under
    :attr:`key`, so mutating it after first use would serve stale results
    under the old key.
    """

    workload: WorkloadSpec
    config: PlatformConfig

    @cached_property
    def key(self) -> ExperimentKey:
        # The hash covers the workload identity (so e.g. a homogeneous
        # "ATAX" run can never collide with a real-world workload sharing
        # the name), the platform config via its own stable hash, and the
        # cache revision (so caches written by older simulator code are
        # invalidated rather than served stale).  The instance count is
        # canonicalized first: instances=None and an explicit paper-default
        # count describe the same simulation and must share a key.
        resolved = self.workload.resolved_instances(self.config)
        config = (self.config if self.config.instances == resolved
                  else self.config.with_overrides(instances=resolved))
        canonical = json.dumps(
            {"workload": self.workload.to_dict(),
             "config": config.config_hash(),
             "revision": CACHE_REVISION},
            sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
        return ExperimentKey(self.config.system, self.workload.name, digest)

    def execute(self) -> ExecutionReport:
        """Run this experiment in the current process (fresh Environment)."""
        kernels = self.workload.build(self.config)
        return run_system(self.config, kernels,
                          workload_name=self.workload.name)


def _execute_spec(spec: ExperimentSpec):
    """Run one spec, returning ``(ok, report-or-exception)``.

    Failures are returned, not raised, so one bad experiment cannot make
    the runner discard its completed siblings before they are cached.
    """
    try:
        return True, spec.execute()
    except Exception as exc:              # noqa: BLE001 - re-raised by run()
        return False, exc


def _execute_spec_in_pool(spec: ExperimentSpec):
    """Pool worker wrapper: like :func:`_execute_spec`, but pickle-safe.

    Only the pool path needs this — the serial path hands the original
    exception back untouched, so callers' ``except SomeError:`` still
    match.
    """
    ok, value = _execute_spec(spec)
    if ok:
        return ok, value
    try:
        pickle.loads(pickle.dumps(value))
        return False, value
    except Exception:
        # The exception itself cannot cross the pool's result pipe
        # (unpicklable payload or non-reconstructible __init__); ship a
        # faithful surrogate instead of letting Pool.map blow up and
        # discard every sibling outcome.
        detail = "".join(traceback.format_exception(
            type(value), value, value.__traceback__))
        key = spec.key
        return False, RuntimeError(
            f"experiment {key.workload!r} on "
            f"{key.system} failed with "
            f"{type(value).__name__}: {value}\n{detail}")


#: Pending specs published for fork-started pool workers.  With the fork
#: start method the child inherits the parent's memory, so workers can
#: look experiments up by index instead of receiving a pickled copy of
#: every spec over the task pipe — shared ``PlatformConfig``/scenario
#: objects are then never re-serialized per task (only a small int
#: crosses the pipe).  The list is populated and cleared around the
#: ``Pool()`` call (fork happens inside it) under ``_FORK_SPECS_LOCK``,
#: so concurrent orchestrators on different threads cannot fork each
#: other's specs.  Meaningless to spawn-started workers, which must
#: receive the spec itself.
_FORK_SHARED_SPECS: List[Any] = []
_FORK_SPECS_LOCK = threading.Lock()


def _execute_shared_spec_in_pool(index: int):
    """Fork-context worker entry: run the inherited spec at ``index``."""
    return _execute_spec_in_pool(_FORK_SHARED_SPECS[index])


_SAFE = re.compile(r"[^A-Za-z0-9._-]")

#: A cache entry (or a writer's partial .tmp) as named by ``_path``:
#: ``system__workload__<16 hex digest>`` + ``.json`` / ``.<pid>.tmp``.
#: ``clear()`` only ever deletes names of this shape, so unrelated files
#: in a shared, non-dedicated cache directory survive.
_CACHE_FILE = re.compile(r"^.+__.+__[0-9a-f]{16}(\.json|\.\d+\.tmp)$")


class ResultCache:
    """Two-level (memory + optional on-disk JSON) cache of reports.

    Entries are any registered report class (``execution`` batch reports,
    ``serving`` open-loop reports, ...) — each on-disk entry records its
    ``report_type`` so the right class is rebuilt on load.  Cached report
    objects are shared, not copied: every hit for a key returns the same
    instance, so callers must treat returned reports as read-only
    (mutating one in place would corrupt every later hit for that key).
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[ExperimentKey, Any] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: ExperimentKey) -> Path:
        assert self.cache_dir is not None
        stem = "__".join(_SAFE.sub("_", part) for part in key)
        return self.cache_dir / f"{stem}.json"

    def get(self, key: ExperimentKey) -> Optional[Any]:
        if key in self._memory:
            self.hits += 1
            return self._memory[key]
        if self.cache_dir is not None:
            path = self._path(key)
            if path.is_file():
                try:
                    data = json.loads(path.read_text())
                    report_cls = _REPORT_CLASSES[
                        data.get("report_type", "execution")]
                    report = report_cls.from_dict(data["report"])
                except (OSError, ValueError, KeyError, TypeError,
                        AttributeError):
                    # Corrupt, stale, wrong-shaped, unreadable, or
                    # unknown-typed entry: treat as a miss and re-run.
                    self.misses += 1
                    return None
                self._memory[key] = report
                self.hits += 1
                return report
        self.misses += 1
        return None

    def put(self, key: ExperimentKey, report: Any,
            spec: Optional["ExperimentSpec"] = None) -> None:
        self._memory[key] = report
        self.stores += 1
        if self.cache_dir is not None:
            payload: Dict[str, object] = {
                "key": list(key),
                "report_type": _report_type_name(report),
                "report": report.to_dict()}
            if spec is not None and hasattr(spec, "workload"):
                payload["workload"] = spec.workload.to_dict()
                payload["config"] = spec.config.to_dict()
            elif spec is not None and hasattr(spec, "scenario"):
                payload["scenario"] = spec.scenario.to_dict()
                if hasattr(spec, "cluster"):
                    payload["cluster"] = spec.cluster.to_dict()
                else:
                    payload["config"] = spec.config.to_dict()
            path = self._path(key)
            # Unique temp name: the cache dir may be shared by concurrent
            # sessions (REPRO_CACHE_DIR), and two writers of the same key
            # using one fixed .tmp path would corrupt each other.
            tmp = path.with_suffix(f".{os.getpid()}.tmp")
            tmp.write_text(json.dumps(payload))
            try:
                tmp.replace(path)
            except FileNotFoundError:
                # A concurrent clear() swept our tmp away mid-write.  The
                # report is already in memory; losing the disk copy of one
                # entry is the correct outcome of clearing the cache.
                pass

    def clear(self) -> None:
        self._memory.clear()
        if self.cache_dir is not None:
            for path in self.cache_dir.iterdir():
                if _CACHE_FILE.match(path.name):
                    # missing_ok: a concurrent writer may have renamed or
                    # removed the file between the listing and the unlink.
                    path.unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    @property
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "entries": len(self._memory)}


class ExperimentOrchestrator:
    """Registry + cache + (optionally parallel) experiment runner.

    Specs are duck-typed: anything with a stable ``.key``
    (:class:`ExperimentKey`) and a picklable ``.execute()`` returning a
    registered report class runs through the same registry, cache and
    pool — batch :class:`ExperimentSpec` and the serving layer's
    :class:`~repro.eval.serving.ServingExperimentSpec` alike.
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None,
                 workers: int = 1, persistent_workers: bool = True):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.cache = ResultCache(cache_dir)
        self.workers = workers
        #: Keep one worker pool alive across :meth:`run` calls.  A sweep
        #: is many small ``run()`` batches (one per sweep point); paying
        #: the fork + interpreter warm-up per batch used to dominate
        #: short batches.  Reused workers also keep their platform
        #: template cache (:mod:`repro.platform.builder`) warm across
        #: sweep points that share a device config.  ``False`` restores
        #: the one-pool-per-run behaviour, where fork-started workers
        #: inherit the pending specs by index and nothing is pickled.
        self.persistent_workers = persistent_workers
        self.registry: Dict[ExperimentKey, Any] = {}
        self.simulations_run = 0
        self._pool: Optional[Any] = None
        self.pool_launches = 0

    @classmethod
    def from_env(cls, default_workers: int = 1,
                 cache_dir: Optional[Union[str, Path]] = None
                 ) -> "ExperimentOrchestrator":
        """Build an orchestrator from the environment contract.

        ``REPRO_CACHE_DIR`` (falling back to ``cache_dir``) enables the
        persistent on-disk cache; ``REPRO_PARALLEL`` (falling back to
        ``default_workers``) sets the worker count, where ``0`` means one
        worker per CPU.
        """
        cache = os.environ.get(CACHE_DIR_ENV) or cache_dir
        raw = os.environ.get(PARALLEL_ENV)
        if raw in (None, ""):
            workers = default_workers
        else:
            try:
                workers = int(raw)
            except ValueError:
                workers = -1
            if workers < 0:
                raise ValueError(
                    f"{PARALLEL_ENV} must be a worker count >= 0 "
                    f"(0 = one per CPU), got {raw!r}")
        if workers == 0:
            workers = os.cpu_count() or 1
        return cls(cache_dir=cache, workers=max(1, workers))

    # ------------------------------------------------------------------ #
    # Registry                                                             #
    # ------------------------------------------------------------------ #
    def register(self, spec: Any) -> ExperimentKey:
        """Record ``spec`` under its key and return the key.

        The registry is the queryable record of every experiment this
        orchestrator has seen (result *reuse* is the cache's job); use
        :meth:`experiments` / :meth:`spec_for` to enumerate or resolve it,
        e.g. to re-run a sweep or audit what produced a cache entry.
        """
        key = spec.key
        self.registry.setdefault(key, spec)
        return key

    def experiments(self) -> List[Any]:
        """Every registered experiment, in first-registration order."""
        return list(self.registry.values())

    def spec_for(self, key: ExperimentKey) -> Optional[Any]:
        """The spec registered under ``key``, if any."""
        return self.registry.get(key)

    # ------------------------------------------------------------------ #
    # Worker pool lifecycle                                                #
    # ------------------------------------------------------------------ #
    def _pool_context(self):
        """The preferred multiprocessing context for worker pools."""
        # Prefer fork only on Linux, where it is both safe and fast;
        # elsewhere (macOS defaults to spawn because forking a threaded
        # parent is unsafe) respect the platform default.
        if sys.platform.startswith("linux") \
                and "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork"), True
        return multiprocessing.get_context(), False

    def _ensure_pool(self):
        """The persistent worker pool, launched on first parallel run."""
        if self._pool is None:
            ctx, _ = self._pool_context()
            self._pool = ctx.Pool(processes=self.workers)
            self.pool_launches += 1
        return self._pool

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent).

        Safe to call mid-sweep: the next parallel :meth:`run` simply
        launches a fresh pool.  Also the exception path's cleanup — a
        pool whose workers died is discarded rather than reused.
        """
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "ExperimentOrchestrator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Execution                                                            #
    # ------------------------------------------------------------------ #
    def run(self, specs: Sequence[Any],
            parallel: Optional[bool] = None
            ) -> Dict[ExperimentKey, Any]:
        """Run ``specs``, serving cached results and fanning out the rest.

        ``parallel=None`` parallelizes iff the orchestrator was built with
        ``workers > 1``; ``False`` forces the serial in-process path (the
        results are identical — each simulation owns its Environment).
        """
        results: Dict[ExperimentKey, Any] = {}
        pending: List[Any] = []
        pending_keys: List[ExperimentKey] = []
        pending_seen: set = set()
        for spec in specs:
            key = self.register(spec)
            if key in results or key in pending_seen:
                continue
            cached = self.cache.get(key)
            if cached is not None:
                results[key] = cached
            else:
                pending.append(spec)
                pending_keys.append(key)
                pending_seen.add(key)
        # The constructor's worker count is a hard capacity bound:
        # parallel=True cannot fan out beyond it (workers=1 stays serial).
        use_pool = (parallel if parallel is not None else True) \
            and self.workers > 1 and len(pending) > 1
        if use_pool and self.persistent_workers:
            # Reused pool: workers were forked before these specs
            # existed, so tasks ship the spec itself (pickled) instead
            # of a fork-inherited index.  Chunked like the fresh-pool
            # path; a pool whose map machinery itself fails (worker
            # killed, unpicklable task) is torn down so the next run
            # starts clean instead of deadlocking on a broken pool.
            pool = self._ensure_pool()
            chunksize = max(1, len(pending) // (self.workers * 2))
            try:
                outcomes = pool.map(_execute_spec_in_pool, pending,
                                    chunksize=chunksize)
            except BaseException:
                self.close()
                raise
        elif use_pool:
            ctx, use_fork = self._pool_context()
            processes = min(self.workers, len(pending))
            # Chunked submission: hand each worker a batch instead of one
            # task per IPC round-trip, while keeping at least ~2 chunks
            # per worker so a slow experiment cannot strand a whole tail.
            chunksize = max(1, len(pending) // (processes * 2))
            if use_fork:
                # Workers inherit the pending specs through fork and look
                # them up by index — no per-task spec pickling, and specs
                # sharing config/scenario objects are never re-serialized.
                # The global is only needed during Pool() itself (that is
                # when fork snapshots our memory), so it is set and
                # cleared inside the lock; the map can run outside it.
                with _FORK_SPECS_LOCK:
                    _FORK_SHARED_SPECS[:] = pending
                    try:
                        pool = ctx.Pool(processes=processes)
                    finally:
                        _FORK_SHARED_SPECS.clear()
                with pool:
                    outcomes = pool.map(_execute_shared_spec_in_pool,
                                        range(len(pending)),
                                        chunksize=chunksize)
            else:
                with ctx.Pool(processes=processes) as pool:
                    outcomes = pool.map(_execute_spec_in_pool, pending,
                                        chunksize=chunksize)
        else:
            outcomes = [_execute_spec(spec) for spec in pending]
        # Cache every completed simulation before surfacing failures, so
        # one bad experiment does not throw away its siblings' work.
        errors: List[Exception] = []
        for key, spec, (ok, value) in zip(pending_keys, pending, outcomes):
            if ok:
                self.simulations_run += 1
                self.cache.put(key, value, spec)
                results[key] = value
            else:
                errors.append(value)
        if len(errors) == 1:
            raise errors[0]
        if errors:
            # Several independent failures in one batch: surface them all
            # at once instead of one per (expensive) re-run.
            raise RuntimeError(
                f"{len(errors)} experiments failed: "
                + "; ".join(f"{type(e).__name__}: {e}" for e in errors)
                ) from errors[0]
        return results

    def run_one(self, spec: Any) -> Any:
        return self.run([spec])[spec.key]

    def compare(self, workload: WorkloadSpec, systems: Sequence[str],
                config: Optional[PlatformConfig] = None,
                parallel: Optional[bool] = None) -> ComparisonResult:
        """Run one workload across ``systems`` and bundle the reports."""
        base = config if config is not None else PlatformConfig()
        specs = [ExperimentSpec(workload=workload,
                                config=base.with_system(system))
                 for system in systems]
        reports = self.run(specs, parallel=parallel)
        result = ComparisonResult(workload=workload.name)
        for system, spec in zip(systems, specs):
            result.reports[system] = reports[spec.key]
        return result

    # ------------------------------------------------------------------ #
    # Introspection                                                        #
    # ------------------------------------------------------------------ #
    @property
    def cache_stats(self) -> Dict[str, int]:
        return self.cache.stats


_default_orchestrator: Optional[ExperimentOrchestrator] = None


def default_orchestrator() -> ExperimentOrchestrator:
    """The process-wide orchestrator the figure functions fall back to.

    Configured through the environment: ``REPRO_CACHE_DIR`` enables the
    persistent on-disk cache, ``REPRO_PARALLEL`` sets the worker count
    (``0`` means one worker per CPU).
    """
    global _default_orchestrator
    if _default_orchestrator is None:
        _default_orchestrator = ExperimentOrchestrator.from_env()
    return _default_orchestrator


def set_default_orchestrator(
        orchestrator: Optional[ExperimentOrchestrator]) -> None:
    """Replace (or with ``None`` reset) the process-wide orchestrator."""
    global _default_orchestrator
    _default_orchestrator = orchestrator
