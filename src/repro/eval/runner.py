"""Evaluation runner: execute one workload on any of the five systems.

The paper compares five accelerated systems (Section 5): ``SIMD`` (the
conventional baseline) and the four FlashAbacus schedulers ``InterSt``,
``InterDy``, ``IntraIo`` and ``IntraO3``.  This module provides a uniform
entry point used by every experiment and benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.accelerator import ExecutionReport, run_flashabacus
from ..core.kernel import Kernel
from ..baseline.system import run_baseline
from ..hw.spec import HardwareSpec

#: The five accelerated systems of Section 5, in the paper's plot order.
SYSTEMS: List[str] = ["SIMD", "InterSt", "IntraIo", "InterDy", "IntraO3"]

#: FlashAbacus-only subset.
FLASHABACUS_SYSTEMS: List[str] = ["InterSt", "IntraIo", "InterDy", "IntraO3"]


def run_system(system: str, kernels: Sequence[Kernel],
               workload_name: str = "workload",
               spec: Optional[HardwareSpec] = None,
               track_power_series: bool = False) -> ExecutionReport:
    """Run ``kernels`` on one of the five systems and return its report."""
    if system == "SIMD":
        return run_baseline(kernels, workload_name, spec=spec,
                            track_power_series=track_power_series)
    if system in FLASHABACUS_SYSTEMS:
        return run_flashabacus(kernels, scheduler=system,
                               workload_name=workload_name, spec=spec,
                               track_power_series=track_power_series)
    raise ValueError(f"unknown system {system!r}; choose from {SYSTEMS}")


@dataclass
class ComparisonResult:
    """Reports for one workload across several systems."""

    workload: str
    reports: Dict[str, ExecutionReport] = field(default_factory=dict)

    def throughput(self, system: str) -> float:
        return self.reports[system].throughput_mb_per_s

    def energy(self, system: str) -> float:
        return self.reports[system].energy_joules

    def utilization(self, system: str) -> float:
        return self.reports[system].worker_utilization

    def normalized_throughput(self, reference: str = "SIMD") -> Dict[str, float]:
        base = self.throughput(reference)
        return {name: (self.throughput(name) / base if base > 0 else 0.0)
                for name in self.reports}

    def normalized_energy(self, reference: str = "SIMD") -> Dict[str, float]:
        base = self.energy(reference)
        return {name: (self.energy(name) / base if base > 0 else 0.0)
                for name in self.reports}

    def normalized_latency(self, reference: str = "SIMD") -> Dict[str, Dict[str, float]]:
        """min/mean/max kernel latency of each system relative to ``reference``."""
        ref = self.reports[reference].latency_summary()
        out: Dict[str, Dict[str, float]] = {}
        for name, report in self.reports.items():
            summary = report.latency_summary()
            out[name] = {
                "min": summary.min / ref.min if ref.min > 0 else 0.0,
                "mean": summary.mean / ref.mean if ref.mean > 0 else 0.0,
                "max": summary.max / ref.max if ref.max > 0 else 0.0,
            }
        return out


def compare_systems(workload_name: str,
                    kernel_factory: Callable[[], Sequence[Kernel]],
                    systems: Sequence[str] = SYSTEMS,
                    spec: Optional[HardwareSpec] = None,
                    track_power_series: bool = False) -> ComparisonResult:
    """Run the same workload on several systems (fresh kernels per system)."""
    result = ComparisonResult(workload=workload_name)
    for system in systems:
        kernels = list(kernel_factory())
        result.reports[system] = run_system(
            system, kernels, workload_name, spec=spec,
            track_power_series=track_power_series)
    return result
