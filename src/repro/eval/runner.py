"""Evaluation runner: execute one workload on any of the five systems.

The paper compares five accelerated systems (Section 5): ``SIMD`` (the
conventional baseline) and the four FlashAbacus schedulers ``InterSt``,
``InterDy``, ``IntraIo`` and ``IntraO3``.  This module provides a uniform
entry point used by every experiment and benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..core.accelerator import ExecutionReport, run_flashabacus
from ..core.kernel import Kernel
from ..baseline.system import run_baseline
from ..hw.spec import HardwareSpec
from ..platform.config import (
    BASELINE_SYSTEM,
    FLASHABACUS_SCHEDULERS,
    PlatformConfig,
)

#: The five accelerated systems of Section 5, in the paper's plot order
#: (derived from the platform layer's single source of truth).
SYSTEMS: List[str] = [BASELINE_SYSTEM, *FLASHABACUS_SCHEDULERS]

#: FlashAbacus-only subset.
FLASHABACUS_SYSTEMS: List[str] = list(FLASHABACUS_SCHEDULERS)


def run_system(system: Union[str, PlatformConfig], kernels: Sequence[Kernel],
               workload_name: str = "workload",
               spec: Optional[HardwareSpec] = None,
               track_power_series: bool = False,
               config: Optional[PlatformConfig] = None) -> ExecutionReport:
    """Run ``kernels`` on one of the five systems and return its report.

    ``system`` may be a system name or a full
    :class:`~repro.platform.PlatformConfig` (equivalently passed via the
    ``config`` keyword); with a config, the platform is assembled by
    :class:`~repro.platform.PlatformBuilder` from that description.
    """
    if isinstance(system, PlatformConfig):
        if config is not None:
            raise ValueError("pass the PlatformConfig either positionally "
                             "or as config=, not both")
        config, system = system, system.system
    if config is None:
        # A bare name is just a default config for that system (unknown
        # names are rejected by PlatformConfig itself).
        config = PlatformConfig(system=system)
    # Explicit arguments are not silently dropped next to a config:
    # they override the corresponding config fields.
    config = config.merged(system=system, spec=spec,
                           track_power_series=track_power_series)
    if config.is_baseline:
        return run_baseline(kernels, workload_name, config=config)
    return run_flashabacus(kernels, workload_name=workload_name,
                           config=config)


@dataclass
class ComparisonResult:
    """Reports for one workload across several systems."""

    workload: str
    reports: Dict[str, ExecutionReport] = field(default_factory=dict)

    def throughput(self, system: str) -> float:
        return self.reports[system].throughput_mb_per_s

    def energy(self, system: str) -> float:
        return self.reports[system].energy_joules

    def utilization(self, system: str) -> float:
        return self.reports[system].worker_utilization

    def normalized_throughput(self, reference: str = "SIMD") -> Dict[str, float]:
        base = self.throughput(reference)
        return {name: (self.throughput(name) / base if base > 0 else 0.0)
                for name in self.reports}

    def normalized_energy(self, reference: str = "SIMD") -> Dict[str, float]:
        base = self.energy(reference)
        return {name: (self.energy(name) / base if base > 0 else 0.0)
                for name in self.reports}

    def normalized_latency(self, reference: str = "SIMD") -> Dict[str, Dict[str, float]]:
        """min/mean/max kernel latency of each system relative to ``reference``."""
        ref = self.reports[reference].latency_summary()
        out: Dict[str, Dict[str, float]] = {}
        for name, report in self.reports.items():
            summary = report.latency_summary()
            out[name] = {
                "min": summary.min / ref.min if ref.min > 0 else 0.0,
                "mean": summary.mean / ref.mean if ref.mean > 0 else 0.0,
                "max": summary.max / ref.max if ref.max > 0 else 0.0,
            }
        return out


def compare_systems(workload_name: str,
                    kernel_factory: Callable[[], Sequence[Kernel]],
                    systems: Sequence[str] = SYSTEMS,
                    spec: Optional[HardwareSpec] = None,
                    track_power_series: bool = False,
                    config: Optional[PlatformConfig] = None) -> ComparisonResult:
    """Run the same workload on several systems (fresh kernels per system).

    This is the low-level serial path for ad-hoc kernel factories.  The
    paper-figure sweeps go through
    :class:`repro.eval.orchestrator.ExperimentOrchestrator`, which adds
    result caching and process-parallel execution for declarative
    (:class:`~repro.eval.orchestrator.WorkloadSpec`-based) workloads.
    """
    result = ComparisonResult(workload=workload_name)
    for system in systems:
        kernels = list(kernel_factory())
        result.reports[system] = run_system(
            system, kernels, workload_name, spec=spec,
            track_power_series=track_power_series,
            config=config.with_system(system) if config is not None else None)
    return result
