"""Evaluation harness: runners, motivation studies, per-figure experiments."""

from .runner import (
    FLASHABACUS_SYSTEMS,
    SYSTEMS,
    ComparisonResult,
    compare_systems,
    run_system,
)
from .motivation import (
    BreakdownRow,
    CORE_COUNTS,
    SERIAL_FRACTIONS,
    SerialSweepPoint,
    baseline_breakdown,
    serial_fraction_sweep,
)
from .experiments import (
    HETEROGENEOUS_INSTANCES_PER_KERNEL,
    HOMOGENEOUS_INSTANCES,
    TimeSeriesResult,
    fig10a_homogeneous_throughput,
    fig10b_heterogeneous_throughput,
    fig11_latency,
    fig12_completion_cdf,
    fig13_energy_breakdown,
    fig14_utilization,
    fig15_timeseries,
    fig16_realworld,
    headline_summary,
)
from .report import format_comparison, format_table, geometric_mean, improvement_pct

__all__ = [
    "FLASHABACUS_SYSTEMS",
    "SYSTEMS",
    "ComparisonResult",
    "compare_systems",
    "run_system",
    "BreakdownRow",
    "CORE_COUNTS",
    "SERIAL_FRACTIONS",
    "SerialSweepPoint",
    "baseline_breakdown",
    "serial_fraction_sweep",
    "HETEROGENEOUS_INSTANCES_PER_KERNEL",
    "HOMOGENEOUS_INSTANCES",
    "TimeSeriesResult",
    "fig10a_homogeneous_throughput",
    "fig10b_heterogeneous_throughput",
    "fig11_latency",
    "fig12_completion_cdf",
    "fig13_energy_breakdown",
    "fig14_utilization",
    "fig15_timeseries",
    "fig16_realworld",
    "headline_summary",
    "format_comparison",
    "format_table",
    "geometric_mean",
    "improvement_pct",
]
