"""Motivation study: the Figure 3 sensitivity analyses.

* Fig. 3b — throughput of a low-power accelerator as the serialized
  fraction of kernel executions grows (0%..50%) and the core count varies
  (1..8).
* Fig. 3c — the corresponding processor utilization.
* Fig. 3d — per-workload execution-time breakdown of the conventional
  heterogeneous system into accelerator / SSD / host-storage-stack time.
* Fig. 3e — the corresponding energy breakdown.

The serial-fraction sweeps run synthetic kernels on a FlashAbacus-style
multicore with the out-of-order scheduler but *without* counting storage
time (the study isolates compute scalability, as in the paper); the
breakdowns run the Table 2 workloads through the full SIMD baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from ..hw.spec import HardwareSpec, prototype_spec
from ..workloads.characteristics import MOTIVATION_ORDER, POLYBENCH
from ..workloads.generator import serial_sweep_kernels
from ..workloads.polybench import build_workload_kernel
from ..baseline.system import BaselineSystem
from ..core.accelerator import run_flashabacus

#: Serial fractions swept by Figs. 3b/3c.
SERIAL_FRACTIONS: List[float] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]

#: Core counts swept by Figs. 3b/3c.
CORE_COUNTS: List[int] = list(range(1, 9))


@dataclass
class SerialSweepPoint:
    """One (cores, serial fraction) point of the Fig. 3b/3c sweep."""

    cores: int
    serial_fraction: float
    throughput_gb_per_s: float
    utilization_pct: float


def _spec_with_cores(cores: int, base: Optional[HardwareSpec] = None) -> HardwareSpec:
    base = prototype_spec() if base is None else base
    # The sweep reserves no management cores: it measures raw multi-core
    # scalability, so every LWP is a worker.
    lwp = replace(base.lwp, count=cores)
    return replace(base, lwp=lwp)


def serial_fraction_sweep(cores_list: Sequence[int] = CORE_COUNTS,
                          serial_fractions: Sequence[float] = SERIAL_FRACTIONS,
                          instances: int = 2,
                          instructions_per_instance: float = 4e9,
                          bytes_per_kilo_instruction: float = 140.0
                          ) -> List[SerialSweepPoint]:
    """Run the Fig. 3b/3c sweep and return one point per configuration.

    The sweep isolates *compute* scalability: the kernels operate on
    memory-resident data (no storage accesses), and throughput is reported
    as the paper does — the volume of data the kernel logically processes
    (instructions x B/KI) divided by the makespan — so the 8-core,
    0%-serial point lands in the multi-GB/s region of Figure 3b.
    """
    data_bytes_per_instance = (instructions_per_instance
                               * bytes_per_kilo_instruction / 1000.0)
    points: List[SerialSweepPoint] = []
    for cores in cores_list:
        # Keep the two management LWPs out of the worker pool, as in the
        # real platform.
        spec = _spec_with_cores(cores + 2)
        for fraction in serial_fractions:
            kernels = serial_sweep_kernels(
                serial_fraction=fraction,
                instances=instances,
                parallel_screens=max(1, cores),
                instructions_per_instance=instructions_per_instance,
                input_bytes=0,
            )
            report = run_flashabacus(kernels, scheduler="IntraO3",
                                     workload_name=f"serial-{fraction}",
                                     spec=spec)
            data_bytes = instances * data_bytes_per_instance
            throughput = data_bytes / report.makespan_s if report.makespan_s else 0.0
            points.append(SerialSweepPoint(
                cores=cores,
                serial_fraction=fraction,
                throughput_gb_per_s=throughput / (1024 ** 3),
                utilization_pct=report.worker_utilization * 100.0,
            ))
    return points


@dataclass
class BreakdownRow:
    """Per-workload execution-time and energy decomposition (Fig. 3d/3e)."""

    workload: str
    accelerator_fraction: float
    ssd_fraction: float
    host_stack_fraction: float
    energy_accelerator_fraction: float
    energy_ssd_fraction: float
    energy_host_stack_fraction: float


def baseline_breakdown(workloads: Sequence[str] = tuple(MOTIVATION_ORDER),
                       instances: int = 1,
                       input_scale: float = 1.0) -> List[BreakdownRow]:
    """Run PolyBench kernels through the SIMD baseline and decompose them.

    Time fractions follow the paper's Fig. 3d categories (accelerator, SSD,
    host storage stack); the energy fractions map the accountant's buckets
    onto the same three categories (computation -> accelerator,
    storage_access -> SSD, data_movement -> host storage stack).
    """
    rows: List[BreakdownRow] = []
    for name in workloads:
        characteristics = POLYBENCH[name]
        system = BaselineSystem()
        kernels = [build_workload_kernel(characteristics, app_id=0, instance=i,
                                         input_scale=input_scale)
                   for i in range(instances)]
        system.run_workload(kernels, name)
        time_parts = {"accelerator": 0.0, "ssd": 0.0, "host_stack": 0.0}
        for breakdown in system.time_breakdowns():
            time_parts["accelerator"] += breakdown.accelerator_s
            time_parts["ssd"] += breakdown.ssd_s
            time_parts["host_stack"] += breakdown.host_stack_s
        total_time = sum(time_parts.values()) or 1.0
        energy = system.energy_breakdown()
        total_energy = energy.total or 1.0
        rows.append(BreakdownRow(
            workload=name,
            accelerator_fraction=time_parts["accelerator"] / total_time,
            ssd_fraction=time_parts["ssd"] / total_time,
            host_stack_fraction=time_parts["host_stack"] / total_time,
            energy_accelerator_fraction=energy.computation / total_energy,
            energy_ssd_fraction=energy.storage_access / total_energy,
            energy_host_stack_fraction=energy.data_movement / total_energy,
        ))
    return rows
