"""Cluster experiments: fleet scaling sweeps through the orchestrator.

The cluster counterpart of :mod:`repro.eval.serving`: a
:class:`ClusterExperimentSpec` pairs a
:class:`~repro.serve.session.ServingScenario` with a
:class:`~repro.platform.cluster.ClusterConfig` and runs through the same
registry, result cache and parallel pool as every other experiment — a
cluster run is deterministic for a fixed scenario seed and fleet config,
so its report is cacheable by content hash.

:func:`scaling_sweep` produces the fleet-sizing figure: goodput and tail
latency versus device count at one fixed offered load (chosen past the
single-device knee, so the sweep shows how many boards the load needs).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import cached_property
from typing import List, Optional, Sequence

from ..cluster.parallel import ParallelClusterSession, ParallelConfig
from ..cluster.placement import placement_snapshot_dependent
from ..cluster.report import ClusterReport
from ..cluster.session import ClusterSession
from ..obs import ObsConfig
from ..platform.cluster import ClusterConfig
from ..platform.config import PlatformConfig
from ..policy import policy_is_learned
from ..serve.session import ServingScenario
from .orchestrator import (
    CACHE_REVISION,
    ExperimentKey,
    ExperimentOrchestrator,
    default_orchestrator,
    register_report_class,
)

register_report_class("cluster", ClusterReport)


@dataclass(frozen=True)
class ClusterExperimentSpec:
    """One cluster run to execute: a scenario on a configured fleet.

    Duck-type compatible with the orchestrator's spec protocol: a stable
    ``key`` and a picklable ``execute()``.
    """

    scenario: ServingScenario
    cluster: ClusterConfig
    #: Optional epoch-parallel execution (None = serial session).  Folds
    #: into the cache key only when it can change the report payload:
    #: snapshot-independent placement (round-robin, tenant-affinity) is
    #: byte-identical to serial, so those specs *alias* the serial cache
    #: entry; snapshot-dependent placement routes on epoch snapshots, so
    #: its ``epoch_s`` is semantic and re-keys the entry.  The worker
    #: count is always pure execution strategy.
    parallel: Optional[ParallelConfig] = None
    #: Optional observability (None = no tracing/metrics).  Changes the
    #: report payload (the ``metrics`` timeline), so it folds into the
    #: cache key: instrumented and plain results never alias.
    obs: Optional[ObsConfig] = None

    @cached_property
    def key(self) -> ExperimentKey:
        payload = {"scenario": self.scenario.to_dict(),
                   "cluster": self.cluster.config_hash(),
                   "revision": CACHE_REVISION}
        # Folded in only when the parallel strategy can change the
        # payload; byte-identical-to-serial runs share the serial cache
        # entry, and pre-parallel specs keep their keys byte-identical.
        # behavior_rev re-keys snapshot-dependent entries whenever the
        # epoch runner's observable routing behaviour changes (rev 2:
        # fault-time boundaries + exact-instant backlog adoption).
        if self._parallel_affects_results():
            payload["parallel"] = dict(self.parallel.to_dict(),
                                       behavior_rev=2)
        if self.obs is not None:
            payload["obs"] = self.obs.to_dict()
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
        return ExperimentKey(self.cluster.label, self.scenario.label, digest)

    def _parallel_affects_results(self) -> bool:
        """Whether the parallel config can change the report payload.

        Mirrors :meth:`execute`'s fallback chain: runs that fall back to
        the serial session (observability, elastic, learned) produce the
        serial payload regardless of the parallel config, and
        snapshot-independent placement produces it byte-identically even
        on the parallel path.
        """
        if self.parallel is None:
            return False
        if self.obs is not None and self.obs.enabled:
            return False
        if self.cluster.elastic or self._uses_learned_policy():
            return False
        return placement_snapshot_dependent(
            self.cluster.placement_policy_spec())

    def _uses_learned_policy(self) -> bool:
        """Whether any domain of this run selects a learned policy."""
        scenario = self.scenario
        return (policy_is_learned("admission",
                                  scenario.effective_admission_spec())
                or (scenario.dispatch_spec is not None
                    and policy_is_learned("dispatch",
                                          scenario.dispatch_spec))
                or policy_is_learned("placement",
                                     self.cluster.placement_policy_spec()))

    def execute(self) -> ClusterReport:
        """Run this cluster experiment in-process (fresh Environment)."""
        if self.obs is not None and self.obs.enabled:
            # Observability needs the serial shared-environment session:
            # the epoch-parallel strategy runs devices in worker
            # processes, whose tracers/metric samples could not be
            # stitched into one coherent fleet timeline.
            return ClusterSession(self.scenario, self.cluster,
                                  obs=self.obs).run()
        if self.cluster.elastic:
            # An autoscaled fleet resizes mid-run; only the serial
            # shared-environment session supports that.
            return ClusterSession(self.scenario, self.cluster,
                                  obs=self.obs).run()
        if self.parallel is not None and self._uses_learned_policy():
            # Learned policies are stateful across the fleet; the
            # epoch-parallel runner refuses them (per-worker state would
            # diverge), so learned cells silently take the serial path
            # exactly like elastic ones.
            return ClusterSession(self.scenario, self.cluster,
                                  obs=self.obs).run()
        if self.parallel is not None:
            return ParallelClusterSession(
                self.scenario, self.cluster, self.parallel).run()
        return ClusterSession(self.scenario, self.cluster,
                              obs=self.obs).run()


@dataclass
class ScalingPoint:
    """One point of a goodput-vs-device-count curve."""

    device_count: int
    offered_rps: float          # realized arrivals / duration
    goodput_rps: float
    admitted: int
    rejected: int
    completed: int
    slo_violations: int
    p50_s: Optional[float]
    p99_s: Optional[float]
    energy_j: float
    reroutes: int
    #: Fast-forward provenance rolled up across the fleet's per-device
    #: reports: None when no device carries an annotation, otherwise
    #: "N/M devices engaged".
    fastforward: Optional[str] = None

    @classmethod
    def from_report(cls, report: ClusterReport) -> "ScalingPoint":
        annotated = [d.fastforward for d in report.devices
                     if d.fastforward is not None]
        engaged = sum(1 for a in annotated if a.get("engaged"))
        return cls(
            device_count=report.device_count,
            offered_rps=report.offered_rps,
            goodput_rps=report.goodput_rps,
            admitted=report.admitted,
            rejected=report.rejected,
            completed=report.completed,
            slo_violations=report.slo_violations,
            p50_s=report.p50_s,
            p99_s=report.p99_s,
            energy_j=report.energy_j,
            reroutes=report.reroutes,
            fastforward=(f"{engaged}/{len(report.devices)} devices engaged"
                         if annotated else None),
        )


def scaling_specs(device_counts: Sequence[int],
                  offered_rps: float,
                  scenario: Optional[ServingScenario] = None,
                  device_config: Optional[PlatformConfig] = None,
                  placement: str = "round_robin",
                  parallel_config: Optional[ParallelConfig] = None
                  ) -> List[ClusterExperimentSpec]:
    """The [spec per device count] column of one scaling sweep.

    ``parallel_config`` opts the sweep's cells into the epoch-parallel
    runner; with the default round-robin placement that is purely an
    execution strategy (byte-identical reports, shared cache entries).
    """
    base_scenario = scenario if scenario is not None else ServingScenario()
    base_scenario = base_scenario.with_overrides(offered_rps=offered_rps)
    device = device_config if device_config is not None else PlatformConfig()
    return [ClusterExperimentSpec(
                scenario=base_scenario,
                cluster=ClusterConfig.homogeneous(count, device,
                                                  placement=placement),
                parallel=parallel_config)
            for count in device_counts]


def scaling_sweep(device_counts: Sequence[int],
                  offered_rps: float,
                  scenario: Optional[ServingScenario] = None,
                  device_config: Optional[PlatformConfig] = None,
                  placement: str = "round_robin",
                  orchestrator: Optional[ExperimentOrchestrator] = None,
                  parallel: Optional[bool] = None,
                  parallel_config: Optional[ParallelConfig] = None
                  ) -> List[ScalingPoint]:
    """Fleet goodput and tail latency vs. device count at fixed load.

    Every device count is one cluster experiment submitted through the
    orchestrator (cached points served from disk, uncached ones fanned out
    over the worker pool).  Points come back in ascending device-count
    order.  An empty ``device_counts`` yields an empty sweep rather than
    an error, mirroring the edge-case contract of
    :func:`~repro.eval.serving.find_knee`.
    """
    if not device_counts:
        return []
    orch = orchestrator if orchestrator is not None else \
        default_orchestrator()
    specs = scaling_specs(device_counts, offered_rps, scenario,
                          device_config, placement, parallel_config)
    reports = orch.run(specs, parallel=parallel)
    points = [ScalingPoint.from_report(reports[spec.key]) for spec in specs]
    return sorted(points, key=lambda p: p.device_count)


def scaling_efficiency(points: Sequence[ScalingPoint]) -> List[float]:
    """Goodput speedup of each point over the smallest fleet in the sweep.

    Returns one factor per point (1.0 for the reference point itself);
    empty input yields an empty list.  A zero-goodput reference makes
    every larger fleet's factor ``inf`` (sentinel, not an exception).
    """
    ordered = sorted(points, key=lambda p: p.device_count)
    if not ordered:
        return []
    base = ordered[0].goodput_rps
    factors = []
    for point in ordered:
        if base > 0:
            factors.append(point.goodput_rps / base)
        else:
            factors.append(float("inf") if point.goodput_rps > 0 else 1.0)
    return factors
