"""One function per table/figure of the paper's evaluation (Section 5).

Every function returns plain data structures (dicts keyed by workload and
system) so the benchmarks can both print paper-style rows and assert the
qualitative relations that define a successful reproduction.  ``input_scale``
shrinks the data sets proportionally — the scheduling/energy *ratios* are
scale-invariant, so the default benchmark configuration uses a moderate
scale to keep run time reasonable, and the EXPERIMENTS.md numbers record
the scale used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..hw.spec import HardwareSpec, prototype_spec
from ..workloads.characteristics import (
    DATA_INTENSIVE,
    POLYBENCH_ORDER,
    REALWORLD_ORDER,
)
from ..workloads.mixes import MIX_ORDER, heterogeneous_workload
from ..workloads.polybench import homogeneous_workload
from ..workloads.rodinia import realworld_workload
from .runner import SYSTEMS, ComparisonResult, compare_systems

#: Default instance counts from Section 5.1.
HOMOGENEOUS_INSTANCES = 6
HETEROGENEOUS_INSTANCES_PER_KERNEL = 4


# --------------------------------------------------------------------------- #
# Figure 10: data-processing throughput                                        #
# --------------------------------------------------------------------------- #
def fig10a_homogeneous_throughput(
        workloads: Sequence[str] = tuple(POLYBENCH_ORDER),
        systems: Sequence[str] = tuple(SYSTEMS),
        instances: int = HOMOGENEOUS_INSTANCES,
        input_scale: float = 1.0,
        spec: Optional[HardwareSpec] = None) -> Dict[str, Dict[str, float]]:
    """Throughput (MB/s) of every system for each homogeneous workload."""
    results: Dict[str, Dict[str, float]] = {}
    for name in workloads:
        comparison = compare_systems(
            name,
            lambda name=name: homogeneous_workload(name, instances=instances,
                                                   input_scale=input_scale),
            systems=systems, spec=spec)
        results[name] = {s: comparison.throughput(s) for s in systems}
    return results


def fig10b_heterogeneous_throughput(
        mixes: Sequence[str] = tuple(MIX_ORDER),
        systems: Sequence[str] = tuple(SYSTEMS),
        instances_per_kernel: int = HETEROGENEOUS_INSTANCES_PER_KERNEL,
        input_scale: float = 1.0,
        spec: Optional[HardwareSpec] = None) -> Dict[str, Dict[str, float]]:
    """Throughput (MB/s) of every system for each heterogeneous mix."""
    results: Dict[str, Dict[str, float]] = {}
    for mix in mixes:
        comparison = compare_systems(
            mix,
            lambda mix=mix: heterogeneous_workload(
                mix, instances_per_kernel=instances_per_kernel,
                input_scale=input_scale),
            systems=systems, spec=spec)
        results[mix] = {s: comparison.throughput(s) for s in systems}
    return results


# --------------------------------------------------------------------------- #
# Figure 11: latency (min / avg / max, normalized to SIMD)                     #
# --------------------------------------------------------------------------- #
def fig11_latency(workloads: Sequence[str],
                  heterogeneous: bool = False,
                  systems: Sequence[str] = tuple(SYSTEMS),
                  input_scale: float = 1.0,
                  spec: Optional[HardwareSpec] = None
                  ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Kernel latency statistics normalized to SIMD (Fig. 11a/11b)."""
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in workloads:
        if heterogeneous:
            factory = lambda name=name: heterogeneous_workload(
                name, input_scale=input_scale)
        else:
            factory = lambda name=name: homogeneous_workload(
                name, instances=HOMOGENEOUS_INSTANCES, input_scale=input_scale)
        comparison = compare_systems(name, factory, systems=systems, spec=spec)
        results[name] = comparison.normalized_latency("SIMD")
    return results


# --------------------------------------------------------------------------- #
# Figure 12: CDF of kernel completion times                                    #
# --------------------------------------------------------------------------- #
def fig12_completion_cdf(workload: str = "ATAX",
                         heterogeneous: bool = False,
                         systems: Sequence[str] = tuple(SYSTEMS),
                         input_scale: float = 1.0,
                         spec: Optional[HardwareSpec] = None
                         ) -> Dict[str, List[Tuple[float, int]]]:
    """(completion time, #kernels completed) series per system (Fig. 12)."""
    if heterogeneous:
        factory = lambda: heterogeneous_workload(workload,
                                                 input_scale=input_scale)
    else:
        factory = lambda: homogeneous_workload(
            workload, instances=HOMOGENEOUS_INSTANCES, input_scale=input_scale)
    comparison = compare_systems(workload, factory, systems=systems, spec=spec)
    out: Dict[str, List[Tuple[float, int]]] = {}
    for system in systems:
        completions = comparison.reports[system].completion_times
        out[system] = [(t, i + 1) for i, t in enumerate(sorted(completions))]
    return out


# --------------------------------------------------------------------------- #
# Figure 13: energy decomposition (normalized to SIMD)                         #
# --------------------------------------------------------------------------- #
def fig13_energy_breakdown(workloads: Sequence[str],
                           heterogeneous: bool = False,
                           systems: Sequence[str] = tuple(SYSTEMS),
                           input_scale: float = 1.0,
                           spec: Optional[HardwareSpec] = None
                           ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Energy split into data movement / computation / storage access.

    Every bucket is normalized to the total energy of SIMD for the same
    workload, as in the paper's Figure 13.
    """
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in workloads:
        if heterogeneous:
            factory = lambda name=name: heterogeneous_workload(
                name, input_scale=input_scale)
        else:
            factory = lambda name=name: homogeneous_workload(
                name, instances=HOMOGENEOUS_INSTANCES, input_scale=input_scale)
        comparison = compare_systems(name, factory, systems=systems, spec=spec)
        simd_total = comparison.reports["SIMD"].energy.total \
            if "SIMD" in comparison.reports else None
        per_system: Dict[str, Dict[str, float]] = {}
        for system in systems:
            energy = comparison.reports[system].energy
            denom = simd_total if simd_total else energy.total or 1.0
            per_system[system] = {
                "data_movement": energy.data_movement / denom,
                "computation": energy.computation / denom,
                "storage_access": energy.storage_access / denom,
                "total": energy.total / denom,
            }
        results[name] = per_system
    return results


# --------------------------------------------------------------------------- #
# Figure 14: processor (LWP) utilization                                       #
# --------------------------------------------------------------------------- #
def fig14_utilization(workloads: Sequence[str],
                      heterogeneous: bool = False,
                      systems: Sequence[str] = tuple(SYSTEMS),
                      input_scale: float = 1.0,
                      spec: Optional[HardwareSpec] = None
                      ) -> Dict[str, Dict[str, float]]:
    """Average LWP utilization (%) per system (Fig. 14a/14b)."""
    results: Dict[str, Dict[str, float]] = {}
    for name in workloads:
        if heterogeneous:
            factory = lambda name=name: heterogeneous_workload(
                name, input_scale=input_scale)
        else:
            factory = lambda name=name: homogeneous_workload(
                name, instances=HOMOGENEOUS_INSTANCES, input_scale=input_scale)
        comparison = compare_systems(name, factory, systems=systems, spec=spec)
        results[name] = {s: comparison.utilization(s) * 100.0 for s in systems}
    return results


# --------------------------------------------------------------------------- #
# Figure 15: functional-unit utilization and power over time                   #
# --------------------------------------------------------------------------- #
@dataclass
class TimeSeriesResult:
    """Resampled FU-utilization and power traces for one system (Fig. 15)."""

    system: str
    makespan_s: float
    fu_times: List[float] = field(default_factory=list)
    fu_values: List[float] = field(default_factory=list)
    power_times: List[float] = field(default_factory=list)
    power_values: List[float] = field(default_factory=list)

    @property
    def peak_power_w(self) -> float:
        return max(self.power_values) if self.power_values else 0.0

    @property
    def mean_active_fus(self) -> float:
        if not self.fu_values:
            return 0.0
        return sum(self.fu_values) / len(self.fu_values)


def fig15_timeseries(workload: str = "MX1",
                     systems: Sequence[str] = ("SIMD", "IntraO3"),
                     input_scale: float = 1.0,
                     sample_points: int = 200,
                     spec: Optional[HardwareSpec] = None
                     ) -> Dict[str, TimeSeriesResult]:
    """FU-utilization and power time series for SIMD vs. IntraO3 (Fig. 15)."""
    comparison = compare_systems(
        workload,
        lambda: heterogeneous_workload(workload, input_scale=input_scale),
        systems=systems, spec=spec, track_power_series=True)
    out: Dict[str, TimeSeriesResult] = {}
    for system in systems:
        report = comparison.reports[system]
        result = TimeSeriesResult(system=system, makespan_s=report.makespan_s)
        step = max(report.makespan_s / sample_points, 1e-6)
        if report.fu_series is not None and len(report.fu_series):
            resampled = report.fu_series.resample(step, end=report.makespan_s)
            result.fu_times = resampled.times()
            result.fu_values = resampled.values()
        if report.power_series is not None and len(report.power_series):
            resampled = report.power_series.resample(step,
                                                     end=report.makespan_s)
            result.power_times = resampled.times()
            result.power_values = resampled.values()
        out[system] = result
    return out


# --------------------------------------------------------------------------- #
# Figure 16: graph / big-data applications                                     #
# --------------------------------------------------------------------------- #
def fig16_realworld(workloads: Sequence[str] = tuple(REALWORLD_ORDER),
                    systems: Sequence[str] = tuple(SYSTEMS),
                    instances: int = HOMOGENEOUS_INSTANCES,
                    input_scale: float = 1.0,
                    spec: Optional[HardwareSpec] = None
                    ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Throughput and normalized energy for bfs/wc/nn/nw/path (Fig. 16)."""
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in workloads:
        comparison = compare_systems(
            name,
            lambda name=name: realworld_workload(name, instances=instances,
                                                 input_scale=input_scale),
            systems=systems, spec=spec)
        simd_energy = comparison.energy("SIMD") if "SIMD" in systems else None
        per_system: Dict[str, Dict[str, float]] = {}
        for system in systems:
            report = comparison.reports[system]
            denom = simd_energy if simd_energy else report.energy_joules or 1.0
            per_system[system] = {
                "throughput_mb_per_s": report.throughput_mb_per_s,
                "normalized_energy": report.energy_joules / denom,
            }
        results[name] = per_system
    return results


# --------------------------------------------------------------------------- #
# Headline numbers (abstract / conclusion)                                     #
# --------------------------------------------------------------------------- #
def headline_summary(workloads: Sequence[str] = ("ATAX", "MVT", "SYRK", "3MM"),
                     input_scale: float = 0.1,
                     spec: Optional[HardwareSpec] = None) -> Dict[str, float]:
    """Average IntraO3-vs-SIMD throughput gain and energy saving.

    The paper's headline: +127% bandwidth, -78.4% energy.  This helper
    reports the same two aggregates over a representative workload subset.
    """
    gains: List[float] = []
    savings: List[float] = []
    for name in workloads:
        comparison = compare_systems(
            name,
            lambda name=name: homogeneous_workload(
                name, instances=HOMOGENEOUS_INSTANCES, input_scale=input_scale),
            systems=("SIMD", "IntraO3"), spec=spec)
        simd = comparison.reports["SIMD"]
        intra = comparison.reports["IntraO3"]
        if simd.throughput_mb_per_s > 0:
            gains.append(intra.throughput_mb_per_s / simd.throughput_mb_per_s)
        if simd.energy_joules > 0:
            savings.append(1.0 - intra.energy_joules / simd.energy_joules)
    return {
        "mean_throughput_gain": (sum(gains) / len(gains)) if gains else 0.0,
        "mean_energy_saving": (sum(savings) / len(savings)) if savings else 0.0,
    }
