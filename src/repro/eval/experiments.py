"""One function per table/figure of the paper's evaluation (Section 5).

Every function returns plain data structures (dicts keyed by workload and
system) so the benchmarks can both print paper-style rows and assert the
qualitative relations that define a successful reproduction.  ``input_scale``
shrinks the data sets proportionally — the scheduling/energy *ratios* are
scale-invariant, so the default benchmark configuration uses a moderate
scale to keep run time reasonable, and the EXPERIMENTS.md numbers record
the scale used.

All figure functions route through the
:class:`~repro.eval.orchestrator.ExperimentOrchestrator`: pass one
explicitly (or configure the default via ``REPRO_CACHE_DIR`` /
``REPRO_PARALLEL``) to get persistent result caching and process-parallel
sweeps; by default experiments run serially in-process exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..hw.spec import HardwareSpec
from ..platform.config import PlatformConfig
from ..workloads.characteristics import POLYBENCH_ORDER, REALWORLD_ORDER
from ..workloads.mixes import MIX_ORDER
from .orchestrator import (
    HETEROGENEOUS_INSTANCES_PER_KERNEL,
    HOMOGENEOUS_INSTANCES,
    ExperimentOrchestrator,
    ExperimentSpec,
    WorkloadSpec,
    default_orchestrator,
)
from .runner import SYSTEMS, ComparisonResult

__all__ = [
    "HETEROGENEOUS_INSTANCES_PER_KERNEL",
    "HOMOGENEOUS_INSTANCES",
    "TimeSeriesResult",
    "fig10a_homogeneous_throughput",
    "fig10b_heterogeneous_throughput",
    "fig11_latency",
    "fig12_completion_cdf",
    "fig13_energy_breakdown",
    "fig14_utilization",
    "fig15_timeseries",
    "fig16_realworld",
    "headline_summary",
]


def _compare(kind: str, name: str, systems: Sequence[str],
             instances: Optional[int], input_scale: float,
             spec: Optional[HardwareSpec],
             orchestrator: Optional[ExperimentOrchestrator],
             track_power_series: bool = False) -> ComparisonResult:
    """Run one workload across ``systems`` through the orchestrator."""
    return _compare_many(kind, [name], systems, instances, input_scale,
                         spec, orchestrator,
                         track_power_series=track_power_series)[name]


def _compare_flavor(heterogeneous: bool, name: str, systems: Sequence[str],
                    input_scale: float, spec: Optional[HardwareSpec],
                    orchestrator: Optional[ExperimentOrchestrator]
                    ) -> ComparisonResult:
    """The shared homogeneous-vs-heterogeneous resolution of Figs. 11-14."""
    kind = "heterogeneous" if heterogeneous else "homogeneous"
    instances = None if heterogeneous else HOMOGENEOUS_INSTANCES
    return _compare(kind, name, systems, instances, input_scale, spec,
                    orchestrator)


def _compare_many(kind: str, names: Sequence[str], systems: Sequence[str],
                  instances: Optional[int], input_scale: float,
                  spec: Optional[HardwareSpec],
                  orchestrator: Optional[ExperimentOrchestrator],
                  track_power_series: bool = False
                  ) -> Dict[str, ComparisonResult]:
    """Run the full ``names`` x ``systems`` grid as one orchestrated sweep.

    Submitting the whole grid at once lets a parallel orchestrator use all
    of its workers across workload boundaries (one pool for the figure)
    instead of fanning out at most ``len(systems)`` simulations at a time.
    """
    orch = orchestrator if orchestrator is not None else default_orchestrator()
    kwargs = {
        "instances": instances,
        "input_scale": input_scale,
        "track_power_series": track_power_series,
    }
    if spec is not None:
        kwargs["spec"] = spec
    base = PlatformConfig(**kwargs)
    grid = {name: [ExperimentSpec(workload=WorkloadSpec(kind, name),
                                  config=base.with_system(system))
                   for system in systems]
            for name in names}
    reports = orch.run([s for specs in grid.values() for s in specs])
    out: Dict[str, ComparisonResult] = {}
    for name, specs in grid.items():
        comparison = ComparisonResult(workload=name)
        for system, espec in zip(systems, specs):
            comparison.reports[system] = reports[espec.key]
        out[name] = comparison
    return out


def _compare_flavor_many(heterogeneous: bool, names: Sequence[str],
                         systems: Sequence[str], input_scale: float,
                         spec: Optional[HardwareSpec],
                         orchestrator: Optional[ExperimentOrchestrator]
                         ) -> Dict[str, ComparisonResult]:
    kind = "heterogeneous" if heterogeneous else "homogeneous"
    instances = None if heterogeneous else HOMOGENEOUS_INSTANCES
    return _compare_many(kind, names, systems, instances, input_scale, spec,
                         orchestrator)


# --------------------------------------------------------------------------- #
# Figure 10: data-processing throughput                                        #
# --------------------------------------------------------------------------- #
def fig10a_homogeneous_throughput(
        workloads: Sequence[str] = tuple(POLYBENCH_ORDER),
        systems: Sequence[str] = tuple(SYSTEMS),
        instances: int = HOMOGENEOUS_INSTANCES,
        input_scale: float = 1.0,
        spec: Optional[HardwareSpec] = None,
        orchestrator: Optional[ExperimentOrchestrator] = None
        ) -> Dict[str, Dict[str, float]]:
    """Throughput (MB/s) of every system for each homogeneous workload."""
    comparisons = _compare_many("homogeneous", workloads, systems,
                                instances, input_scale, spec, orchestrator)
    return {name: {s: comparisons[name].throughput(s) for s in systems}
            for name in workloads}


def fig10b_heterogeneous_throughput(
        mixes: Sequence[str] = tuple(MIX_ORDER),
        systems: Sequence[str] = tuple(SYSTEMS),
        instances_per_kernel: int = HETEROGENEOUS_INSTANCES_PER_KERNEL,
        input_scale: float = 1.0,
        spec: Optional[HardwareSpec] = None,
        orchestrator: Optional[ExperimentOrchestrator] = None
        ) -> Dict[str, Dict[str, float]]:
    """Throughput (MB/s) of every system for each heterogeneous mix."""
    comparisons = _compare_many("heterogeneous", mixes, systems,
                                instances_per_kernel, input_scale, spec,
                                orchestrator)
    return {mix: {s: comparisons[mix].throughput(s) for s in systems}
            for mix in mixes}


# --------------------------------------------------------------------------- #
# Figure 11: latency (min / avg / max, normalized to SIMD)                     #
# --------------------------------------------------------------------------- #
def fig11_latency(workloads: Sequence[str],
                  heterogeneous: bool = False,
                  systems: Sequence[str] = tuple(SYSTEMS),
                  input_scale: float = 1.0,
                  spec: Optional[HardwareSpec] = None,
                  orchestrator: Optional[ExperimentOrchestrator] = None
                  ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Kernel latency statistics normalized to SIMD (Fig. 11a/11b)."""
    comparisons = _compare_flavor_many(heterogeneous, workloads, systems,
                                       input_scale, spec, orchestrator)
    return {name: comparisons[name].normalized_latency("SIMD")
            for name in workloads}


# --------------------------------------------------------------------------- #
# Figure 12: CDF of kernel completion times                                    #
# --------------------------------------------------------------------------- #
def fig12_completion_cdf(workload: str = "ATAX",
                         heterogeneous: bool = False,
                         systems: Sequence[str] = tuple(SYSTEMS),
                         input_scale: float = 1.0,
                         spec: Optional[HardwareSpec] = None,
                         orchestrator: Optional[ExperimentOrchestrator] = None
                         ) -> Dict[str, List[Tuple[float, int]]]:
    """(completion time, #kernels completed) series per system (Fig. 12)."""
    comparison = _compare_flavor(heterogeneous, workload, systems,
                                 input_scale, spec, orchestrator)
    out: Dict[str, List[Tuple[float, int]]] = {}
    for system in systems:
        completions = comparison.reports[system].completion_times
        out[system] = [(t, i + 1) for i, t in enumerate(sorted(completions))]
    return out


# --------------------------------------------------------------------------- #
# Figure 13: energy decomposition (normalized to SIMD)                         #
# --------------------------------------------------------------------------- #
def fig13_energy_breakdown(workloads: Sequence[str],
                           heterogeneous: bool = False,
                           systems: Sequence[str] = tuple(SYSTEMS),
                           input_scale: float = 1.0,
                           spec: Optional[HardwareSpec] = None,
                           orchestrator: Optional[ExperimentOrchestrator] = None
                           ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Energy split into data movement / computation / storage access.

    Every bucket is normalized to the total energy of SIMD for the same
    workload, as in the paper's Figure 13.
    """
    comparisons = _compare_flavor_many(heterogeneous, workloads, systems,
                                       input_scale, spec, orchestrator)
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in workloads:
        comparison = comparisons[name]
        simd_total = comparison.reports["SIMD"].energy.total \
            if "SIMD" in comparison.reports else None
        per_system: Dict[str, Dict[str, float]] = {}
        for system in systems:
            energy = comparison.reports[system].energy
            denom = simd_total if simd_total else energy.total or 1.0
            per_system[system] = {
                "data_movement": energy.data_movement / denom,
                "computation": energy.computation / denom,
                "storage_access": energy.storage_access / denom,
                "total": energy.total / denom,
            }
        results[name] = per_system
    return results


# --------------------------------------------------------------------------- #
# Figure 14: processor (LWP) utilization                                       #
# --------------------------------------------------------------------------- #
def fig14_utilization(workloads: Sequence[str],
                      heterogeneous: bool = False,
                      systems: Sequence[str] = tuple(SYSTEMS),
                      input_scale: float = 1.0,
                      spec: Optional[HardwareSpec] = None,
                      orchestrator: Optional[ExperimentOrchestrator] = None
                      ) -> Dict[str, Dict[str, float]]:
    """Average LWP utilization (%) per system (Fig. 14a/14b)."""
    comparisons = _compare_flavor_many(heterogeneous, workloads, systems,
                                       input_scale, spec, orchestrator)
    return {name: {s: comparisons[name].utilization(s) * 100.0
                   for s in systems}
            for name in workloads}


# --------------------------------------------------------------------------- #
# Figure 15: functional-unit utilization and power over time                   #
# --------------------------------------------------------------------------- #
@dataclass
class TimeSeriesResult:
    """Resampled FU-utilization and power traces for one system (Fig. 15)."""

    system: str
    makespan_s: float
    fu_times: List[float] = field(default_factory=list)
    fu_values: List[float] = field(default_factory=list)
    power_times: List[float] = field(default_factory=list)
    power_values: List[float] = field(default_factory=list)

    @property
    def peak_power_w(self) -> float:
        return max(self.power_values) if self.power_values else 0.0

    @property
    def mean_active_fus(self) -> float:
        if not self.fu_values:
            return 0.0
        return sum(self.fu_values) / len(self.fu_values)


def fig15_timeseries(workload: str = "MX1",
                     systems: Sequence[str] = ("SIMD", "IntraO3"),
                     input_scale: float = 1.0,
                     sample_points: int = 200,
                     spec: Optional[HardwareSpec] = None,
                     orchestrator: Optional[ExperimentOrchestrator] = None
                     ) -> Dict[str, TimeSeriesResult]:
    """FU-utilization and power time series for SIMD vs. IntraO3 (Fig. 15)."""
    comparison = _compare("heterogeneous", workload, systems, None,
                          input_scale, spec, orchestrator,
                          track_power_series=True)
    out: Dict[str, TimeSeriesResult] = {}
    for system in systems:
        report = comparison.reports[system]
        result = TimeSeriesResult(system=system, makespan_s=report.makespan_s)
        step = max(report.makespan_s / sample_points, 1e-6)
        if report.fu_series is not None and len(report.fu_series):
            resampled = report.fu_series.resample(step, end=report.makespan_s)
            result.fu_times = resampled.times()
            result.fu_values = resampled.values()
        if report.power_series is not None and len(report.power_series):
            resampled = report.power_series.resample(step,
                                                     end=report.makespan_s)
            result.power_times = resampled.times()
            result.power_values = resampled.values()
        out[system] = result
    return out


# --------------------------------------------------------------------------- #
# Figure 16: graph / big-data applications                                     #
# --------------------------------------------------------------------------- #
def fig16_realworld(workloads: Sequence[str] = tuple(REALWORLD_ORDER),
                    systems: Sequence[str] = tuple(SYSTEMS),
                    instances: int = HOMOGENEOUS_INSTANCES,
                    input_scale: float = 1.0,
                    spec: Optional[HardwareSpec] = None,
                    orchestrator: Optional[ExperimentOrchestrator] = None
                    ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Throughput and normalized energy for bfs/wc/nn/nw/path (Fig. 16)."""
    comparisons = _compare_many("realworld", workloads, systems, instances,
                                input_scale, spec, orchestrator)
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in workloads:
        comparison = comparisons[name]
        simd_energy = comparison.energy("SIMD") if "SIMD" in systems else None
        per_system: Dict[str, Dict[str, float]] = {}
        for system in systems:
            report = comparison.reports[system]
            denom = simd_energy if simd_energy else report.energy_joules or 1.0
            per_system[system] = {
                "throughput_mb_per_s": report.throughput_mb_per_s,
                "normalized_energy": report.energy_joules / denom,
            }
        results[name] = per_system
    return results


# --------------------------------------------------------------------------- #
# Headline numbers (abstract / conclusion)                                     #
# --------------------------------------------------------------------------- #
def headline_summary(workloads: Sequence[str] = ("ATAX", "MVT", "SYRK", "3MM"),
                     input_scale: float = 0.1,
                     spec: Optional[HardwareSpec] = None,
                     orchestrator: Optional[ExperimentOrchestrator] = None
                     ) -> Dict[str, float]:
    """Average IntraO3-vs-SIMD throughput gain and energy saving.

    The paper's headline: +127% bandwidth, -78.4% energy.  This helper
    reports the same two aggregates over a representative workload subset.
    """
    gains: List[float] = []
    savings: List[float] = []
    comparisons = _compare_many("homogeneous", workloads, ("SIMD", "IntraO3"),
                                HOMOGENEOUS_INSTANCES, input_scale, spec,
                                orchestrator)
    for name in workloads:
        simd = comparisons[name].reports["SIMD"]
        intra = comparisons[name].reports["IntraO3"]
        if simd.throughput_mb_per_s > 0:
            gains.append(intra.throughput_mb_per_s / simd.throughput_mb_per_s)
        if simd.energy_joules > 0:
            savings.append(1.0 - intra.energy_joules / simd.energy_joules)
    return {
        "mean_throughput_gain": (sum(gains) / len(gains)) if gains else 0.0,
        "mean_energy_saving": (sum(savings) / len(savings)) if savings else 0.0,
    }
