"""Plain-text table rendering for experiment results.

Every benchmark prints the same kind of rows the paper's tables and figures
report; EXPERIMENTS.md is assembled from the same strings so that the
recorded numbers always match what the harness produces.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 float_format: str = "{:.2f}") -> str:
    """Render ``rows`` as a fixed-width text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header_line = "  ".join(str(h).ljust(widths[i])
                            for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_comparison(title: str, metric_by_system: Dict[str, Dict[str, float]],
                      metric_name: str = "value",
                      float_format: str = "{:.2f}") -> str:
    """Render {workload: {system: value}} as a table with systems as columns."""
    systems: List[str] = []
    for per_system in metric_by_system.values():
        for system in per_system:
            if system not in systems:
                systems.append(system)
    headers = ["workload"] + systems
    rows = []
    for workload, per_system in metric_by_system.items():
        rows.append([workload] + [per_system.get(s, float("nan"))
                                  for s in systems])
    return f"{title} ({metric_name})\n" + format_table(headers, rows,
                                                       float_format)


def _fastforward_cell(point) -> str:
    """One table cell for a point's fast-forward annotation.

    Long refusal reasons are truncated so the table stays readable;
    points predating the annotation (plain tuples, old pickles) render
    as the exact-engine default.
    """
    text = getattr(point, "fastforward", None)
    if text is None:
        return "-"
    return text if len(text) <= 40 else text[:37] + "..."


def format_saturation_sweep(curves: Dict[str, Sequence],
                            slo_s: float = None) -> str:
    """Render {system: [SaturationPoint]} as one offered-load table.

    One row per (system, offered rate): goodput, admitted/rejected counts
    and the latency tail.  With ``slo_s`` the per-system SLO knee (highest
    load with p99 within the SLO) is appended.  A ``fastforward`` column
    (engaged / exact-with-reason) appears only when at least one point
    carries an annotation, so plain exact sweeps render exactly as
    before.
    """
    headers = ["system", "offered_rps", "goodput_rps", "admitted",
               "rejected", "slo_viol", "p50_ms", "p95_ms", "p99_ms"]
    annotated = any(getattr(p, "fastforward", None) is not None
                    for points in curves.values() for p in points)
    if annotated:
        headers.append("fastforward")
    rows = []
    for system, points in curves.items():
        for p in points:
            row = [
                system, p.offered_rps, p.goodput_rps, p.admitted,
                p.rejected, p.slo_violations,
                -1.0 if p.p50_s is None else p.p50_s * 1e3,
                -1.0 if p.p95_s is None else p.p95_s * 1e3,
                -1.0 if p.p99_s is None else p.p99_s * 1e3,
            ]
            if annotated:
                row.append(_fastforward_cell(p))
            rows.append(row)
    text = "Saturation sweep (goodput vs. offered load)\n" \
        + format_table(headers, rows)
    if slo_s is not None:
        from .serving import find_knee
        knee_lines = []
        for system, points in curves.items():
            knee = find_knee(points, slo_s)
            knee_lines.append(
                f"  {system}: "
                + (f"{knee:g} rps" if knee is not None
                   else f"below sweep range (p99 > {slo_s * 1e3:g} ms "
                        f"everywhere)"))
        text += (f"\nSLO knee (highest load with p99 <= "
                 f"{slo_s * 1e3:g} ms):\n" + "\n".join(knee_lines))
    return text


def format_scaling_sweep(points: Sequence, slo_s: float = None) -> str:
    """Render a cluster scaling sweep as one device-count table.

    One row per fleet size: goodput, the speedup over the smallest fleet,
    admitted/rejected counts, the latency tail, summed energy, and the
    number of failure reroutes.  With ``slo_s`` a per-row SLO verdict
    column is added (whether fleet p99 is inside the SLO).  A
    ``fastforward`` column appears only when at least one point carries
    an annotation, so plain exact sweeps render exactly as before.
    """
    from .cluster import scaling_efficiency
    ordered = sorted(points, key=lambda p: p.device_count)
    factors = scaling_efficiency(ordered)
    headers = ["devices", "offered_rps", "goodput_rps", "speedup",
               "admitted", "rejected", "slo_viol", "p50_ms", "p99_ms",
               "energy_j", "reroutes"]
    if slo_s is not None:
        headers.append("p99<=SLO")
    annotated = any(getattr(p, "fastforward", None) is not None
                    for p in ordered)
    if annotated:
        headers.append("fastforward")
    rows = []
    for point, factor in zip(ordered, factors):
        row = [
            point.device_count, point.offered_rps, point.goodput_rps,
            # A zero-goodput reference point makes every speedup factor
            # the `inf` sentinel — meaningless as a ratio, so the table
            # says so instead of printing `inf`.
            "n/a" if factor == float("inf") else factor,
            point.admitted, point.rejected, point.slo_violations,
            -1.0 if point.p50_s is None else point.p50_s * 1e3,
            -1.0 if point.p99_s is None else point.p99_s * 1e3,
            point.energy_j, point.reroutes,
        ]
        if slo_s is not None:
            row.append("yes" if point.p99_s is not None
                       and point.p99_s <= slo_s else "no")
        if annotated:
            row.append(_fastforward_cell(point))
        rows.append(row)
    return "Cluster scaling sweep (goodput vs. device count)\n" \
        + format_table(headers, rows)


def format_elastic(comparisons: Sequence) -> str:
    """Render elastic-vs-static fleet comparisons as one table.

    Two rows per scenario (the autoscaled fleet, then the static fleet
    pinned at the same maximum): provisioned device-seconds, fleet-size
    range, scale decisions, goodput, the latency tail, SLO compliance and
    dropped admitted requests (always 0 — drain-safe scale-down is an
    invariant, the column is the receipt).  A per-scenario savings line
    follows the table.
    """
    headers = ["scenario", "fleet", "device_s", "devices", "scales",
               "goodput_rps", "p99_ms", "slo_ok_pct", "dropped"]
    rows = []
    for comparison in comparisons:
        for outcome in (comparison.elastic, comparison.static):
            size = (str(outcome.peak_devices)
                    if outcome.low_devices == outcome.peak_devices
                    else f"{outcome.low_devices}-{outcome.peak_devices}")
            rows.append([
                comparison.scenario, outcome.mode, outcome.device_seconds,
                size, outcome.scale_events, outcome.goodput_rps,
                -1.0 if outcome.p99_s is None else outcome.p99_s * 1e3,
                100.0 * outcome.slo_compliance, outcome.dropped,
            ])
    text = ("Elastic fleet vs. static max-provisioned fleet\n"
            + format_table(headers, rows))
    for comparison in comparisons:
        text += (f"\n{comparison.scenario}: elastic fleet saved "
                 f"{comparison.device_seconds_saved_pct:.1f}% "
                 f"device-seconds at "
                 f"{comparison.compliance_gap * 100:+.2f} pp SLO "
                 f"compliance vs. static")
    return text


def format_policy_grid(points: Sequence, slo_s: float = None) -> str:
    """Render a cross-layer policy grid as one table.

    One row per (scheduler, admission, dispatch, placement) combination:
    goodput, admitted/rejected counts, the latency tail, and summed
    energy.  With ``slo_s`` a per-row SLO verdict column is added and the
    best SLO-compliant combination is called out underneath (falling back
    to a plain best-goodput line when nothing is compliant).
    """
    from .policy_grid import best_by_goodput
    headers = ["scheduler", "admission", "dispatch", "placement",
               "goodput_rps", "admitted", "rejected", "slo_viol",
               "p50_ms", "p99_ms", "energy_j"]
    if slo_s is not None:
        headers.append("p99<=SLO")
    rows = []
    for p in points:
        row = [
            p.describe("scheduler"), p.describe("admission"),
            p.describe("dispatch"), p.describe("placement"),
            p.goodput_rps, p.admitted, p.rejected, p.slo_violations,
            -1.0 if p.p50_s is None else p.p50_s * 1e3,
            -1.0 if p.p99_s is None else p.p99_s * 1e3,
            p.energy_j,
        ]
        if slo_s is not None:
            row.append("yes" if p.p99_s is not None
                       and p.p99_s <= slo_s else "no")
        rows.append(row)
    text = ("Policy grid (scheduler x admission x dispatch x placement)\n"
            + format_table(headers, rows))
    best = best_by_goodput(points, slo_s=slo_s)
    if best is not None:
        verdict = ("best SLO-compliant combination" if slo_s is not None
                   else "best goodput")
        text += (f"\n{verdict}: {best.label} "
                 f"at {best.goodput_rps:.1f} rps")
    elif points:
        fallback = best_by_goodput(points)
        text += (f"\nno combination meets the SLO; highest goodput: "
                 f"{fallback.label} at {fallback.goodput_rps:.1f} rps")
    return text


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, ignoring non-positive entries."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for v in filtered:
        product *= v
    return product ** (1.0 / len(filtered))


def improvement_pct(new: float, old: float) -> float:
    """Percentage improvement of ``new`` over ``old`` ((new-old)/old * 100)."""
    if old == 0:
        return float("inf") if new > 0 else 0.0
    return (new - old) / old * 100.0
