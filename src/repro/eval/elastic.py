"""Elastic-fleet evaluation: autoscaled vs. statically provisioned.

The question an autoscaler must answer in the paper's terms: how many
device-seconds does reacting to load save over provisioning for the peak,
*without* giving up SLO compliance or dropping admitted work?  This module
builds the scenario axis the ROADMAP names — diurnal traffic, a spot-style
preemption drill (via the PR-3 fault path), and tenant churn — runs each
scenario twice (an elastic fleet bounded by ``[min, max]`` devices, and a
static fleet pinned at ``max``), and rolls both runs into one
:class:`ElasticComparison` that
:func:`~repro.eval.report.format_elastic` renders.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..platform.cluster import ClusterConfig, FaultSpec
from ..platform.config import PlatformConfig
from ..policy import PolicySpec
from ..serve.session import ServingScenario, TenantSpec
from ..cluster.parallel import ParallelConfig
from .cluster import ClusterExperimentSpec
from .orchestrator import ExperimentOrchestrator, default_orchestrator

#: The ROADMAP's elastic scenario axis, in presentation order.
ELASTIC_SCENARIOS: Tuple[str, ...] = ("diurnal", "preemption", "churn")

#: Default autoscaler the comparisons run with.  The low up-threshold
#: makes the fleet react within a control tick or two of a ramp — at the
#: calibrated device scale a queue three deep already means ~30 ms of
#: wait against a 250 ms SLO.  The down-threshold is on *outstanding*
#: work per device: below half a request per device the fleet is
#: genuinely idle, not just between queue bursts.
DEFAULT_AUTOSCALER = PolicySpec("queue_depth_threshold",
                                {"scale_up_depth": 3.0,
                                 "scale_down_depth": 0.5})

#: Tail-latency objective of the elastic scenarios (matches the cluster
#: scaling benchmark, so "equal SLO compliance" means the same bar).
ELASTIC_SLO_S = 0.25

#: Device scale the scenarios are calibrated against: the same
#: ``input_scale=0.01`` FlashAbacus board the cluster scaling benchmark
#: uses, whose single-device p99-SLO knee sits near 240 rps.
ELASTIC_INPUT_SCALE = 0.01


def elastic_device() -> PlatformConfig:
    """The device template the elastic scenarios are calibrated for."""
    return PlatformConfig(system="IntraO3", input_scale=ELASTIC_INPUT_SCALE)


def elastic_tenants() -> Tuple[TenantSpec, ...]:
    """Two equal-share tenants under the elastic SLO."""
    return (TenantSpec("tenant-a", 1.0, ELASTIC_SLO_S),
            TenantSpec("tenant-b", 1.0, ELASTIC_SLO_S))


# ---------------------------------------------------------------------- #
# Scenario factories                                                      #
# ---------------------------------------------------------------------- #
def diurnal_scenario(peak_rps: float = 480.0, duration_s: float = 3.0,
                     seed: int = 7, period_s: float = 3.0,
                     floor: float = 0.1) -> ServingScenario:
    """Day/night load: offered rate swings between ``floor*peak`` and peak.

    The canonical elastic workload — a static fleet must provision for
    the peak and idles through every trough.  The default peak needs
    roughly two to three of the calibrated devices; the trough fits on
    one.  ``period_s == duration_s`` gives one full day/night cycle, so
    the troughs dwell long enough for the fleet to actually shrink —
    cycling much faster than the control cadence just makes the fleet
    chase ramps.
    """
    return ServingScenario(process="diurnal", offered_rps=peak_rps,
                           duration_s=duration_s, seed=seed,
                           tenants=elastic_tenants(), max_queue_depth=12,
                           diurnal_period_s=period_s, diurnal_floor=floor)


def preemption_faults(fail_device: int, fail_at_s: float,
                      recover_at_s: float) -> Tuple[FaultSpec, ...]:
    """A spot-style reclaim drill on the existing fault path.

    Device ``fail_device`` is yanked at ``fail_at_s`` (its backlog
    reroutes, in-flight work drains — the spot two-minute warning in
    miniature) and handed back at ``recover_at_s``; the autoscaler must
    ride through both transitions.
    """
    if recover_at_s <= fail_at_s:
        raise ValueError("recovery must come after the failure")
    return (FaultSpec(fail_at_s, fail_device, "failed"),
            FaultSpec(recover_at_s, fail_device, "healthy"))


def preemption_scenario(offered_rps: float = 300.0,
                        duration_s: float = 3.0,
                        seed: int = 11) -> ServingScenario:
    """Steady Poisson load for the preemption drill.

    The interesting dynamics come from the fault timeline
    (:func:`preemption_faults`), not the arrivals.
    """
    return ServingScenario(process="poisson", offered_rps=offered_rps,
                           duration_s=duration_s, seed=seed,
                           tenants=elastic_tenants(), max_queue_depth=12)


def churn_scenario(duration_s: float = 3.0, seed: int = 13,
                   busy_rps: float = 300.0,
                   quiet_rps: float = 60.0) -> ServingScenario:
    """Tenant churn: tenants arrive and depart in waves (trace process).

    ``tenant-a`` serves background load throughout; ``tenant-b`` is busy
    in the first half then leaves, ``tenant-c`` onboards in the second
    half.  The fleet-level rate steps with the tenant population, so the
    autoscaler sees churn rather than a smooth curve.  The trace is a
    pure function of ``seed``.
    """
    rng = random.Random(seed)
    workloads = list(ServingScenario().workloads)
    half = duration_s / 2.0

    def wave(tenant: str, start: float, end: float, rps: float):
        t = start
        while True:
            t += rng.expovariate(rps)
            if t >= end:
                return
            yield (t, tenant, rng.choice(workloads))

    events = []
    events.extend(wave("tenant-a", 0.0, duration_s, quiet_rps))
    events.extend(wave("tenant-b", 0.0, half, busy_rps))
    events.extend(wave("tenant-c", half, duration_s, busy_rps))
    events.sort()
    tenants = elastic_tenants() + (
        TenantSpec("tenant-c", 1.0, ELASTIC_SLO_S),)
    return ServingScenario(process="trace", duration_s=duration_s,
                           seed=seed, tenants=tenants, max_queue_depth=12,
                           trace_events=tuple(events))


# ---------------------------------------------------------------------- #
# Comparison                                                              #
# ---------------------------------------------------------------------- #
@dataclass
class FleetOutcome:
    """One fleet's side of an elastic-vs-static comparison."""

    mode: str                   # "elastic" or "static"
    device_seconds: float       # provisioned device-time actually paid
    peak_devices: int
    low_devices: int            # smallest active fleet seen
    scale_events: int           # scale_up + scale_down decisions
    offered: int
    admitted: int
    completed: int
    dropped: int                # admitted - completed (must be 0)
    slo_violations: int
    goodput_rps: float
    p99_s: Optional[float]
    energy_j: float

    @property
    def slo_compliance(self) -> float:
        """Fraction of completed requests inside their SLO."""
        if self.completed == 0:
            return 1.0
        return (self.completed - self.slo_violations) / self.completed


def fleet_outcome(mode: str, report) -> FleetOutcome:
    """Summarize one :class:`~repro.cluster.report.ClusterReport`."""
    summary = report.autoscaler
    if summary is not None:
        device_seconds = summary["total_device_seconds"]
        peak = summary["peak_devices"]
        low = summary["min_active_devices"]
        events = sum(1 for event in summary["events"]
                     if event[1] in ("scale_up", "scale_down"))
    else:
        device_seconds = report.device_count * report.makespan_s
        peak = low = report.device_count
        events = 0
    return FleetOutcome(
        mode=mode, device_seconds=device_seconds, peak_devices=peak,
        low_devices=low, scale_events=events, offered=report.offered,
        admitted=report.admitted, completed=report.completed,
        dropped=report.admitted - report.completed,
        slo_violations=report.slo_violations,
        goodput_rps=report.goodput_rps, p99_s=report.p99_s,
        energy_j=report.energy_j)


@dataclass
class ElasticComparison:
    """Elastic vs. statically max-provisioned fleet on one scenario."""

    scenario: str
    elastic: FleetOutcome
    static: FleetOutcome

    @property
    def device_seconds_saved_pct(self) -> float:
        """Provisioned device-time the elastic fleet saved, percent."""
        if self.static.device_seconds == 0:
            return 0.0
        saved = self.static.device_seconds - self.elastic.device_seconds
        return 100.0 * saved / self.static.device_seconds

    @property
    def compliance_gap(self) -> float:
        """SLO-compliance delta (elastic - static); ~0 = equal quality."""
        return self.elastic.slo_compliance - self.static.slo_compliance


def elastic_cluster(device: Optional[PlatformConfig] = None,
                    initial_devices: int = 2, min_devices: int = 1,
                    max_devices: int = 4,
                    autoscaler: Optional[PolicySpec] = None,
                    warmup_s: float = 0.1,
                    interval_s: float = 0.1,
                    faults: Tuple[FaultSpec, ...] = ()) -> ClusterConfig:
    """An elastic fleet: starts at ``initial_devices``, bounded [min, max]."""
    device = device if device is not None else elastic_device()
    spec = autoscaler if autoscaler is not None else DEFAULT_AUTOSCALER
    return ClusterConfig.homogeneous(
        initial_devices, device, faults=faults, autoscaler_spec=spec,
        min_devices=min_devices, max_devices=max_devices,
        warmup_s=warmup_s, autoscale_interval_s=interval_s)


def elastic_comparison(scenario: ServingScenario, label: str,
                       device: Optional[PlatformConfig] = None,
                       initial_devices: int = 2, min_devices: int = 1,
                       max_devices: int = 4,
                       autoscaler: Optional[PolicySpec] = None,
                       warmup_s: float = 0.1, interval_s: float = 0.1,
                       faults: Tuple[FaultSpec, ...] = (),
                       orchestrator: Optional[ExperimentOrchestrator]
                       = None) -> ElasticComparison:
    """Run one scenario on an elastic and a static-max fleet.

    The static reference is pinned at ``max_devices`` — what you would
    provision without an autoscaler to survive the same peak.  Both runs
    go through the experiment orchestrator, so repeats are cache hits.
    """
    device = device if device is not None else elastic_device()
    orch = orchestrator if orchestrator is not None \
        else default_orchestrator()
    elastic = elastic_cluster(device, initial_devices, min_devices,
                              max_devices, autoscaler, warmup_s,
                              interval_s, faults)
    static = ClusterConfig.homogeneous(max_devices, device, faults=faults)
    # The elastic cell needs the serial session (the fleet resizes
    # mid-run); the static reference is a fixed round-robin fleet, so it
    # takes the epoch-parallel path — byte-identical by contract, and
    # key-aliased to the serial cache entry.
    specs = [ClusterExperimentSpec(scenario=scenario, cluster=elastic),
             ClusterExperimentSpec(scenario=scenario, cluster=static,
                                   parallel=ParallelConfig())]
    reports = orch.run(specs)
    return ElasticComparison(
        scenario=label,
        elastic=fleet_outcome("elastic", reports[specs[0].key]),
        static=fleet_outcome("static", reports[specs[1].key]))


def elastic_sweep(scenarios: Sequence[str] = ELASTIC_SCENARIOS,
                  device: Optional[PlatformConfig] = None,
                  max_devices: int = 4,
                  autoscaler: Optional[PolicySpec] = None,
                  quick: bool = False,
                  orchestrator: Optional[ExperimentOrchestrator] = None,
                  ) -> List[ElasticComparison]:
    """The elastic-vs-static comparison across the named scenarios.

    ``quick`` shrinks every scenario's duration/load for CI smoke runs.
    Unknown scenario names raise with the valid set.
    """
    unknown = sorted(set(scenarios) - set(ELASTIC_SCENARIOS))
    if unknown:
        raise ValueError(f"unknown elastic scenario(s) {unknown}; "
                         f"choose from {list(ELASTIC_SCENARIOS)}")
    results = []
    for name in scenarios:
        faults: Tuple[FaultSpec, ...] = ()
        if name == "diurnal":
            scenario = (diurnal_scenario(peak_rps=360.0, duration_s=2.0,
                                         period_s=2.0) if quick
                        else diurnal_scenario())
        elif name == "preemption":
            scenario = (preemption_scenario(offered_rps=240.0,
                                            duration_s=2.0) if quick
                        else preemption_scenario())
            third = scenario.duration_s / 3.0
            faults = preemption_faults(fail_device=0, fail_at_s=third,
                                       recover_at_s=2.0 * third)
        else:  # churn
            scenario = (churn_scenario(duration_s=2.0, busy_rps=240.0)
                        if quick else churn_scenario())
        results.append(elastic_comparison(
            scenario, name, device=device, max_devices=max_devices,
            autoscaler=autoscaler, orchestrator=orchestrator,
            faults=faults))
    return results
