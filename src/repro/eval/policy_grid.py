"""Cross-layer policy-grid sweeps through the orchestrator.

The paper's headline results are comparisons *between policies*; with all
four policy families on the unified registry (:mod:`repro.policy`), a
whole cross product — device scheduler x admission x dispatch x placement
— is one orchestrated batch: :func:`policy_grid` expands the axes into
one :class:`~repro.eval.cluster.ClusterExperimentSpec` per combination
and submits them through the same registry, result cache and parallel
pool as every other experiment, so re-running a grid is served from the
cache and only new cells simulate.

Every axis accepts policy selections in all three spellings a
:class:`~repro.policy.PolicySpec` coerces from (spec, bare name string,
``{"name": ..., "params": ...}`` dict), so parameterized policies sweep
exactly like parameterless ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster.report import ClusterReport
from ..platform.cluster import ClusterConfig
from ..platform.config import PlatformConfig
from ..policy import PolicySpec, resolved_policy_spec
from ..serve.session import ServingScenario
from .cluster import ClusterExperimentSpec
from .orchestrator import ExperimentOrchestrator, default_orchestrator

#: Default axes: a 2x2x2x2 grid over the headline device schedulers and
#: one representative pair per front-end/cluster domain.
DEFAULT_SCHEDULERS = ("InterDy", "IntraO3")
DEFAULT_ADMISSIONS = ("queue_depth", "deadline")
DEFAULT_DISPATCHES = ("round_robin", "weighted_fair")
DEFAULT_PLACEMENTS = ("round_robin", "least_outstanding")


def describe_policy(name: str, params: Mapping[str, Any]) -> str:
    """Compact ``name{k=v, ...}`` rendering; just the name when bare.

    Grid axes may hold several parameterizations of one policy, so
    report rows and labels must carry the params or the cells become
    indistinguishable.
    """
    if not params:
        return name
    inner = ", ".join(f"{k}={params[k]!r}" for k in sorted(params))
    return f"{name}{{{inner}}}"


@dataclass(frozen=True)
class PolicyCombo:
    """One grid cell: a policy selection in every domain."""

    scheduler: PolicySpec
    admission: PolicySpec
    dispatch: PolicySpec
    placement: PolicySpec

    @property
    def label(self) -> str:
        """Compact ``sched/adm/disp/place`` identity (params included)."""
        return "/".join(describe_policy(spec.name, spec.params)
                        for spec in (self.scheduler, self.admission,
                                     self.dispatch, self.placement))


@dataclass
class PolicyGridPoint:
    """One grid cell's outcome: the combo plus the fleet-level metrics.

    The four ``*_params`` dicts keep parameterized cells apart: an axis
    may sweep several parameterizations of one policy name, and the
    report must be able to tell them apart.
    """

    scheduler: str
    admission: str
    dispatch: str
    placement: str
    offered_rps: float          # realized arrivals / duration
    goodput_rps: float
    admitted: int
    rejected: int
    completed: int
    slo_violations: int
    p50_s: Optional[float]
    p99_s: Optional[float]
    energy_j: float
    scheduler_params: Dict[str, Any] = field(default_factory=dict)
    admission_params: Dict[str, Any] = field(default_factory=dict)
    dispatch_params: Dict[str, Any] = field(default_factory=dict)
    placement_params: Dict[str, Any] = field(default_factory=dict)

    def describe(self, domain: str) -> str:
        """``name{params}`` rendering of one domain's selection."""
        return describe_policy(getattr(self, domain),
                               getattr(self, f"{domain}_params"))

    @property
    def label(self) -> str:
        """Compact ``sched/adm/disp/place`` identity (params included)."""
        return "/".join(self.describe(domain) for domain in
                        ("scheduler", "admission", "dispatch", "placement"))

    @classmethod
    def from_report(cls, combo: PolicyCombo,
                    report: ClusterReport) -> "PolicyGridPoint":
        return cls(
            scheduler=combo.scheduler.name,
            admission=combo.admission.name,
            dispatch=combo.dispatch.name,
            placement=combo.placement.name,
            offered_rps=report.offered_rps,
            goodput_rps=report.goodput_rps,
            admitted=report.admitted,
            rejected=report.rejected,
            completed=report.completed,
            slo_violations=report.slo_violations,
            p50_s=report.p50_s,
            p99_s=report.p99_s,
            energy_j=report.energy_j,
            scheduler_params=dict(combo.scheduler.params),
            admission_params=dict(combo.admission.params),
            dispatch_params=dict(combo.dispatch.params),
            placement_params=dict(combo.placement.params),
        )


def _coerce_axis(axis: Sequence[Any], domain: str) -> List[PolicySpec]:
    # resolved_policy_spec materializes constructor defaults into learned
    # specs (warm-up, exploration, retrain cadence are behavior), so a
    # learned cell's cache key can never alias a result computed under a
    # since-retuned default; static specs pass through untouched and keep
    # every pre-existing cache key byte-identical.
    specs = [resolved_policy_spec(domain, entry) for entry in axis]
    if not specs:
        raise ValueError(f"the {domain} axis of a policy grid needs at "
                         f"least one policy")
    return specs


def policy_grid_specs(
        schedulers: Sequence[Any] = DEFAULT_SCHEDULERS,
        admissions: Sequence[Any] = DEFAULT_ADMISSIONS,
        dispatches: Sequence[Any] = DEFAULT_DISPATCHES,
        placements: Sequence[Any] = DEFAULT_PLACEMENTS,
        scenario: Optional[ServingScenario] = None,
        device_config: Optional[PlatformConfig] = None,
        device_count: int = 2,
        devices: Optional[Sequence[PlatformConfig]] = None,
        ) -> List[Tuple[PolicyCombo, ClusterExperimentSpec]]:
    """Expand the axes into one cluster experiment per combination.

    Cells iterate in cross-product order (scheduler outermost, placement
    innermost).  Parameterless scheduler/placement selections are folded
    into the legacy string knobs (``system`` / ``placement``), so those
    parts of each cell's config serialize pre-policy-layer; the scenario
    always carries explicit ``admission_spec``/``dispatch_spec`` because
    the grid overrides both axes per cell.

    ``devices`` builds each cell's fleet from an explicit per-device
    config list instead of ``device_count`` copies of ``device_config`` —
    the heterogeneous-fleet axis (e.g. one straggler board at a larger
    ``input_scale``).  The scheduler selection still applies fleet-wide
    (each device keeps its own capacity knobs but runs the cell's
    scheduler); pass ``devices`` or ``device_config``, never both.
    """
    if devices is not None:
        if device_config is not None:
            raise ValueError(
                "pass either devices (heterogeneous fleet) or "
                "device_config (homogeneous fleet), not both")
        base_devices: Tuple[PlatformConfig, ...] = tuple(devices)
        if not base_devices:
            raise ValueError("devices needs at least one PlatformConfig")
    else:
        if device_count < 1:
            raise ValueError("device_count must be >= 1")
        base = device_config if device_config is not None \
            else PlatformConfig()
        base_devices = tuple(base for _ in range(device_count))
    base_scenario = scenario if scenario is not None else ServingScenario()
    grid: List[Tuple[PolicyCombo, ClusterExperimentSpec]] = []
    for sched in _coerce_axis(schedulers, "scheduler"):
        if sched.params:
            cell_devices = tuple(
                device.with_overrides(scheduler_policy=sched)
                for device in base_devices)
        else:
            cell_devices = tuple(device.with_system(sched.name)
                                 for device in base_devices)
        for adm in _coerce_axis(admissions, "admission"):
            for disp in _coerce_axis(dispatches, "dispatch"):
                if adm.name == "queue_depth" and not adm.params:
                    # Bare "queue_depth" falls back to the legacy string
                    # knob so the base scenario's max_queue_depth keeps
                    # applying, exactly as it does outside the grid.
                    cell_scenario = base_scenario.with_overrides(
                        admission="queue_depth", admission_spec=None,
                        dispatch_spec=disp)
                else:
                    cell_scenario = base_scenario.with_overrides(
                        admission_spec=adm, dispatch_spec=disp)
                for place in _coerce_axis(placements, "placement"):
                    if place.params:
                        cluster = ClusterConfig(
                            devices=cell_devices, placement_spec=place)
                    else:
                        cluster = ClusterConfig(
                            devices=cell_devices, placement=place.name)
                    combo = PolicyCombo(scheduler=sched, admission=adm,
                                        dispatch=disp, placement=place)
                    grid.append((combo, ClusterExperimentSpec(
                        scenario=cell_scenario, cluster=cluster)))
    return grid


def policy_grid(
        schedulers: Sequence[Any] = DEFAULT_SCHEDULERS,
        admissions: Sequence[Any] = DEFAULT_ADMISSIONS,
        dispatches: Sequence[Any] = DEFAULT_DISPATCHES,
        placements: Sequence[Any] = DEFAULT_PLACEMENTS,
        scenario: Optional[ServingScenario] = None,
        device_config: Optional[PlatformConfig] = None,
        device_count: int = 2,
        devices: Optional[Sequence[PlatformConfig]] = None,
        orchestrator: Optional[ExperimentOrchestrator] = None,
        parallel: Optional[bool] = None) -> List[PolicyGridPoint]:
    """Run the whole cross product as one orchestrated batch.

    Cached cells are served from disk, uncached ones fan out over the
    orchestrator's worker pool; points come back in cross-product order.
    Any empty axis raises (an empty grid is a configuration error, unlike
    an empty rate sweep).
    """
    grid = policy_grid_specs(schedulers, admissions, dispatches,
                             placements, scenario, device_config,
                             device_count, devices)
    orch = orchestrator if orchestrator is not None else \
        default_orchestrator()
    reports = orch.run([spec for _, spec in grid], parallel=parallel)
    return [PolicyGridPoint.from_report(combo, reports[spec.key])
            for combo, spec in grid]


def best_by_goodput(points: Sequence[PolicyGridPoint],
                    slo_s: Optional[float] = None
                    ) -> Optional[PolicyGridPoint]:
    """The highest-goodput point, optionally only among SLO-compliant ones.

    With ``slo_s`` set, points whose fleet p99 misses the SLO (or has no
    latency data at all) are excluded; returns ``None`` when nothing
    qualifies — a sentinel, not an exception, mirroring ``find_knee``.
    """
    candidates = list(points)
    if slo_s is not None:
        candidates = [p for p in candidates
                      if p.p99_s is not None and p.p99_s <= slo_s]
    if not candidates:
        return None
    return max(candidates, key=lambda p: p.goodput_rps)
