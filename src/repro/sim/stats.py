"""Statistics collection for simulation models.

Provides small accumulators used throughout the hardware and scheduler
models:

* :class:`Counter` — monotonically increasing named counters.
* :class:`IntervalAccumulator` — accumulates busy intervals for utilization.
* :class:`TimeWeightedStat` — time-weighted average of a piecewise-constant
  signal (queue depths, active-core counts, instantaneous power).
* :class:`TimeSeries` — raw (time, value) samples for Fig. 15-style plots.
* :class:`SummaryStats` — min/avg/max/percentile helper over samples.
* :class:`LatencyReservoir` — bounded streaming sample reservoir with exact
  count/mean/min/max and :class:`SummaryStats`-based percentiles, used by
  the serving layer's per-tenant SLO accounting.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Counter:
    """A bag of named, monotonically increasing counters."""

    def __init__(self) -> None:
        self._values: Dict[str, float] = {}

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increase counter ``name`` by ``amount`` (non-negative)."""
        if amount < 0:
            raise ValueError("counters only increase")
        self._values[name] = self._values.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        """Current value of ``name`` (0.0 if never incremented)."""
        return self._values.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """Copy of all counters as a plain dict."""
        return dict(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self._values!r})"


class IntervalAccumulator:
    """Accumulates busy time from possibly nested begin/end intervals."""

    def __init__(self) -> None:
        self._busy = 0.0
        self._depth = 0
        self._since: Optional[float] = None

    def begin(self, now: float) -> None:
        """Enter a (possibly nested) busy interval at time ``now``."""
        if self._depth == 0:
            self._since = now
        self._depth += 1

    def end(self, now: float) -> None:
        """Leave the innermost busy interval at time ``now``."""
        if self._depth <= 0:
            raise ValueError("end() without matching begin()")
        self._depth -= 1
        if self._depth == 0 and self._since is not None:
            if now < self._since:
                raise ValueError("interval ends before it begins")
            self._busy += now - self._since
            self._since = None

    def busy_time(self, now: Optional[float] = None) -> float:
        """Total busy time, including an open interval up to ``now``."""
        busy = self._busy
        if self._depth > 0 and self._since is not None and now is not None:
            busy += max(0.0, now - self._since)
        return busy

    def utilization(self, now: float) -> float:
        """Fraction of [0, ``now``] spent busy, clamped to 1."""
        if now <= 0:
            return 0.0
        return min(1.0, self.busy_time(now) / now)


class TimeWeightedStat:
    """Time-weighted mean of a piecewise-constant signal."""

    def __init__(self, initial: float = 0.0, start_time: float = 0.0):
        self._value = initial
        self._last_time = start_time
        self._weighted_sum = 0.0
        self._max = initial
        self._min = initial

    @property
    def value(self) -> float:
        """Current value of the signal."""
        return self._value

    @property
    def max(self) -> float:
        """Largest value observed so far."""
        return self._max

    @property
    def min(self) -> float:
        """Smallest value observed so far."""
        return self._min

    def update(self, now: float, value: float) -> None:
        """Set the signal to ``value`` at time ``now``."""
        if now < self._last_time:
            raise ValueError("time must not go backwards")
        self._weighted_sum += self._value * (now - self._last_time)
        self._last_time = now
        self._value = value
        self._max = max(self._max, value)
        self._min = min(self._min, value)

    def adjust(self, now: float, delta: float) -> None:
        """Shift the current value by ``delta`` at time ``now``."""
        self.update(now, self._value + delta)

    def mean(self, now: float) -> float:
        """Time-weighted mean of the signal over [0, ``now``]."""
        total = self._weighted_sum + self._value * (now - self._last_time)
        if now <= 0:
            return self._value
        return total / now


@dataclass
class Sample:
    """One (time, value) observation."""

    time: float
    value: float


class TimeSeries:
    """Raw sampled signal; supports resampling onto a fixed grid."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[Sample] = []

    def record(self, time: float, value: float) -> None:
        """Append one sample; time must not go backwards."""
        if self.samples and time < self.samples[-1].time:
            raise ValueError("samples must be recorded in time order")
        self.samples.append(Sample(time, value))

    def times(self) -> List[float]:
        """All sample timestamps, in recording order."""
        return [s.time for s in self.samples]

    def values(self) -> List[float]:
        """All sample values, in recording order."""
        return [s.value for s in self.samples]

    def value_at(self, time: float) -> float:
        """Value of the signal at ``time`` (piecewise-constant, last sample).

        When several samples share the same timestamp, the most recent one
        wins — that is the value the signal settled on at that instant.
        """
        if not self.samples:
            return 0.0
        keys = self.times()
        idx = bisect_right(keys, time)
        if idx == 0:
            return self.samples[0].value
        return self.samples[idx - 1].value

    def resample(self, step: float, end: Optional[float] = None) -> "TimeSeries":
        """Return a new series sampled every ``step`` up to ``end``."""
        if step <= 0:
            raise ValueError("step must be positive")
        out = TimeSeries(self.name)
        if not self.samples:
            return out
        end = self.samples[-1].time if end is None else end
        t = self.samples[0].time
        while t <= end + 1e-12:
            out.record(t, self.value_at(t))
            t += step
        return out

    def __len__(self) -> int:
        return len(self.samples)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form: name plus [time, value] pairs."""
        return {"name": self.name,
                "samples": [[s.time, s.value] for s in self.samples]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TimeSeries":
        """Rebuild a series from :meth:`to_dict` output."""
        series = cls(str(data.get("name", "")))
        for time, value in data.get("samples", []):  # type: ignore[union-attr]
            series.record(float(time), float(value))
        return series


class SummaryStats:
    """Min / mean / max / percentile summary over a set of samples."""

    def __init__(self, values: Iterable[float] = ()):
        self._values: List[float] = sorted(values)

    def add(self, value: float) -> None:
        """Insert one sample, keeping the sample set sorted."""
        idx = bisect_left(self._values, value)
        self._values.insert(idx, value)

    @property
    def count(self) -> int:
        """Number of samples."""
        return len(self._values)

    @property
    def min(self) -> float:
        """Smallest sample (raises with no samples)."""
        if not self._values:
            raise ValueError("no samples")
        return self._values[0]

    @property
    def max(self) -> float:
        """Largest sample (raises with no samples)."""
        if not self._values:
            raise ValueError("no samples")
        return self._values[-1]

    @property
    def mean(self) -> float:
        """Arithmetic mean, clamped into [min, max]."""
        if not self._values:
            raise ValueError("no samples")
        # Clamp: float summation can push the quotient a ULP outside
        # [min, max] (e.g. three identical samples), and a mean outside
        # the observed range is never meaningful.
        mean = sum(self._values) / len(self._values)
        return min(max(mean, self._values[0]), self._values[-1])

    @property
    def total(self) -> float:
        """Sum of all samples."""
        return sum(self._values)

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile, ``pct`` in [0, 100]."""
        if not self._values:
            raise ValueError("no samples")
        if not 0.0 <= pct <= 100.0:
            raise ValueError("pct must be in [0, 100]")
        if pct == 0:
            return self._values[0]
        rank = max(1, math.ceil(pct / 100.0 * len(self._values)))
        return self._values[rank - 1]

    def cdf_points(self) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) pairs, suitable for a CDF plot."""
        n = len(self._values)
        return [(v, (i + 1) / n) for i, v in enumerate(self._values)]

    def as_dict(self) -> Dict[str, float]:
        """min/mean/max/count as a plain dict."""
        return {"min": self.min, "mean": self.mean, "max": self.max,
                "count": float(self.count)}


class LatencyReservoir:
    """Streaming latency accumulator with bounded memory.

    Open-loop serving runs observe one latency sample per request — far too
    many to keep verbatim at scale.  The reservoir keeps exact running
    aggregates (count, total, min, max) plus a uniform sample of at most
    ``capacity`` values maintained with Vitter's Algorithm R under a
    deterministic, seeded RNG, so percentile queries stay cheap and results
    are reproducible for a fixed seed.  Percentiles are answered through
    :class:`SummaryStats` over the current sample: exact while the stream
    fits in the reservoir, a uniform-sample estimate beyond that.
    """

    def __init__(self, capacity: int = 4096, seed: int = 0):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.seed = seed
        self._rng = random.Random(seed)
        # Bound method cached once: ``observe`` runs once per simulated
        # request and the attribute chain is measurable at scale.
        self._randrange = self._rng.randrange
        self._samples: List[float] = []
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        """Record one latency sample.

        This is the serving layer's per-request ingestion hot path; the
        branchy min/max updates and the cached ``randrange`` keep it to a
        handful of attribute operations per sample.  The RNG draw
        sequence is identical to the textbook Algorithm R formulation,
        so percentile results are unchanged for a given seed.
        """
        if value < 0:
            raise ValueError("latency samples must be non-negative")
        count = self._count = self._count + 1
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        samples = self._samples
        if len(samples) < self.capacity:
            samples.append(value)
        else:
            slot = self._randrange(count)
            if slot < self.capacity:
                samples[slot] = value

    def observe_many(self, values: Iterable[float]) -> None:
        """Batch-ingest latency samples (the fast-forward bulk path).

        Behaviorally identical to calling :meth:`observe` once per value
        — same RNG draw sequence, same retained sample set — but hoists
        every attribute access out of the loop, which matters when the
        fast-forward layer feeds thousands of analytic completions at
        once instead of one observation per simulated request.
        """
        count = self._count
        total = self._total
        lo = self._min
        hi = self._max
        samples = self._samples
        capacity = self.capacity
        append = samples.append
        randrange = self._randrange
        retained = len(samples)
        for value in values:
            if value < 0:
                # Flush the aggregates so the accepted prefix is recorded
                # exactly as per-sample observe() would have left it.
                self._count, self._total = count, total
                self._min, self._max = lo, hi
                raise ValueError("latency samples must be non-negative")
            count += 1
            total += value
            if value < lo:
                lo = value
            if value > hi:
                hi = value
            if retained < capacity:
                append(value)
                retained += 1
            else:
                slot = randrange(count)
                if slot < capacity:
                    samples[slot] = value
        self._count = count
        self._total = total
        self._min = lo
        self._max = hi

    # -- exact aggregates ---------------------------------------------------
    @property
    def count(self) -> int:
        """Exact number of samples observed (not just retained)."""
        return self._count

    @property
    def total(self) -> float:
        """Exact sum of every observed sample."""
        return self._total

    @property
    def mean(self) -> float:
        """Exact mean over every observed sample."""
        if self._count == 0:
            raise ValueError("no samples")
        return self._total / self._count

    @property
    def min(self) -> float:
        """Exact minimum (raises with no samples)."""
        if self._count == 0:
            raise ValueError("no samples")
        return self._min

    @property
    def max(self) -> float:
        """Exact maximum (raises with no samples)."""
        if self._count == 0:
            raise ValueError("no samples")
        return self._max

    @property
    def saturated(self) -> bool:
        """True once percentiles are estimates over a uniform sample."""
        return self._count > self.capacity

    # -- percentiles ---------------------------------------------------------
    def summary(self) -> SummaryStats:
        """A :class:`SummaryStats` over the reservoir's current sample."""
        return SummaryStats(self._samples)

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile over the reservoir sample."""
        if pct >= 100.0 and self._count:
            return self._max     # the exact maximum is always tracked
        return self.summary().percentile(pct)

    def percentiles(self, pcts: Sequence[float] = (50.0, 95.0, 99.0, 99.9)
                    ) -> Dict[float, float]:
        """Several percentiles from one sorted pass (p50/p95/p99/p99.9)."""
        summary = self.summary()
        return {pct: (self._max if pct >= 100.0 else summary.percentile(pct))
                for pct in pcts}

    # -- serialization --------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for the experiment cache.

        The RNG state is not captured: a deserialized reservoir answers
        queries identically but is not meant to keep observing.
        """
        return {
            "capacity": self.capacity,
            "seed": self.seed,
            "count": self._count,
            "total": self._total,
            "min": None if self._count == 0 else self._min,
            "max": None if self._count == 0 else self._max,
            "samples": list(self._samples),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LatencyReservoir":
        """Rebuild a reservoir from :meth:`to_dict` output."""
        reservoir = cls(capacity=int(data["capacity"]),
                        seed=int(data["seed"]))
        reservoir._samples = [float(v) for v in data["samples"]]
        reservoir._count = int(data["count"])
        reservoir._total = float(data["total"])
        reservoir._min = (math.inf if data["min"] is None
                          else float(data["min"]))
        reservoir._max = (-math.inf if data["max"] is None
                          else float(data["max"]))
        return reservoir

    def __len__(self) -> int:
        return len(self._samples)
