"""Calibrated steady-state fast-forward: analytic time advancement.

Event-by-event simulation spends the bulk of its wall-clock budget on
work that, in equilibrium, is statistically featureless: once the arrival
and service processes have settled, every further simulated second looks
like the last one.  This module provides the generic machinery to detect
that equilibrium and then *advance time analytically* — clocks, queue
lengths and latency samples evolve through closed-form queue dynamics fed
by service times measured on an exact warm-up window, instead of through
millions of heap operations (SYSFLOW's stream-rewriting execution model
is the inspiration: rewrite the event stream wholesale when its shape is
known).

Three pieces, all engine-agnostic:

* :class:`FastForwardConfig` — the serializable knob (disabled by
  default; exact runs stay byte-identical when off).
* :class:`SteadyStateDetector` — decides, from warm-up service-time and
  latency samples, whether the pipeline is stationary enough for the
  analytic model to be trusted.  When it refuses, callers fall back to
  the exact engine.
* :class:`AnalyticServer` — a capacity-bounded multi-server queue
  advanced request-at-a-time in O(log capacity), replacing the dispatch
  loop, backend processes and timeout events of the exact path.

The serving-layer session that wires these to the front-end/accelerator
pipeline lives in :mod:`repro.serve.fastforward`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from heapq import heappop, heappush, heapreplace
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class FastForwardConfig:
    """Serializable fast-forward knob for serving-style runs.

    ``enabled`` defaults to False: the exact engine remains the default
    and its reports stay byte-identical.  ``warmup_s`` is the exact
    simulation window the analytic model calibrates on; ``min_samples``
    and ``rel_tol`` parameterize the steady-state detector (at least
    that many warm-up completions, with first-half/second-half means
    agreeing within the relative tolerance).
    """

    enabled: bool = False
    warmup_s: float = 1.0
    min_samples: int = 100
    rel_tol: float = 0.25

    def __post_init__(self) -> None:
        if self.warmup_s <= 0:
            raise ValueError("warmup_s must be positive")
        if self.min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        if self.rel_tol <= 0:
            raise ValueError("rel_tol must be positive")

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (folds into experiment cache keys)."""
        return {
            "enabled": self.enabled,
            "warmup_s": self.warmup_s,
            "min_samples": self.min_samples,
            "rel_tol": self.rel_tol,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FastForwardConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(
            enabled=bool(data.get("enabled", False)),
            warmup_s=float(data.get("warmup_s", 1.0)),
            min_samples=int(data.get("min_samples", 100)),
            rel_tol=float(data.get("rel_tol", 0.25)),
        )


class SteadyStateDetector:
    """Decides whether a warm-up window reached statistical equilibrium.

    The test is deliberately conservative: the analytic model only pays
    off when it is *trusted*, and a wrong engagement silently skews the
    tail percentiles the serving reports exist to measure.  Engagement
    requires

    * at least ``min_samples`` warm-up completions (the empirical
      service-time pool must be dense enough to resample from), and
    * split-half stationarity of both the service times and the
      end-to-end latencies, after deleting the initial transient (the
      first half of the window, Welch/MSER style — queues start empty,
      so the latency ramp while the backlog fills is expected and must
      not be mistaken for instability): the means of the first and
      second half of the *retained* samples agree within ``rel_tol``
      relatively.  A queue that is still growing at the end of the
      window shows up as a rising latency mean long before it shows in
      the service times, so the latency check is what catches
      overloaded (unstable) regimes.
    """

    def __init__(self, min_samples: int = 100, rel_tol: float = 0.25):
        self.min_samples = min_samples
        self.rel_tol = rel_tol

    @staticmethod
    def transient_cut(n: int) -> int:
        """Index where the warm-up ramp is deemed over (first half cut)."""
        return n // 2

    def assess(self, service_samples: Sequence[float],
               latency_samples: Sequence[float]) -> Tuple[bool, str]:
        """(engage?, reason) for one warm-up window's completion data."""
        n = len(service_samples)
        if n < self.min_samples:
            return False, (f"too few warm-up completions "
                           f"({n} < {self.min_samples})")
        cut = self.transient_cut(n)
        if not self._halves_stable(service_samples[cut:]):
            return False, "service times not stationary over warm-up"
        if not self._halves_stable(latency_samples[cut:]):
            return False, ("latencies not stationary over warm-up "
                           "(backlog still growing or draining)")
        return True, "steady"

    def _halves_stable(self, values: Sequence[float]) -> bool:
        half = len(values) // 2
        first = sum(values[:half]) / half
        second = sum(values[half:]) / (len(values) - half)
        scale = max(abs(first), abs(second))
        if scale == 0.0:
            return True
        return abs(second - first) <= self.rel_tol * scale


class AnalyticServer:
    """Capacity-bounded multi-server queue, advanced analytically.

    Models the dispatch loop + backend of the exact path as ``capacity``
    identical servers: a submitted request starts on the earliest-free
    server (never before its arrival) and occupies it for its drawn
    service time.  A min-heap of server-free times makes each submission
    O(log capacity) — the entire analytic phase does less heap work per
    *request* than the exact engine does per *event*.
    """

    def __init__(self, capacity: int, free_at: float):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._free = [free_at] * capacity
        self.last_completion = free_at

    def submit(self, arrival_s: float,
               service_s: float) -> Tuple[float, float]:
        """Serve one request; returns ``(start_s, completion_s)``."""
        start = self._free[0]
        if arrival_s > start:
            start = arrival_s
        done = start + service_s
        heapreplace(self._free, done)
        if done > self.last_completion:
            self.last_completion = done
        return start, done


class ServiceTimeModel:
    """Empirical service-time distributions measured on the warm-up.

    Samples are pooled per ``(tenant, workload)`` key — the two axes the
    kernel builder varies — with the global pool as fallback for pairs
    the warm-up never produced.  Draws resample the measured empirical
    distribution (no parametric fit to go wrong) through a dedicated
    seeded RNG, so the analytic phase is deterministic per scenario seed.
    """

    def __init__(self, seed_token: str):
        self._pools: Dict[Tuple[str, str], List[float]] = {}
        self._all: List[float] = []
        self._rng = random.Random(seed_token)

    def observe(self, tenant: str, workload: str,
                service_s: float) -> None:
        """Add one measured warm-up service time."""
        self._pools.setdefault((tenant, workload), []).append(service_s)
        self._all.append(service_s)

    @property
    def sample_count(self) -> int:
        """Total measured samples across all pools."""
        return len(self._all)

    def draw(self, tenant: str, workload: str) -> float:
        """Resample one service time for the given request key."""
        pool = self._pools.get((tenant, workload))
        if not pool:
            pool = self._all
        return pool[self._rng.randrange(len(pool))]


class CompletionFeed:
    """Orders analytic completions by time for delayed observation.

    The exact engine feeds the admission EWMA and the SLO reservoirs in
    completion order; the analytic loop produces completions in arrival
    order.  This tiny heap re-establishes completion order: push each
    ``(done_s, payload)`` as it is computed, pop everything due before
    the next arrival.
    """

    def __init__(self):
        self._heap: List[Tuple[float, int, object]] = []
        self._seq = 0

    def push(self, done_s: float, payload: object) -> None:
        """Register one analytic completion."""
        self._seq += 1
        heappush(self._heap, (done_s, self._seq, payload))

    def pop_due(self, now_s: float) -> List[object]:
        """Completions with ``done <= now``, in completion order."""
        due: List[object] = []
        heap = self._heap
        while heap and heap[0][0] <= now_s:
            due.append(heappop(heap)[2])
        return due

    def pop_all(self) -> List[object]:
        """Drain every remaining completion, in completion order."""
        return self.pop_due(float("inf"))
