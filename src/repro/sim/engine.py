"""Discrete-event simulation engine.

This module is a small, dependency-free discrete-event simulator in the
spirit of SimPy.  Processes are Python generators that ``yield`` events
(timeouts, other events, or composite events); the :class:`Environment`
owns the virtual clock and the pending-event heap and advances time by
popping the earliest scheduled event.

The engine is the substrate for every timed model in this repository:
LWPs, memories, crossbars, the flash backbone, the host storage stack of
the baseline, and the FlashAbacus schedulers all run as processes on a
single :class:`Environment`.

Performance notes (see PERFORMANCE.md for the full hot-path map)
----------------------------------------------------------------
Every simulated activity flows through this module, so its per-event
constant factor bounds the wall-clock speed of the entire repository.
The implementation trades a little prettiness for speed on the hot
paths while keeping the public API and the exact event ordering (and
therefore byte-identical simulation results) stable:

* Heap entries are ``(time, seq, event)`` triples where ``seq`` folds
  the scheduling priority into the high bits of a monotonically
  increasing sequence number — one comparison key and one tuple slot
  fewer than the classic ``(time, priority, eid, event)`` layout, with
  the identical ordering.
* ``Environment.timeout`` / ``event`` build objects with ``__new__`` +
  direct slot writes and push heap entries inline instead of chaining
  ``__init__``/``_schedule`` calls (the constructor chain used to be
  three frames deep per event), and recycle processed, unreferenced
  :class:`Timeout`/:class:`Event` objects through small free lists
  guarded by ``sys.getrefcount``.
* ``Environment.run`` inlines the pop/dispatch loop with local aliases
  (no per-event ``step()``/``peek()`` method calls), with a separate
  tight loop for the run-to-drain case.
* :meth:`Process._resume` is entered through a bound method cached at
  process creation (no per-wait method-object allocation) and resumes
  synchronously over already-processed events instead of scheduling
  "immediate" bounce events.

Example
-------
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 3.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (3.0, 'a')]
"""

from __future__ import annotations

import heapq
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, List, Optional

_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted by another process."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event priorities: control ordering of events scheduled at the same time.
URGENT = 0
NORMAL = 1
LOW = 2

#: Priorities occupy the bits above the per-environment sequence number
#: in a heap entry's ``seq`` key, so ``(time, seq)`` sorts exactly like
#: ``(time, priority, eid)`` as long as fewer than 2**52 events are ever
#: scheduled on one environment (an unreachable count in practice).
_PRIORITY_SHIFT = 52
_SEQ_NORMAL = NORMAL << _PRIORITY_SHIFT

#: Upper bounds on the free lists.  Steady-state simulations rarely keep
#: more than a few hundred timeouts/events pending at once; the caps keep
#: a pathological burst from pinning memory.
_POOL_LIMIT = 512


class Event:
    """A one-shot occurrence in virtual time.

    Events start *pending*, may be *triggered* (scheduled for processing
    with a value), and become *processed* once their callbacks have run.
    Processes waiting on an event are resumed with the event's value when
    it is processed.
    """

    # Every simulated activity allocates events, so they are the hottest
    # allocation site of the whole engine; __slots__ drops the per-event
    # dict.
    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok = True
        self._triggered = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` once the event has been scheduled for processing."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """``True`` once callbacks have run and waiters were resumed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``False`` if the event carries a failure (exception) value."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with."""
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event has already been triggered")
        self._triggered = True
        self._value = value
        env = self.env
        eid = env._eid = env._eid + 1
        _heappush(env._queue,
                  (env._now, (priority << _PRIORITY_SHIFT) | eid, self))
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception, which propagates to waiters."""
        if self._triggered:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        env = self.env
        eid = env._eid = env._eid + 1
        _heappush(env._queue,
                  (env._now, (priority << _PRIORITY_SHIFT) | eid, self))
        return self

    # -- composition -----------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that triggers after a fixed delay.

    Prefer :meth:`Environment.timeout`, which recycles processed timeout
    objects through a free list; direct construction always allocates.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        eid = env._eid = env._eid + 1
        _heappush(env._queue,
                  (env._now + delay, _SEQ_NORMAL | eid, self))


class Process(Event):
    """Wraps a generator and drives it by processing the events it yields.

    A process is itself an event: it triggers when the generator returns
    (with the generator's return value) or raises.
    """

    # ``_resume_cb``/``_send`` cache bound methods: every wait registers
    # ``_resume`` as a callback and every resume calls ``send``, and
    # creating the method objects anew on each yield is measurable on
    # the hot path.
    __slots__ = ("_generator", "_target", "_resume_cb", "_send")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise TypeError("process requires a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self._resume_cb = self._resume
        self._send = generator.send
        # Bootstrap: resume the process immediately (at the current time).
        init = env.event()
        init._triggered = True
        init.callbacks.append(self._resume_cb)
        eid = env._eid = env._eid + 1
        _heappush(env._queue, (env._now, eid, init))   # URGENT priority

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        env = self.env
        event = Event(env)
        event._triggered = True
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resume_cb)
        eid = env._eid = env._eid + 1
        _heappush(env._queue, (env._now, eid, event))  # URGENT priority

    def _resume(self, event: Event) -> None:
        # The timeout-wait-resume cycle runs through here once per event;
        # everything is aliased to locals, ``_active_process`` is written
        # once per resume (no user code runs between sends), and the
        # generator is driven synchronously across already-processed
        # events (no bounce event).
        env = self.env
        send = self._send
        env._active_process = self
        while True:
            try:
                if event._ok:
                    result = send(event._value)
                else:
                    result = self._generator.throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self.succeed(stop.value, priority=URGENT)
                return
            except BaseException as exc:
                env._active_process = None
                self.fail(exc, priority=URGENT)
                return

            self._target = result
            try:
                callbacks = result.callbacks
            except AttributeError:
                # Yielding something that is not an event is a programming
                # error in the process; fail the process rather than
                # crashing the whole simulation loop.
                env._active_process = None
                self._target = None
                self.fail(SimulationError(
                    f"process yielded a non-event: {result!r}"),
                    priority=URGENT)
                return
            if callbacks is not None:
                callbacks.append(self._resume_cb)
                env._active_process = None
                return
            # The yielded event was already processed: resume synchronously
            # with its value instead of allocating and scheduling an extra
            # "immediate" bounce event — this loop is the hottest path of
            # every simulation.
            event = result


class Condition(Event):
    """Base class for events composed of several sub-events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed({e: e.value for e in self.events if e.triggered})


class AllOf(Condition):
    """Triggers once every sub-event has triggered."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= len(self.events)


class AnyOf(Condition):
    """Triggers as soon as one sub-event has triggered."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class Environment:
    """Owns the virtual clock and the pending event queue."""

    # The clock, the sequence counter and the active-process marker are
    # written once or twice per event; __slots__ keeps those accesses on
    # the fast path (and events hold a reference each, so the per-object
    # dict would be pure overhead).  ``tracer`` is the observability
    # attach point (repro.obs): None by default, and instrumented call
    # sites guard on that, so an untraced run pays one attribute load
    # per site and nothing else.
    __slots__ = ("_now", "_queue", "_eid", "_active_process",
                 "_timeout_pool", "_event_pool", "tracer")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        self._timeout_pool: List[Timeout] = []
        self._event_pool: List[Event] = []
        self.tracer = None

    @property
    def now(self) -> float:
        """Current simulation time (seconds, by convention of this repo)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event.

        Recycles processed, unreferenced events from a free list; the
        returned object is indistinguishable from a fresh one.
        """
        try:
            event = self._event_pool.pop()
        except IndexError:
            event = Event.__new__(Event)
            event.env = self
            event.callbacks = []
        event._value = None
        event._ok = True
        event._triggered = False
        return event

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        try:
            # Recycled timeouts already have ``_ok=True``/``_triggered=
            # True`` (a timeout is born triggered and can never fail) and
            # an empty callbacks list, so only value and delay need to be
            # written.
            timeout = self._timeout_pool.pop()
        except IndexError:
            timeout = Timeout.__new__(Timeout)
            timeout.env = self
            timeout.callbacks = []
            timeout._ok = True
            timeout._triggered = True
        timeout._value = value
        timeout.delay = delay
        eid = self._eid = self._eid + 1
        _heappush(self._queue,
                  (self._now + delay, _SEQ_NORMAL | eid, timeout))
        return timeout

    def process(self, generator: Generator) -> Process:
        """Register ``generator`` as a new process starting now."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        """Push ``event`` onto the pending heap ``delay`` from now.

        Hot engine paths push inline; this remains the one documented
        entry point for subclasses and tests that schedule by hand.
        """
        eid = self._eid = self._eid + 1
        _heappush(self._queue,
                  (self._now + delay, (priority << _PRIORITY_SHIFT) | eid,
                   event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none is pending."""
        return self._queue[0][0] if self._queue else float("inf")

    def cancel(self, event: Event) -> bool:
        """Remove one scheduled ``event`` from the pending queue.

        Returns ``True`` if the event was found (its waiters will never
        be resumed), ``False`` if it was not scheduled.  A popped-but-
        never-fired event does not advance the clock, which is the
        point: the observability sampler de-schedules its re-arm
        timeout on shutdown so the session's post-run drain ends at the
        real makespan instead of the next cadence tick.  O(queue) — for
        shutdown paths, not the hot loop.
        """
        queue = self._queue
        for index, entry in enumerate(queue):
            if entry[2] is event:
                del queue[index]
                heapq.heapify(queue)
                return True
        return False

    def advance_to(self, time: float) -> None:
        """Bulk time advance: jump the clock to ``time`` without stepping.

        The engine hook for the fast-forward layer
        (:mod:`repro.sim.fastforward`): once analytic advancement has
        settled everything that would have happened before ``time``, the
        clock jumps there in O(1) instead of burning one event per
        simulated activity.  Jumping over still-pending events would
        silently reorder causality, so the call refuses unless the queue
        is empty or every pending event lies at or after ``time``.
        """
        if time < self._now:
            raise ValueError("cannot advance backwards in time")
        if self._queue and self._queue[0][0] < time:
            raise SimulationError(
                f"cannot advance past pending events (next at "
                f"t={self._queue[0][0]:.6f}, requested t={time:.6f})")
        self._now = time

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        time, _seq, event = _heappop(self._queue)
        if time < self._now - 1e-18:
            raise SimulationError("event scheduled in the past")
        if time > self._now:
            self._now = time
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks is None:
            return
        for callback in callbacks:
            callback(event)
        if callbacks:
            self._recycle(event, callbacks)
        elif not event._ok and type(event) is not Process:
            raise event._value

    def _recycle(self, event: Event, callbacks: List) -> None:
        """Return a processed, otherwise-unreferenced event to its pool.

        The ``getrefcount == 3`` guard (the caller's local, our argument
        binding, and getrefcount's own argument) proves no simulation
        code can still observe the object, so reuse is undetectable.  The
        just-drained callbacks list is re-attached empty, saving the list
        allocation on the next creation.
        """
        cls = type(event)
        if cls is Timeout:
            pool = event.env._timeout_pool
        elif cls is Event:
            pool = event.env._event_pool
        else:
            return
        if len(pool) < _POOL_LIMIT and getrefcount(event) == 3:
            callbacks.clear()
            event.callbacks = callbacks
            pool.append(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        The loop is the engine's hottest path and is deliberately inlined
        (no per-event :meth:`step`/:meth:`peek` calls, and the run-to-
        drain case pays no per-event horizon check); it processes events
        in exactly the same order as repeated :meth:`step` calls.
        """
        if until is not None and until < self._now:
            raise ValueError("cannot run backwards in time")
        queue = self._queue
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        pop = _heappop
        refcount = getrefcount
        # Two copies of the dispatch body: the run-to-drain loop (the
        # common, hottest call) pays no per-event horizon check.  Keep
        # them line-for-line identical apart from that check.
        if until is None:
            while queue:
                time, _seq, event = pop(queue)
                # Unconditional store: the heap pops in non-decreasing
                # time order and nothing in this repository schedules
                # into the past, so clamping (``max``) would only hide a
                # real bug.
                self._now = time
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks is None:
                    continue
                try:
                    # The overwhelmingly common case: exactly one waiter
                    # (a process resume).  Single-element unpack
                    # dispatches it without the iterator protocol or a
                    # len() call; any other arity falls to the general
                    # loop.
                    [callback] = callbacks
                except ValueError:
                    for callback in callbacks:
                        callback(event)
                    if not callbacks:
                        if not event._ok and type(event) is not Process:
                            raise event._value
                        continue
                else:
                    callback(event)
                # Inline recycling (same guard as _recycle): refcount 2
                # = the local binding + getrefcount's argument, so
                # nothing else can still observe the reused object.
                cls = event.__class__
                if cls is Timeout:
                    if (len(timeout_pool) < _POOL_LIMIT
                            and refcount(event) == 2
                            and event.env is self):
                        callbacks.clear()
                        event.callbacks = callbacks
                        timeout_pool.append(event)
                elif cls is Event:
                    if (len(event_pool) < _POOL_LIMIT
                            and refcount(event) == 2
                            and event.env is self):
                        callbacks.clear()
                        event.callbacks = callbacks
                        event_pool.append(event)
            return
        self.run_events(until)
        self._now = until

    def run_events(self, until: float) -> None:
        """Process every event with ``time <= until``; keep the clock put.

        Same bounded loop as :meth:`run`, minus the final jump of the
        clock to ``until`` — after the last qualifying event the clock
        reads that event's time.  The epoch-parallel cluster runner uses
        this at epoch boundaries so a shard that goes idle before the
        boundary keeps the same clock reading the serial session would
        have (the serial drain stops at the last settlement event), which
        is what makes the two makespans byte-identical.
        """
        queue = self._queue
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        pop = _heappop
        refcount = getrefcount
        while queue:
            if queue[0][0] > until:
                break
            time, _seq, event = pop(queue)
            self._now = time
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks is None:
                continue
            try:
                [callback] = callbacks
            except ValueError:
                for callback in callbacks:
                    callback(event)
                if not callbacks:
                    if not event._ok and type(event) is not Process:
                        raise event._value
                    continue
            else:
                callback(event)
            cls = event.__class__
            if cls is Timeout:
                if (len(timeout_pool) < _POOL_LIMIT
                        and refcount(event) == 2 and event.env is self):
                    callbacks.clear()
                    event.callbacks = callbacks
                    timeout_pool.append(event)
            elif cls is Event:
                if (len(event_pool) < _POOL_LIMIT
                        and refcount(event) == 2 and event.env is self):
                    callbacks.clear()
                    event.callbacks = callbacks
                    event_pool.append(event)
