"""Discrete-event simulation substrate used by all FlashAbacus models."""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .fastforward import (
    AnalyticServer,
    FastForwardConfig,
    ServiceTimeModel,
    SteadyStateDetector,
)
from .resources import BandwidthPipe, Resource, Store, TransferRecord
from .stats import (
    Counter,
    IntervalAccumulator,
    LatencyReservoir,
    Sample,
    SummaryStats,
    TimeSeries,
    TimeWeightedStat,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "AnalyticServer",
    "FastForwardConfig",
    "ServiceTimeModel",
    "SteadyStateDetector",
    "BandwidthPipe",
    "Resource",
    "Store",
    "TransferRecord",
    "Counter",
    "IntervalAccumulator",
    "LatencyReservoir",
    "Sample",
    "SummaryStats",
    "TimeSeries",
    "TimeWeightedStat",
]
