"""Shared simulation resources: capacity resources, stores, bandwidth pipes.

These primitives model contention: a :class:`Resource` is a server with a
fixed capacity (e.g. a flash channel bus), a :class:`Store` is a FIFO of
Python objects (e.g. a hardware message queue), and a
:class:`BandwidthPipe` converts byte counts into occupancy time on a link
with a fixed bandwidth and per-transfer latency (e.g. PCIe, DDR3L, the
tier-1 crossbar).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, List, Optional, Tuple

from .engine import Environment, Event


class Request(Event):
    """Pending acquisition of one unit of a :class:`Resource`.

    Usable as a context manager from inside a process::

        with resource.request() as req:
            yield req
            yield env.timeout(service_time)
    """

    # Like the base Event: resource/store events are allocated on every
    # acquisition in the simulation's hottest paths.
    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._submit(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> bool:
        self.resource.release(self)
        return False


class Resource:
    """A server pool with ``capacity`` identical slots and a wait queue.

    Requests are granted in priority order (lower value first), FIFO among
    equal priorities.  Utilization of the resource is tracked so models can
    report busy fractions without extra bookkeeping.
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._users: List[Request] = []
        self._queue: List[Tuple[int, int, Request]] = []
        self._seq = 0
        self._busy_time = 0.0
        self._last_change = env.now

    # -- public API --------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self, priority: int = 0) -> Request:
        """Ask for one slot; the returned event triggers when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Return a slot previously granted to ``request``."""
        if request in self._users:
            self._account()
            self._users.remove(request)
            self._grant_waiters()
        else:
            # Never granted: drop it from the wait queue if still there.
            self._queue = [
                entry for entry in self._queue if entry[2] is not request
            ]

    def utilization(self, now: Optional[float] = None) -> float:
        """Average fraction of capacity in use since the environment start."""
        now = self.env.now if now is None else now
        busy = self._busy_time + len(self._users) * (now - self._last_change)
        if now <= 0:
            return 0.0
        return busy / (self.capacity * now)

    # -- internals -----------------------------------------------------------
    def _account(self) -> None:
        now = self.env.now
        self._busy_time += len(self._users) * (now - self._last_change)
        self._last_change = now

    def _submit(self, request: Request) -> None:
        self._seq += 1
        self._queue.append((request.priority, self._seq, request))
        self._queue.sort(key=lambda entry: (entry[0], entry[1]))
        self._grant_waiters()

    def _grant_waiters(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            _prio, _seq, request = self._queue.pop(0)
            self._account()
            self._users.append(request)
            request.succeed(request)


class StoreGet(Event):
    """Pending retrieval of one item from a :class:`Store`."""

    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._getters.append(self)
        store._dispatch()


class StorePut(Event):
    """Pending insertion of one item into a bounded :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._putters.append(self)
        store._dispatch()


class Store:
    """FIFO of arbitrary items; models hardware/message queues.

    ``capacity`` bounds the number of buffered items; producers block when
    the queue is full, which is how the flash controllers' tag queues apply
    back-pressure.
    """

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 name: str = ""):
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()
        self._putters: Deque[StorePut] = deque()

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; the event triggers once space is available."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Remove the oldest item; the event triggers once one exists."""
        return StoreGet(self)

    def __len__(self) -> int:
        return len(self.items)

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            if self._getters and self.items:
                get = self._getters.popleft()
                get.succeed(self.items.popleft())
                progressed = True


@dataclass
class TransferRecord:
    """Accounting record emitted by :class:`BandwidthPipe.transfer`."""

    start: float
    end: float
    num_bytes: int

    @property
    def duration(self) -> float:
        """Transfer time in simulated seconds."""
        return self.end - self.start


class BandwidthPipe:
    """A link with fixed bandwidth, fixed per-transfer latency, one lane.

    Transfers are serialized (single transaction at a time), which captures
    the first-order contention behaviour of DDR buses, PCIe links and the
    crossbar ports used in this reproduction.
    """

    def __init__(self, env: Environment, bandwidth_bytes_per_s: float,
                 latency_s: float = 0.0, name: str = ""):
        if bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.env = env
        self.bandwidth = float(bandwidth_bytes_per_s)
        self.latency = float(latency_s)
        self.name = name
        self._resource = Resource(env, capacity=1, name=name)
        self.bytes_moved = 0
        self.records: List[TransferRecord] = []

    def occupancy_time(self, num_bytes: int) -> float:
        """Pure service time for ``num_bytes`` (no queueing)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return self.latency + num_bytes / self.bandwidth

    def transfer(self, num_bytes: int, priority: int = 0):
        """Process generator: move ``num_bytes`` across the link.

        Yields from within a simulation process; returns a
        :class:`TransferRecord`.
        """
        start = self.env.now
        with self._resource.request(priority=priority) as req:
            yield req
            yield self.env.timeout(self.occupancy_time(num_bytes))
        self.bytes_moved += num_bytes
        record = TransferRecord(start=start, end=self.env.now,
                                num_bytes=num_bytes)
        self.records.append(record)
        return record

    def utilization(self) -> float:
        """Fraction of time the link was busy."""
        return self._resource.utilization()
