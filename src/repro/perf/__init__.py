"""Wall-clock performance subsystem: timers, report schema, regression policy.

The simulator's own speed is a first-class, measured property of this
reproduction (the ROADMAP's "as fast as the hardware allows").  This
package provides the building blocks; the runnable microbenchmarks live
in ``benchmarks/perf/`` and emit ``BENCH_PERF.json`` at the repo root.
See PERFORMANCE.md for the hot-path map, the profiling workflow, and the
regression policy.
"""

from .regression import (
    ENGINE_SPEEDUP_THRESHOLD,
    FASTFORWARD_SPEEDUP_THRESHOLD,
    PARALLEL_SPEEDUP_THRESHOLD,
    Regression,
    Threshold,
    check_regression,
    check_thresholds,
    parallel_speedup_threshold,
)
from .report import (
    SCHEMA_VERSION,
    PerfMetric,
    PerfReport,
    diff_reports,
)
from .timers import Measurement, WallTimer, measure, measure_ab

__all__ = [
    "ENGINE_SPEEDUP_THRESHOLD",
    "FASTFORWARD_SPEEDUP_THRESHOLD",
    "PARALLEL_SPEEDUP_THRESHOLD",
    "Measurement",
    "PerfMetric",
    "PerfReport",
    "Regression",
    "SCHEMA_VERSION",
    "Threshold",
    "WallTimer",
    "check_regression",
    "check_thresholds",
    "diff_reports",
    "measure",
    "measure_ab",
    "parallel_speedup_threshold",
]
