"""Wall-clock measurement primitives for the perf harness.

Everything here measures *host* wall-clock time (``time.perf_counter``),
never simulated time: the perf subsystem tracks how fast the simulator
itself runs, not what it predicts.  See PERFORMANCE.md for the workflow.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional


class WallTimer:
    """Context manager that captures elapsed wall-clock seconds.

    >>> with WallTimer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed_s > 0
    True
    """

    def __init__(self) -> None:
        self.started_at: Optional[float] = None
        self.elapsed_s: float = 0.0

    def __enter__(self) -> "WallTimer":
        self.started_at = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        assert self.started_at is not None
        self.elapsed_s = time.perf_counter() - self.started_at


@dataclass
class Measurement:
    """Repeated timings of one benchmark body.

    ``units`` is how many benchmark-defined work items (events, requests,
    samples) one run processes; rates are derived from it.
    """

    name: str
    units: float
    runs_s: List[float] = field(default_factory=list)

    @property
    def best_s(self) -> float:
        """Fastest observed run (least interference)."""
        if not self.runs_s:
            raise ValueError("no runs recorded")
        return min(self.runs_s)

    @property
    def median_s(self) -> float:
        """Median run — the robust default for reported rates."""
        if not self.runs_s:
            raise ValueError("no runs recorded")
        return statistics.median(self.runs_s)

    @property
    def rate(self) -> float:
        """Units per second over the median run."""
        return self.units / self.median_s

    @property
    def best_rate(self) -> float:
        """Units per second over the fastest run."""
        return self.units / self.best_s


def measure_ab(name_a: str, body_a: Callable[[], float],
               name_b: str, body_b: Callable[[], float], *,
               repeats: int = 5, warmup: int = 1
               ) -> "tuple[Measurement, Measurement]":
    """Measure two bodies interleaved (A, B, A, B, ...) for a fair ratio.

    Sequential measurement (all of A, then all of B) lets a background
    load spike land entirely on one side and skew the ratio; strict
    interleaving spreads host noise over both.  Compare the two sides
    with :attr:`Measurement.best_rate` — the fastest run is the least
    contended one, which is the honest same-host comparison (this is how
    the engine-vs-seed speedup in BENCH_PERF.json is computed).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        body_a()
        body_b()
    measurement_a: Optional[Measurement] = None
    measurement_b: Optional[Measurement] = None
    for _ in range(repeats):
        for side, body in ((0, body_a), (1, body_b)):
            start = time.perf_counter()
            units = body()
            elapsed = time.perf_counter() - start
            if side == 0:
                if measurement_a is None:
                    measurement_a = Measurement(name_a, float(units))
                measurement_a.runs_s.append(elapsed)
            else:
                if measurement_b is None:
                    measurement_b = Measurement(name_b, float(units))
                measurement_b.runs_s.append(elapsed)
    assert measurement_a is not None and measurement_b is not None
    return measurement_a, measurement_b


def measure(name: str, body: Callable[[], float], *, repeats: int = 5,
            warmup: int = 1) -> Measurement:
    """Run ``body`` ``repeats`` times and collect a :class:`Measurement`.

    ``body`` performs one benchmark run and returns the number of work
    units it processed; the harness times each call.  ``warmup`` runs are
    executed first and discarded (interpreter warm-up, cache priming).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        body()
    measurement: Optional[Measurement] = None
    for _ in range(repeats):
        start = time.perf_counter()
        units = body()
        elapsed = time.perf_counter() - start
        if measurement is None:
            measurement = Measurement(name=name, units=float(units))
        elif float(units) != measurement.units:
            raise ValueError(
                f"benchmark {name!r} is not steady: run processed "
                f"{units} units, previous runs {measurement.units}")
        measurement.runs_s.append(elapsed)
    assert measurement is not None
    return measurement
