"""The ``BENCH_PERF.json`` schema: metrics, reports, snapshots, diffs.

A :class:`PerfReport` is the machine-readable artifact the wall-clock
microbenchmarks emit at the repo root (``BENCH_PERF.json``) so the
simulator's own speed is tracked PR-over-PR.  Each :class:`PerfMetric`
may embed a ``baseline`` measured *in the same run* (e.g. the seed
engine snapshot driven by the same workload), so speedup claims inside
one file compare like with like on the same host.

Schema (version 1)::

    {
      "schema": 1,
      "created": "2026-07-30T12:00:00+00:00",
      "host": {"python": "3.11.7", "platform": "Linux-..."},
      "config": {"mode": "full", "repeats": 5},
      "metrics": {
        "engine_events_per_sec": {
          "value": 1250000.0, "unit": "events/s",
          "higher_is_better": true, "baseline": 590000.0
        },
        ...
      }
    }
"""

from __future__ import annotations

import json
import platform as _platform
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Optional, Union

#: Bump when the on-disk shape changes incompatibly.
SCHEMA_VERSION = 1


@dataclass
class PerfMetric:
    """One named wall-clock measurement.

    ``baseline`` (optional) is a reference measurement taken in the same
    run under identical conditions — the seed-engine snapshot for the
    engine microbenchmark — making :attr:`ratio` a same-host speedup.
    """

    name: str
    value: float
    unit: str
    higher_is_better: bool = True
    baseline: Optional[float] = None

    @property
    def ratio(self) -> Optional[float]:
        """Improvement over the embedded baseline (>1 means better).

        ``None`` when no baseline was recorded.  For lower-is-better
        metrics the ratio is inverted so >1 still means improvement.
        """
        if self.baseline is None or self.baseline == 0 or self.value == 0:
            return None
        if self.higher_is_better:
            return self.value / self.baseline
        return self.baseline / self.value

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "value": self.value,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
        }
        if self.baseline is not None:
            data["baseline"] = self.baseline
        return data

    @classmethod
    def from_dict(cls, name: str, data: Dict[str, object]) -> "PerfMetric":
        baseline = data.get("baseline")
        return cls(
            name=name,
            value=float(data["value"]),  # type: ignore[arg-type]
            unit=str(data.get("unit", "")),
            higher_is_better=bool(data.get("higher_is_better", True)),
            baseline=None if baseline is None else float(baseline),  # type: ignore[arg-type]
        )


def _host_info() -> Dict[str, str]:
    return {"python": _platform.python_version(),
            "platform": _platform.platform()}


@dataclass
class PerfReport:
    """A set of named metrics plus provenance, serializable to JSON."""

    metrics: Dict[str, PerfMetric] = field(default_factory=dict)
    created: Optional[str] = None
    host: Dict[str, str] = field(default_factory=_host_info)
    config: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.created is None:
            self.created = datetime.now(timezone.utc).isoformat(
                timespec="seconds")

    def add(self, metric: PerfMetric) -> PerfMetric:
        """Record ``metric`` under its name (replacing any previous one)."""
        self.metrics[metric.name] = metric
        return metric

    def get(self, name: str) -> Optional[PerfMetric]:
        """The metric called ``name``, or ``None``."""
        return self.metrics.get(name)

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "created": self.created,
            "host": dict(self.host),
            "config": dict(self.config),
            "metrics": {name: metric.to_dict()
                        for name, metric in sorted(self.metrics.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PerfReport":
        schema = int(data.get("schema", 0))  # type: ignore[arg-type]
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported BENCH_PERF schema {schema} "
                f"(this code reads version {SCHEMA_VERSION})")
        metrics_data = data.get("metrics", {})
        metrics = {name: PerfMetric.from_dict(name, entry)
                   for name, entry in metrics_data.items()}  # type: ignore[union-attr]
        return cls(metrics=metrics,
                   created=data.get("created"),  # type: ignore[arg-type]
                   host=dict(data.get("host", {})),  # type: ignore[arg-type]
                   config=dict(data.get("config", {})))  # type: ignore[arg-type]

    def save(self, path: Union[str, Path]) -> Path:
        """Write the report as pretty-printed JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=False)
                        + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PerfReport":
        return cls.from_dict(json.loads(Path(path).read_text()))


def diff_reports(old: PerfReport, new: PerfReport) -> Dict[str, Dict[str, object]]:
    """Metric-by-metric comparison of two snapshots.

    Returns ``{name: {"old": ..., "new": ..., "speedup": ...}}`` for every
    metric present in both reports (``speedup`` > 1 means ``new`` improved,
    with lower-is-better metrics inverted), plus ``"only_in_old"`` /
    ``"only_in_new"`` markers for metrics without a counterpart.
    """
    out: Dict[str, Dict[str, object]] = {}
    for name in sorted(set(old.metrics) | set(new.metrics)):
        old_metric = old.metrics.get(name)
        new_metric = new.metrics.get(name)
        if old_metric is None:
            assert new_metric is not None
            out[name] = {"only_in_new": True, "new": new_metric.value}
            continue
        if new_metric is None:
            out[name] = {"only_in_old": True, "old": old_metric.value}
            continue
        if old_metric.value == 0 or new_metric.value == 0:
            speedup = None
        elif new_metric.higher_is_better:
            speedup = new_metric.value / old_metric.value
        else:
            speedup = old_metric.value / new_metric.value
        out[name] = {"old": old_metric.value, "new": new_metric.value,
                     "unit": new_metric.unit, "speedup": speedup}
    return out
