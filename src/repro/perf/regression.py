"""Perf-regression policy: thresholds over metrics and snapshot pairs.

Two comparison modes, matching how ``BENCH_PERF.json`` is used:

* **Embedded-baseline thresholds** (:func:`check_thresholds`) — a metric
  carries its own ``baseline`` measured in the same run (the seed-engine
  snapshot); a :class:`Threshold` demands a minimum improvement ratio.
  This is how the "engine ≥ 2x over seed" claim is enforced.
* **Snapshot-to-snapshot regression** (:func:`check_regression`) — two
  ``BENCH_PERF.json`` files (e.g. the committed one and a fresh local
  run) are compared metric-by-metric; any metric that got worse by more
  than ``tolerance`` is flagged.  This is the PR-over-PR trajectory
  check described in PERFORMANCE.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from .report import PerfReport, diff_reports


@dataclass(frozen=True)
class Threshold:
    """Minimum improvement a metric must show over its embedded baseline."""

    metric: str
    min_ratio: float

    def check(self, report: PerfReport) -> Optional[str]:
        """Return a violation message, or ``None`` when satisfied."""
        entry = report.get(self.metric)
        if entry is None:
            return f"{self.metric}: metric missing from report"
        ratio = entry.ratio
        if ratio is None:
            return f"{self.metric}: no baseline recorded"
        if ratio < self.min_ratio:
            return (f"{self.metric}: improvement {ratio:.2f}x is below the "
                    f"required {self.min_ratio:.2f}x "
                    f"(value {entry.value:g}, baseline {entry.baseline:g})")
        return None


#: The engine microbenchmark must beat the seed engine at least this much
#: (the PR-4 tentpole claim, re-checked by ``benchmarks/perf``).
ENGINE_SPEEDUP_THRESHOLD = Threshold("engine_events_per_sec", 2.0)

#: Steady-state fast-forward must process simulated traffic at least this
#: much faster than the exact engine on the same scenario (the PR-6
#: tentpole claim; the baseline is the exact-engine rate measured in the
#: same perfbench run, so the ratio *is* the fast-forward speedup).
FASTFORWARD_SPEEDUP_THRESHOLD = Threshold(
    "simulated_requests_per_wall_second", 10.0)


def parallel_speedup_threshold(cpus: Optional[int] = None) -> Threshold:
    """The host-aware floor on parallel-over-serial cluster speedup.

    The epoch-parallel runner's baseline is the serial session on the
    same fleet, measured in the same perfbench run, so the ratio *is*
    the parallel speedup.  On a multi-core host the fork pool must buy a
    real win: ≥ 1.5x.  A single-core host cannot execute shards
    concurrently, but the parallel path must still beat serial outright
    (≥ 1.1x): per-shard event heaps are smaller and adaptive epochs run
    whole fault-free scenarios in one burst.
    """
    usable = cpus if cpus is not None else (os.cpu_count() or 1)
    return Threshold("cluster_parallel_requests_per_sec",
                     1.5 if usable >= 2 else 1.1)


#: The floor on the current host (import-time convenience; call
#: :func:`parallel_speedup_threshold` to evaluate for a specific CPU
#: count).
PARALLEL_SPEEDUP_THRESHOLD = parallel_speedup_threshold()


def check_thresholds(report: PerfReport,
                     thresholds: List[Threshold]) -> List[str]:
    """Evaluate embedded-baseline thresholds; returns violation messages."""
    violations = []
    for threshold in thresholds:
        message = threshold.check(report)
        if message is not None:
            violations.append(message)
    return violations


@dataclass
class Regression:
    """One metric that got worse between two snapshots."""

    metric: str
    old: float
    new: float
    speedup: float   # < 1.0 means the metric regressed

    def __str__(self) -> str:
        return (f"{self.metric}: {self.old:g} -> {self.new:g} "
                f"({self.speedup:.2f}x)")


def check_regression(old: PerfReport, new: PerfReport,
                     tolerance: float = 0.15,
                     overrides: Optional[Dict[str, float]] = None
                     ) -> List[Regression]:
    """Compare two snapshots; flag metrics that regressed past tolerance.

    ``tolerance`` is the allowed fractional slowdown before a metric is
    flagged (0.15 = up to 15% worse passes, absorbing host noise);
    ``overrides`` maps metric names to per-metric tolerances.  Metrics
    present in only one snapshot are ignored — adding or retiring a
    benchmark is not a regression.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be in [0, 1)")
    regressions: List[Regression] = []
    for name, entry in diff_reports(old, new).items():
        speedup = entry.get("speedup")
        if speedup is None:
            continue
        allowed = (overrides or {}).get(name, tolerance)
        if speedup < 1.0 - allowed:
            regressions.append(Regression(
                metric=name, old=entry["old"], new=entry["new"],  # type: ignore[arg-type]
                speedup=speedup))  # type: ignore[arg-type]
    return regressions
