"""Host storage stack and accelerator runtime of the baseline (Figure 1b).

The conventional heterogeneous system funnels every byte through two
discrete software stacks: the storage stack (I/O runtime, file system,
block/HBA driver, flash firmware) and the accelerator stack (runtime
library + device driver).  Each file read therefore costs

* per-request system call, file-system and driver latency on the host CPU,
* a copy from the OS-kernel buffer to the user buffer in host DRAM,
* a second copy from the user buffer to the accelerator runtime's pinned
  buffer before the DMA,

and the inverse path on writes.  These are exactly the overheads the paper
blames for 49% of execution time and 85% of system energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.engine import Environment
from ..hw.power import DATA_MOVEMENT, STORAGE_ACCESS, EnergyAccountant
from ..hw.spec import HostSpec


#: Size of one I/O request issued by the I/O runtime (a typical readahead /
#: direct-I/O chunk).
IO_REQUEST_BYTES = 128 * 1024


@dataclass
class StackStats:
    """Counters for the host-side software activity."""

    io_requests: int = 0
    syscalls: int = 0
    copied_bytes: int = 0
    mode_switches: int = 0


class HostStorageStack:
    """Timed model of the host's file-system + I/O runtime + driver path."""

    def __init__(self, env: Environment, spec: HostSpec,
                 energy: Optional[EnergyAccountant] = None):
        self.env = env
        self.spec = spec
        self.energy = energy
        self.stats = StackStats()

    # -- helpers ----------------------------------------------------------
    def _requests_for(self, num_bytes: int) -> int:
        return max(1, -(-num_bytes // IO_REQUEST_BYTES))

    def stack_time(self, num_bytes: int) -> float:
        """CPU time spent in the storage stack for ``num_bytes`` of I/O."""
        requests = self._requests_for(num_bytes)
        per_request = (self.spec.syscall_latency_s
                       + self.spec.filesystem_latency_s
                       + self.spec.driver_latency_s)
        return requests * per_request

    def copy_time(self, num_bytes: int) -> float:
        """Host DRAM time for the user/kernel and runtime copies."""
        return self.spec.copies_per_io * num_bytes / self.spec.dram_bandwidth

    # -- timed operations -----------------------------------------------------
    def file_io(self, num_bytes: int, is_write: bool = False):
        """Process generator: storage-stack work for one file read/write.

        Covers the software path only (the SSD device time is modeled by
        :class:`~repro.baseline.ssd.NVMeSSD`); charges host CPU energy to
        the ``storage_access`` bucket and the DRAM copies to
        ``data_movement``.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        requests = self._requests_for(num_bytes)
        stack_time = self.stack_time(num_bytes)
        copy_time = self.copy_time(num_bytes)
        yield self.env.timeout(stack_time)
        yield self.env.timeout(copy_time)
        self.stats.io_requests += requests
        self.stats.syscalls += requests
        self.stats.mode_switches += 2 * requests
        self.stats.copied_bytes += self.spec.copies_per_io * num_bytes
        if self.energy is not None:
            self.energy.charge_power("host_cpu.storage_stack", STORAGE_ACCESS,
                                     self.spec.cpu_active_power_w, stack_time)
            self.energy.charge_power("host_dram.copies", DATA_MOVEMENT,
                                     self.spec.cpu_active_power_w
                                     + self.spec.dram_power_w, copy_time)
        return stack_time + copy_time

    def accelerator_runtime(self, num_bytes: int):
        """Process generator: accelerator-runtime copy + driver submission."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        copy_time = num_bytes / self.spec.dram_bandwidth
        driver_time = self.spec.driver_latency_s + self.spec.syscall_latency_s
        yield self.env.timeout(copy_time + driver_time)
        self.stats.copied_bytes += num_bytes
        self.stats.mode_switches += 2
        if self.energy is not None:
            self.energy.charge_power("host_cpu.accel_runtime", DATA_MOVEMENT,
                                     self.spec.cpu_active_power_w
                                     + self.spec.dram_power_w,
                                     copy_time + driver_time)
        return copy_time + driver_time
