"""The conventional heterogeneous system the paper calls ``SIMD``.

The same low-power multicore accelerator, but:

* data lives on an external NVMe SSD behind the host storage stack;
* kernels are executed one at a time with OpenMP-style SIMD parallelism —
  the parallel parts of a kernel spread over all eight LWPs, the serial
  microblocks run on one LWP, and nothing overlaps across kernels;
* every input byte travels SSD -> host DRAM (stack copies) -> PCIe ->
  accelerator DRAM before the kernel may start processing it, and results
  travel the inverse path (Figure 3a's prologue/body/epilogue loop);
* the accelerator's internal DRAM is small, so large inputs are processed
  in buffer-sized iterations, serializing I/O and computation.

The per-kernel time/energy decomposition (accelerator vs. SSD vs. host
storage stack) produced here also drives the motivation study (Fig. 3d/3e).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.engine import Environment
from ..hw.power import (
    COMPUTATION,
    DATA_MOVEMENT,
    EnergyBreakdown,
)
from ..hw.spec import HardwareSpec
from ..platform.builder import HardwareSubstrate, resolve_substrate
from ..platform.config import PlatformConfig
from ..core.accelerator import ExecutionReport
from ..core.kernel import Kernel, Microblock


@dataclass
class KernelTimeBreakdown:
    """Per-kernel decomposition used by the Fig. 3d motivation study."""

    kernel_name: str
    accelerator_s: float = 0.0
    ssd_s: float = 0.0
    host_stack_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.accelerator_s + self.ssd_s + self.host_stack_s

    def fractions(self) -> Dict[str, float]:
        total = self.total_s
        if total <= 0:
            return {"accelerator": 0.0, "ssd": 0.0, "host_stack": 0.0}
        return {
            "accelerator": self.accelerator_s / total,
            "ssd": self.ssd_s / total,
            "host_stack": self.host_stack_s / total,
        }


class BaselineSystem:
    """Host + NVMe SSD + low-power accelerator over PCIe (``SIMD``)."""

    #: Portion of accelerator DRAM usable as an input/output staging buffer.
    STAGING_BUFFER_BYTES = 256 * 1024 * 1024

    def __init__(self, env: Optional[Environment] = None,
                 spec: Optional[HardwareSpec] = None,
                 track_power_series: bool = False,
                 lwp_count: Optional[int] = None,
                 config: Optional[PlatformConfig] = None,
                 substrate: Optional[HardwareSubstrate] = None):
        substrate = resolve_substrate(
            baseline=True, env=env, spec=spec,
            track_power_series=track_power_series,
            lwp_count=lwp_count, config=config, substrate=substrate)
        config = substrate.config
        self.config = config
        self.substrate = substrate
        self.env = substrate.env
        self.spec = substrate.spec
        self.energy = substrate.energy
        self.power_monitor = substrate.power_monitor
        self.cluster = substrate.cluster
        self.ddr = substrate.ddr
        self.pcie = substrate.pcie
        self.ssd = substrate.ssd
        self.host = substrate.host
        self.stack = substrate.stack
        self.breakdowns: List[KernelTimeBreakdown] = []
        self.completion_times: List[float] = []
        self.kernel_latencies: List[float] = []

    # ------------------------------------------------------------------ #
    # Workload execution                                                  #
    # ------------------------------------------------------------------ #
    def run_workload(self, kernels: Sequence[Kernel],
                     workload_name: str = "workload") -> ExecutionReport:
        """Run ``kernels`` serially through the conventional path."""
        if not kernels:
            raise ValueError("run_workload needs at least one kernel")
        self.env.process(self._driver(list(kernels)))
        self.env.run()
        makespan = self.env.now
        # Host + SSD idle draw while the accelerator computes: the host
        # exists only to move data in this system.
        accel_time = sum(b.accelerator_s for b in self.breakdowns)
        self.host.charge_idle(accel_time, bucket=DATA_MOVEMENT)
        bytes_processed = sum(k.input_bytes + k.output_bytes for k in kernels)
        report = ExecutionReport(
            system="SIMD",
            workload=workload_name,
            makespan_s=makespan,
            kernel_latencies=list(self.kernel_latencies),
            completion_times=list(self.completion_times),
            bytes_processed=bytes_processed,
            energy=self.energy.breakdown,
            worker_utilization=self.cluster.worker_utilization(makespan),
            per_lwp_utilization=[w.utilization(makespan)
                                 for w in self.cluster.workers],
            mean_active_fus=self.cluster.activity.mean(),
            fu_series=self.cluster.activity.series,
            power_series=(self.power_monitor.series
                          if self.power_monitor is not None else None),
            scheduler_stats={
                "ssd_reads": float(self.ssd.read_requests),
                "ssd_writes": float(self.ssd.write_requests),
                "io_requests": float(self.stack.stats.io_requests),
                "copied_bytes": float(self.stack.stats.copied_bytes),
            },
        )
        return report

    # ------------------------------------------------------------------ #
    # Online serving (incremental execution, used by repro.serve)         #
    # ------------------------------------------------------------------ #
    def serve_kernel(self, kernel: Kernel):
        """Process generator: run one request through the conventional path.

        The serving layer dispatches requests one at a time (the
        conventional system executes kernels strictly serially), so this
        is simply one iteration of :meth:`_driver` without the batch
        bookkeeping; end-to-end request latency is measured by the caller
        from arrival to completion.
        """
        breakdown = KernelTimeBreakdown(kernel_name=kernel.name)
        yield from self._run_kernel(kernel, breakdown)
        self.breakdowns.append(breakdown)
        self.completion_times.append(self.env.now)

    # ------------------------------------------------------------------ #
    # Internal processes                                                  #
    # ------------------------------------------------------------------ #
    def _driver(self, kernels: List[Kernel]):
        # Latency is measured as turnaround from workload submission, the
        # same reference the FlashAbacus engine uses (kernels offloaded in
        # one batch), so Fig. 11's normalization compares like with like.
        submitted_at = self.env.now
        for kernel in kernels:
            breakdown = KernelTimeBreakdown(kernel_name=kernel.name)
            yield from self._run_kernel(kernel, breakdown)
            self.breakdowns.append(breakdown)
            self.completion_times.append(self.env.now)
            self.kernel_latencies.append(self.env.now - submitted_at)

    def _run_kernel(self, kernel: Kernel, breakdown: KernelTimeBreakdown):
        for microblock in kernel.microblocks:
            if microblock.reads_flash and microblock.input_bytes > 0:
                yield from self._staged_io_and_compute(microblock, breakdown)
            else:
                yield from self._compute_microblock(
                    microblock, microblock.instructions, breakdown)
            if microblock.writes_flash and microblock.output_bytes > 0:
                yield from self._write_back(microblock.output_bytes, breakdown)

    def _staged_io_and_compute(self, microblock: Microblock,
                               breakdown: KernelTimeBreakdown):
        """Figure 3a's body loop: read a buffer, ship it, compute, repeat."""
        remaining = microblock.input_bytes
        total = microblock.input_bytes
        while remaining > 0:
            chunk = min(remaining, self.STAGING_BUFFER_BYTES)
            remaining -= chunk
            yield from self._load_chunk(chunk, breakdown)
            chunk_instructions = microblock.instructions * (chunk / total)
            yield from self._compute_microblock(microblock, chunk_instructions,
                                                breakdown)

    def _set_io_draw(self, active: bool) -> None:
        """Track host + SSD power while the data path is active (Fig. 15b)."""
        if self.power_monitor is None:
            return
        if active:
            self.power_monitor.set_draw(
                "host", self.spec.host.cpu_active_power_w
                + self.spec.host.dram_power_w)
            self.power_monitor.set_draw("ssd", self.spec.ssd.active_power_w)
        else:
            self.power_monitor.set_draw(
                "host", self.spec.host.cpu_idle_power_w
                + self.spec.host.dram_power_w)
            self.power_monitor.set_draw("ssd", self.spec.ssd.idle_power_w)

    def _load_chunk(self, num_bytes: int, breakdown: KernelTimeBreakdown):
        self._set_io_draw(True)
        # SSD device read.
        start = self.env.now
        yield from self.ssd.read(num_bytes)
        breakdown.ssd_s += self.env.now - start
        # Storage stack: syscalls, file system, copies to the user buffer
        # and again into the accelerator runtime's buffer.
        start = self.env.now
        yield from self.stack.file_io(num_bytes, is_write=False)
        yield from self.stack.accelerator_runtime(num_bytes)
        breakdown.host_stack_s += self.env.now - start
        # PCIe DMA into the accelerator's DRAM.
        start = self.env.now
        yield from self.pcie.transfer(num_bytes)
        yield from self.ddr.write(num_bytes)
        breakdown.host_stack_s += self.env.now - start
        self._set_io_draw(False)

    def _write_back(self, num_bytes: int, breakdown: KernelTimeBreakdown):
        remaining = num_bytes
        self._set_io_draw(True)
        while remaining > 0:
            chunk = min(remaining, self.STAGING_BUFFER_BYTES)
            remaining -= chunk
            start = self.env.now
            yield from self.ddr.read(chunk)
            yield from self.pcie.transfer(chunk)
            yield from self.stack.accelerator_runtime(chunk)
            yield from self.stack.file_io(chunk, is_write=True)
            breakdown.host_stack_s += self.env.now - start
            start = self.env.now
            yield from self.ssd.write(chunk)
            breakdown.ssd_s += self.env.now - start
        self._set_io_draw(False)

    def _compute_microblock(self, microblock: Microblock,
                            instructions: float,
                            breakdown: KernelTimeBreakdown):
        """OpenMP-style execution: all LWPs for parallel blocks, one for serial."""
        if instructions <= 0:
            return
        start = self.env.now
        workers = self.cluster.workers
        ld_st = microblock.screens[0].ld_st_ratio if microblock.screens else 0.3
        if microblock.serial:
            yield from workers[0].compute(instructions, ld_st, bucket=COMPUTATION)
        else:
            share = instructions / len(workers)
            events = [self.env.process(
                w.compute(share, ld_st, bucket=COMPUTATION)) for w in workers]
            yield self.env.all_of(events)
        breakdown.accelerator_s += self.env.now - start

    # ------------------------------------------------------------------ #
    # Motivation-study helpers                                            #
    # ------------------------------------------------------------------ #
    def energy_breakdown(self) -> EnergyBreakdown:
        return self.energy.breakdown

    def time_breakdowns(self) -> List[KernelTimeBreakdown]:
        return list(self.breakdowns)


def run_baseline(kernels: Sequence[Kernel], workload_name: str = "workload",
                 spec: Optional[HardwareSpec] = None,
                 track_power_series: bool = False,
                 lwp_count: Optional[int] = None,
                 config: Optional[PlatformConfig] = None) -> ExecutionReport:
    """Convenience wrapper mirroring :func:`repro.core.run_flashabacus`."""
    system = BaselineSystem(spec=spec, track_power_series=track_power_series,
                            lwp_count=lwp_count, config=config)
    return system.run_workload(kernels, workload_name)
