"""Host CPU/DRAM model for the baseline heterogeneous system."""

from __future__ import annotations

from typing import Optional

from ..sim.engine import Environment
from ..sim.stats import IntervalAccumulator
from ..hw.power import DATA_MOVEMENT, EnergyAccountant
from ..hw.spec import HostSpec


class HostCPU:
    """The Xeon host orchestrating the baseline's data movement.

    The host is busy whenever it drives the storage stack, performs buffer
    copies, or manages accelerator DMA; it idles (at idle power) while the
    accelerator computes.  Idle energy is charged to data movement because
    the host exists in this system purely to shuttle data — the paper's
    energy breakdown does the same.
    """

    def __init__(self, env: Environment, spec: HostSpec,
                 energy: Optional[EnergyAccountant] = None):
        self.env = env
        self.spec = spec
        self.energy = energy
        self._busy = IntervalAccumulator()

    def busy(self, seconds: float, component: str = "host_cpu",
             bucket: str = DATA_MOVEMENT):
        """Process generator: occupy the host CPU for ``seconds``."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self._busy.begin(self.env.now)
        yield self.env.timeout(seconds)
        self._busy.end(self.env.now)
        if self.energy is not None:
            self.energy.charge_power(component, bucket,
                                     self.spec.cpu_active_power_w, seconds)

    def charge_idle(self, duration: float,
                    bucket: str = DATA_MOVEMENT) -> None:
        """Charge host idle power for a period it spends waiting."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        if self.energy is not None:
            self.energy.charge_power("host_cpu.idle", bucket,
                                     self.spec.cpu_idle_power_w, duration)
            self.energy.charge_power("host_dram.idle", bucket,
                                     self.spec.dram_power_w, duration)

    def busy_time(self) -> float:
        return self._busy.busy_time(self.env.now)

    def utilization(self, horizon: Optional[float] = None) -> float:
        horizon = self.env.now if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        return min(1.0, self._busy.busy_time(self.env.now) / horizon)
