"""The conventional heterogeneous baseline (``SIMD``): host + NVMe SSD + accelerator."""

from .ssd import NVMeSSD
from .storage_stack import HostStorageStack, IO_REQUEST_BYTES, StackStats
from .host import HostCPU
from .system import BaselineSystem, KernelTimeBreakdown, run_baseline

__all__ = [
    "NVMeSSD",
    "HostStorageStack",
    "IO_REQUEST_BYTES",
    "StackStats",
    "HostCPU",
    "BaselineSystem",
    "KernelTimeBreakdown",
    "run_baseline",
]
