"""External NVMe SSD model used by the conventional (SIMD) baseline.

An Intel 750-class device: high sequential bandwidth, sub-millisecond
latency, but reached only through the host storage stack and a PCIe link,
and drawing an order of magnitude more power than the flash backbone's
raw channels.
"""

from __future__ import annotations

from typing import Optional

from ..sim.engine import Environment
from ..sim.resources import Resource
from ..hw.power import STORAGE_ACCESS, EnergyAccountant
from ..hw.spec import SSDSpec


class NVMeSSD:
    """Device-level timing and energy for the external SSD."""

    def __init__(self, env: Environment, spec: SSDSpec,
                 energy: Optional[EnergyAccountant] = None,
                 name: str = "nvme_ssd"):
        self.env = env
        self.spec = spec
        self.energy = energy
        self.name = name
        self._device = Resource(env, capacity=1, name=name)
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_requests = 0
        self.write_requests = 0

    # -- timing -----------------------------------------------------------
    def read_time(self, num_bytes: int) -> float:
        return self.spec.read_latency_s + num_bytes / self.spec.read_bandwidth

    def write_time(self, num_bytes: int) -> float:
        return self.spec.write_latency_s + num_bytes / self.spec.write_bandwidth

    # -- timed operations -----------------------------------------------------
    def read(self, num_bytes: int):
        """Process generator: device-level read of ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        start = self.env.now
        with self._device.request() as req:
            yield req
            yield self.env.timeout(self.read_time(num_bytes))
        self.bytes_read += num_bytes
        self.read_requests += 1
        self._charge(start)
        return self.env.now - start

    def write(self, num_bytes: int):
        """Process generator: device-level write of ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        start = self.env.now
        with self._device.request() as req:
            yield req
            yield self.env.timeout(self.write_time(num_bytes))
        self.bytes_written += num_bytes
        self.write_requests += 1
        self._charge(start)
        return self.env.now - start

    def _charge(self, start: float) -> None:
        if self.energy is not None:
            self.energy.charge_power(self.name, STORAGE_ACCESS,
                                     self.spec.active_power_w,
                                     self.env.now - start)

    def utilization(self) -> float:
        return self._device.utilization()
