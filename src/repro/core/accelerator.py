"""FlashAbacus accelerator: platform assembly and multi-kernel execution.

This module wires the hardware substrate (LWPs, DDR3L, scratchpad,
crossbars, PCIe, flash backbone) together with the self-governing software
components (Flashvisor, Storengine, the offload controller and a kernel
scheduler) and drives multi-kernel execution:

* the host offloads kernel description tables over PCIe;
* the chosen scheduler hands work items to worker LWPs;
* each screen maps its data section through Flashvisor (which reads the
  input from flash into DDR3L), computes on its LWP, and buffers its
  output in DDR3L for Storengine to flush in the background.

The :class:`ExecutionReport` produced by :meth:`FlashAbacusAccelerator.run_workload`
contains everything the evaluation section needs: makespan, per-kernel
latencies, throughput, utilizations, energy breakdown, and the Fig. 15
time series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..sim.engine import Environment, Event
from ..sim.stats import SummaryStats, TimeSeries
from ..hw.lwp import LWP
from ..hw.power import (
    COMPUTATION,
    STORAGE_ACCESS,
    EnergyBreakdown,
)
from ..hw.spec import HardwareSpec
from ..platform.builder import HardwareSubstrate, resolve_substrate
from ..platform.config import FLASHABACUS_SCHEDULERS, PlatformConfig
from ..policy import build_policy
from .execution_chain import MicroblockNode, ScreenNode
from .flashvisor import Flashvisor
from .kernel import Kernel
from .offload import OffloadController, PowerSleepController
from .schedulers import Scheduler, WorkItem
from .storengine import Storengine


class FlashAddressSpace:
    """Assigns backbone address ranges to kernel data sections.

    Kernels of the same application share their *input* region (the input
    file is written to the backbone once), while every kernel instance gets
    a private *output* region — mirroring how the prototype stages input
    files and collects per-instance results.
    """

    def __init__(self, capacity_bytes: int, alignment: int):
        self.capacity_bytes = capacity_bytes
        self.alignment = alignment
        self._cursor = 0
        self._input_regions: Dict[str, int] = {}

    def _bump(self, num_bytes: int) -> int:
        aligned = -(-num_bytes // self.alignment) * self.alignment
        if self._cursor + aligned > self.capacity_bytes:
            # Wrap around: the logical space is reused (old mappings are
            # simply overwritten), which is how a bounded backbone handles
            # workloads whose aggregate footprint exceeds its capacity.
            self._cursor = 0
        base = self._cursor
        self._cursor += aligned
        return base

    def input_region(self, app_name: str, num_bytes: int) -> int:
        if app_name not in self._input_regions:
            self._input_regions[app_name] = self._bump(num_bytes)
        return self._input_regions[app_name]

    def output_region(self, num_bytes: int) -> int:
        return self._bump(num_bytes)


@dataclass
class ExecutionReport:
    """Results of running one workload on one accelerator configuration."""

    system: str
    workload: str
    makespan_s: float
    kernel_latencies: List[float]
    completion_times: List[float]
    bytes_processed: int
    energy: EnergyBreakdown
    worker_utilization: float
    per_lwp_utilization: List[float]
    mean_active_fus: float
    fu_series: Optional[TimeSeries] = None
    power_series: Optional[TimeSeries] = None
    scheduler_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_bytes_per_s(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.bytes_processed / self.makespan_s

    @property
    def throughput_mb_per_s(self) -> float:
        return self.throughput_bytes_per_s / (1024 * 1024)

    def latency_summary(self) -> SummaryStats:
        return SummaryStats(self.kernel_latencies)

    @property
    def energy_joules(self) -> float:
        return self.energy.total

    # ------------------------------------------------------------------ #
    # Serialization (used by the experiment orchestrator's result cache)   #
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "system": self.system,
            "workload": self.workload,
            "makespan_s": self.makespan_s,
            "kernel_latencies": list(self.kernel_latencies),
            "completion_times": list(self.completion_times),
            "bytes_processed": self.bytes_processed,
            "energy": self.energy.as_dict(),
            "worker_utilization": self.worker_utilization,
            "per_lwp_utilization": list(self.per_lwp_utilization),
            "mean_active_fus": self.mean_active_fus,
            "fu_series": (self.fu_series.to_dict()
                          if self.fu_series is not None else None),
            "power_series": (self.power_series.to_dict()
                             if self.power_series is not None else None),
            "scheduler_stats": dict(self.scheduler_stats),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExecutionReport":
        return cls(
            system=data["system"],
            workload=data["workload"],
            makespan_s=data["makespan_s"],
            kernel_latencies=list(data["kernel_latencies"]),
            completion_times=list(data["completion_times"]),
            bytes_processed=data["bytes_processed"],
            energy=EnergyBreakdown.from_dict(data["energy"]),
            worker_utilization=data["worker_utilization"],
            per_lwp_utilization=list(data["per_lwp_utilization"]),
            mean_active_fus=data["mean_active_fus"],
            fu_series=(TimeSeries.from_dict(data["fu_series"])
                       if data.get("fu_series") is not None else None),
            power_series=(TimeSeries.from_dict(data["power_series"])
                          if data.get("power_series") is not None else None),
            scheduler_stats=dict(data.get("scheduler_stats", {})),
        )


class FlashAbacusAccelerator:
    """The self-governing flash-based accelerator.

    The hardware substrate comes from :class:`repro.platform.PlatformBuilder`
    (pass ``substrate`` to share a pre-built one; a prebuilt substrate's
    config is authoritative and keyword arguments that conflict with it
    are errors); this class adds the self-governing software on top:
    Flashvisor, Storengine, the offload controller, the flash address
    space, and a kernel scheduler.
    """

    def __init__(self, env: Optional[Environment] = None,
                 spec: Optional[HardwareSpec] = None,
                 scheduler: Optional[str] = None,
                 track_power_series: bool = False,
                 config: Optional[PlatformConfig] = None,
                 substrate: Optional[HardwareSubstrate] = None):
        if scheduler is not None and scheduler not in FLASHABACUS_SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; choose from "
                f"{FLASHABACUS_SCHEDULERS}")
        substrate = resolve_substrate(
            baseline=False, env=env, spec=spec,
            track_power_series=track_power_series,
            system=scheduler, config=config, substrate=substrate)
        config = substrate.config
        self.config = config
        self.substrate = substrate
        self.env = substrate.env
        self.spec = substrate.spec
        self.energy = substrate.energy
        self.power_monitor = substrate.power_monitor
        self.cluster = substrate.cluster
        self.ddr = substrate.ddr
        self.scratchpad = substrate.scratchpad
        self.interconnect = substrate.interconnect
        self.pcie = substrate.pcie
        self.backbone = substrate.backbone
        self.flashvisor = Flashvisor(
            self.env, self.cluster.flashvisor_lwp, self.backbone, self.ddr,
            self.scratchpad, self.interconnect.new_queue("flashvisor"),
            self.energy)
        self.storengine = Storengine(
            self.env, self.cluster.storengine_lwp, self.flashvisor,
            self.backbone, self.energy)
        self.offloader = OffloadController(
            self.env, self.pcie, self.ddr, PowerSleepController(self.env),
            self.energy)
        self.address_space = FlashAddressSpace(
            self.backbone.geometry.capacity_bytes,
            self.backbone.geometry.page_group_bytes)
        self.scheduler: Scheduler = build_policy(
            "scheduler", config.scheduler_spec(),
            num_workers=len(self.cluster.workers))
        self._kernel_regions: Dict[int, Dict[str, int]] = {}
        self._wake: Event = self.env.event()
        self.screens_executed = 0
        # Online-serving support (repro.serve): while serving, workers park
        # on the wake event instead of exiting when the scheduler is
        # momentarily drained, and every kernel completion is announced to
        # the registered listeners.
        self._serving = False
        self._service_procs: List[Any] = []
        self._completion_listeners: List[Callable[[Kernel, float], None]] = []
        # Observability (repro.obs): shard index stamped on screen span
        # events when a tracer is attached to the environment; 0 for
        # single-device runs.
        self.trace_device = 0

    # ------------------------------------------------------------------ #
    # Workload execution                                                  #
    # ------------------------------------------------------------------ #
    def run_workload(self, kernels: Sequence[Kernel],
                     workload_name: str = "workload") -> ExecutionReport:
        """Offload ``kernels``, run them to completion, return the report."""
        if not kernels:
            raise ValueError("run_workload needs at least one kernel")
        self.env.process(self._host_offload(list(kernels)))
        worker_procs = [self.env.process(self._worker_loop(idx, lwp))
                        for idx, lwp in enumerate(self.cluster.workers)]
        # Step the simulation until every offloaded kernel has completed.
        # Storengine is a perpetual background process, so draining the
        # whole event queue would never terminate.
        while not self.scheduler.done:
            if self.env.peek() == float("inf"):
                raise RuntimeError(
                    "simulation stalled before all kernels completed")
            self.env.step()
            for proc in worker_procs:
                if proc.triggered and not proc.ok:
                    raise proc.value
        makespan = max((c for c in
                        self.scheduler.chain.completion_times()), default=self.env.now)
        # Flush the buffered flash writes so storage energy covers every
        # byte the workload produced, then stop the background services.
        self.storengine.stop()
        drain = self.env.process(self.storengine.drain())
        while not drain.triggered and self.env.peek() != float("inf"):
            self.env.step()
        # Management cores draw power for the whole run (the paper notes
        # InterSt "must keep Flashvisor and Storengine always busy"); their
        # explicitly-billed busy periods are subtracted to avoid double
        # charging.
        for mgmt in (self.cluster.flashvisor_lwp, self.cluster.storengine_lwp):
            if mgmt is not None:
                idle_time = max(0.0, makespan - mgmt.busy_time())
                self.energy.charge_power(
                    f"lwp{mgmt.lwp_id}.always_on", STORAGE_ACCESS,
                    self.spec.lwp.power_per_core_w, idle_time)
        bytes_processed = sum(k.input_bytes + k.output_bytes for k in kernels)
        report = ExecutionReport(
            system=self.scheduler.name,
            workload=workload_name,
            makespan_s=makespan,
            kernel_latencies=self.scheduler.chain.kernel_latencies(),
            completion_times=self.scheduler.chain.completion_times(),
            bytes_processed=bytes_processed,
            energy=self.energy.breakdown,
            worker_utilization=self.cluster.worker_utilization(makespan),
            per_lwp_utilization=[w.utilization(makespan)
                                 for w in self.cluster.workers],
            mean_active_fus=self.cluster.activity.mean(),
            fu_series=self.cluster.activity.series,
            power_series=(self.power_monitor.series
                          if self.power_monitor is not None else None),
            scheduler_stats=self._scheduler_stats(),
        )
        return report

    def _scheduler_stats(self) -> Dict[str, float]:
        stats: Dict[str, float] = {
            "screens_executed": float(self.screens_executed),
            "lock_conflicts": float(self.flashvisor.stats.lock_conflicts),
            "flash_reads_bytes": float(self.backbone.bytes_read()),
            "flash_writes_bytes": float(self.backbone.bytes_written()),
        }
        for attr in ("dispatches", "borrowed_dispatches"):
            if hasattr(self.scheduler, attr):
                stats[attr] = float(getattr(self.scheduler, attr))
        return stats

    # ------------------------------------------------------------------ #
    # Online serving (incremental submission, used by repro.serve)        #
    # ------------------------------------------------------------------ #
    def add_completion_listener(
            self, listener: Callable[[Kernel, float], None]) -> None:
        """Register ``listener(kernel, now)`` for every kernel completion."""
        self._completion_listeners.append(listener)

    @property
    def serving(self) -> bool:
        return self._serving

    @property
    def worker_count(self) -> int:
        return len(self.cluster.workers)

    def begin_service(self) -> None:
        """Start the worker loops for open-ended request service.

        Unlike :meth:`run_workload`, no batch is offloaded up front:
        kernels arrive one by one through :meth:`submit_kernel` and the
        workers park on the wake event whenever the scheduler is drained.
        The caller owns the event loop (see
        :class:`repro.serve.session.ServingSession`) and must finish with
        :meth:`end_service`.
        """
        if self._serving:
            raise RuntimeError("service already started")
        self._serving = True
        self._service_procs = [
            self.env.process(self._worker_loop(idx, lwp))
            for idx, lwp in enumerate(self.cluster.workers)]

    def submit_kernel(self, kernel: Kernel):
        """Process generator: offload one kernel at the current sim time.

        Runs the per-kernel offload sequence (PCIe download, interrupt,
        boot-register update) and hands the kernel to the scheduler —
        the incremental counterpart of the batch prologue in
        :meth:`run_workload`.
        """
        yield from self.offloader.offload_kernel(kernel)
        input_base = self.address_space.input_region(
            f"{kernel.name}:{kernel.app_id}", kernel.input_bytes)
        output_base = self.address_space.output_region(
            max(kernel.output_bytes, 1))
        self._kernel_regions[kernel.kernel_id] = {
            "input": input_base, "output": output_base}
        self.scheduler.offload([kernel], now=self.env.now)
        self._wake_workers()

    def end_service(self) -> None:
        """Let the worker loops drain and exit once all work completes."""
        self._serving = False
        self._wake_workers()

    def check_service_health(self) -> None:
        """Re-raise any crash that killed a service worker loop."""
        for proc in self._service_procs:
            if proc.triggered and not proc.ok:
                raise proc.value

    # ------------------------------------------------------------------ #
    # Internal processes                                                  #
    # ------------------------------------------------------------------ #
    def _host_offload(self, kernels: List[Kernel]):
        yield from self.offloader.offload_batch(kernels)
        for kernel in kernels:
            input_base = self.address_space.input_region(
                f"{kernel.name}:{kernel.app_id}", kernel.input_bytes)
            output_base = self.address_space.output_region(
                max(kernel.output_bytes, 1))
            self._kernel_regions[kernel.kernel_id] = {
                "input": input_base, "output": output_base}
        self.scheduler.offload(kernels, now=self.env.now)
        self._wake_workers()

    def _worker_loop(self, worker_index: int, lwp: LWP):
        while True:
            item = self.scheduler.next_work(worker_index)
            if item is None:
                if self.scheduler.done and not self._serving:
                    return
                yield self._wake
                continue
            if self.scheduler.dispatch_overhead_s > 0:
                yield self.env.timeout(self.scheduler.dispatch_overhead_s)
            for node, screen_node in item.units:
                yield from self._execute_screen(lwp, item, node, screen_node)
            self.scheduler.notify_complete(worker_index, item, self.env.now)
            self._wake_workers()

    def _wake_workers(self) -> None:
        wake, self._wake = self._wake, self.env.event()
        if not wake.triggered:
            wake.succeed()

    def _execute_screen(self, lwp: LWP, item: WorkItem, node: MicroblockNode,
                        screen_node: ScreenNode):
        chain = item.chain
        kernel = chain.kernel
        screen = screen_node.screen
        regions = self._kernel_regions[kernel.kernel_id]
        tracer = self.env.tracer
        screen_begin = self.env.now if tracer is not None else 0.0
        self.scheduler.chain.mark_running(screen_node, lwp.lwp_id,
                                          self.env.now)
        # 1. Bring the screen's slice of the data section into DDR3L.
        if node.microblock.reads_flash and screen.input_bytes > 0:
            word_addr = regions["input"] // self.flashvisor.word_bytes
            yield from self.flashvisor.map_for_read(kernel, word_addr,
                                                    screen.input_bytes)
        # 2. Compute on this LWP.
        if screen.instructions > 0:
            yield from lwp.compute(screen.instructions,
                                   load_store_fraction=screen.ld_st_ratio,
                                   bucket=COMPUTATION)
        # 3. Buffer the output in DDR3L; flash programs happen in the
        #    background through Storengine.
        if node.microblock.writes_flash and screen.output_bytes > 0:
            word_addr = regions["output"] // self.flashvisor.word_bytes
            yield from self.flashvisor.map_for_write(kernel, word_addr,
                                                     screen.output_bytes)
        self.scheduler.chain.mark_done(chain, screen_node, self.env.now)
        lwp.screens_executed += 1
        self.screens_executed += 1
        if tracer is not None:
            # Screen spans key on kernel.instance — the request id in
            # serving runs — never kernel_id, whose process-global
            # counter would break same-seed trace determinism.
            tracer.span(self.env.now, "screen", kernel.instance,
                        kernel.name, self.trace_device,
                        (lwp.lwp_id, screen_begin))
        if chain.complete and self._completion_listeners:
            # True exactly once, after the kernel's final screen.
            for listener in list(self._completion_listeners):
                listener(kernel, self.env.now)
        self._wake_workers()

    # ------------------------------------------------------------------ #
    # Teardown helpers                                                     #
    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        """Stop background services (used by long-lived interactive users)."""
        self.storengine.stop()


def run_flashabacus(kernels: Sequence[Kernel],
                    scheduler: Optional[str] = None,
                    workload_name: str = "workload",
                    spec: Optional[HardwareSpec] = None,
                    track_power_series: bool = False,
                    config: Optional[PlatformConfig] = None) -> ExecutionReport:
    """Convenience wrapper: build a fresh accelerator and run one workload."""
    accelerator = FlashAbacusAccelerator(spec=spec, scheduler=scheduler,
                                         track_power_series=track_power_series,
                                         config=config)
    report = accelerator.run_workload(kernels, workload_name)
    accelerator.shutdown()
    return report
