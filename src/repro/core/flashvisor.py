"""Flashvisor: the LWP that virtualizes the flash backbone (Section 4.3).

Flashvisor owns the page-group mapping table (kept in the scratchpad),
translates word-based backbone addresses into physical page groups, checks
permissions through the range lock, and issues the resulting flash
transactions to the FPGA controllers.  Kernels never talk to the flash
firmware directly — they pass a queue message containing the request type,
a pointer to their data section, and the word address; Flashvisor does the
rest and the controllers deposit the data in DDR3L.

The class below exposes two timed operations used by the execution
engines:

* :meth:`map_for_read` — translate + read the data section into DDR3L.
* :meth:`map_for_write` — allocate new page groups, buffer the write in
  DDR3L and queue the flash programs for background flushing.

Both include the hardware-queue message latency and the per-group
translation cost charged to the Flashvisor LWP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sim.engine import Environment
from ..hw.interconnect import MessageQueue
from ..hw.lwp import LWP
from ..hw.memory import DDR3L, Scratchpad
from ..hw.power import STORAGE_ACCESS, EnergyAccountant
from ..flash.backbone import FlashBackbone
from ..flash.ftl import BlockAllocator, OutOfSpaceError, PageGroupMappingTable
from .kernel import Kernel
from .range_lock import READ, WRITE, RangeLock


@dataclass
class MappingRequest:
    """The queue message a kernel sends to Flashvisor (Figure 9)."""

    request_type: str            # "read" | "write"
    kernel_id: int
    data_section_pointer: int    # DDR3L address of the data section
    flash_word_address: int
    num_bytes: int


@dataclass
class FlashvisorStats:
    """Operation counters exposed for tests and reports."""

    read_requests: int = 0
    write_requests: int = 0
    translations: int = 0
    groups_read: int = 0
    groups_allocated: int = 0
    lock_conflicts: int = 0
    lock_wait_time: float = 0.0
    reclaim_requests: int = 0


class Flashvisor:
    """Address translation, protection, and I/O brokering for the backbone."""

    #: Cycles Flashvisor spends to look up / update one page-group entry.
    TRANSLATION_CYCLES_PER_GROUP = 60
    #: Seconds between retries when a range-lock conflict blocks a request.
    LOCK_RETRY_INTERVAL_S = 20e-6

    def __init__(self, env: Environment, lwp: LWP, backbone: FlashBackbone,
                 ddr: DDR3L, scratchpad: Scratchpad,
                 queue: MessageQueue,
                 energy: Optional[EnergyAccountant] = None,
                 word_bytes: int = 4):
        self.env = env
        self.lwp = lwp
        self.backbone = backbone
        self.ddr = ddr
        self.scratchpad = scratchpad
        self.queue = queue
        self.energy = energy
        self.word_bytes = word_bytes
        self.geometry = backbone.geometry
        self.mapping = PageGroupMappingTable(self.geometry)
        self.allocator = BlockAllocator(self.geometry,
                                        backbone.spec.overprovision)
        self.range_lock = RangeLock()
        self.stats = FlashvisorStats()
        self.pending_flush_bytes = 0
        self._next_write_group = 0
        scratchpad.allocate("flashvisor.mapping_table",
                            min(self.mapping.size_bytes(),
                                scratchpad.capacity_bytes // 2))

    # ------------------------------------------------------------------ #
    # Address translation (pure logic, no simulated time)                 #
    # ------------------------------------------------------------------ #
    def translate_read(self, flash_word_address: int,
                       num_bytes: int) -> List[int]:
        """Logical word address + length -> physical page-group numbers.

        Follows Figure 9a: divide the word address by the channel count to
        obtain the logical page group, look it up in the mapping table, and
        derive the package index / page number from the physical group.
        Unmapped logical groups are treated as freshly-initialized data
        (mapped on first use), mirroring how the prototype pre-loads input
        files into the backbone.
        """
        start_group = self.geometry.word_address_to_group(
            flash_word_address, self.word_bytes)
        physical_groups = []
        for logical in self.geometry.iter_groups_for_bytes(start_group,
                                                           num_bytes):
            physical = self.mapping.lookup(logical)
            if physical is None:
                physical = self._allocate_physical(logical)
            physical_groups.append(physical)
            self.stats.translations += 1
        return physical_groups

    def translate_write(self, flash_word_address: int,
                        num_bytes: int) -> List[int]:
        """Allocate fresh physical groups for a write (log-structured)."""
        start_group = self.geometry.word_address_to_group(
            flash_word_address, self.word_bytes)
        physical_groups = []
        for logical in self.geometry.iter_groups_for_bytes(start_group,
                                                           num_bytes):
            stale = self.mapping.lookup(logical)
            if stale is not None:
                self.allocator.invalidate_group(stale)
            physical = self._allocate_physical(logical)
            physical_groups.append(physical)
            self.stats.translations += 1
        return physical_groups

    def _allocate_physical(self, logical_group: int) -> int:
        try:
            physical = self.allocator.allocate_group()
        except OutOfSpaceError:
            self.stats.reclaim_requests += 1
            raise
        self.mapping.update(logical_group, physical)
        self.stats.groups_allocated += 1
        return physical

    # ------------------------------------------------------------------ #
    # Timed request handling                                              #
    # ------------------------------------------------------------------ #
    def _translation_time(self, num_bytes: int) -> float:
        groups = max(1, self.geometry.bytes_to_page_groups(num_bytes))
        cycles = groups * self.TRANSLATION_CYCLES_PER_GROUP
        return cycles / self.lwp.spec.frequency_hz

    def _message_overhead(self):
        """Queue message latency from the requesting LWP to Flashvisor."""
        yield self.env.timeout(self.queue.latency_s)

    def _acquire_range_lock(self, start_group: int, end_group: int,
                            mode: str, owner: int):
        """Process generator: block until the range lock is granted."""
        wait_start = self.env.now
        while True:
            conflict = self.range_lock.try_acquire(start_group, end_group,
                                                   mode, owner)
            if conflict is None:
                break
            self.stats.lock_conflicts += 1
            yield self.env.timeout(self.LOCK_RETRY_INTERVAL_S)
        self.stats.lock_wait_time += self.env.now - wait_start

    def map_for_read(self, kernel: Kernel, flash_word_address: int,
                     num_bytes: int):
        """Process generator: map + fetch a data section for reading.

        Returns the number of bytes brought into DDR3L.
        """
        if num_bytes <= 0:
            return 0
        self.stats.read_requests += 1
        yield from self._message_overhead()
        start_group = self.geometry.word_address_to_group(
            flash_word_address, self.word_bytes)
        end_group = start_group + max(
            0, self.geometry.bytes_to_page_groups(num_bytes) - 1)
        yield from self._acquire_range_lock(start_group, end_group, READ,
                                            kernel.kernel_id)
        try:
            # Translation runs on the Flashvisor LWP and touches the
            # scratchpad-resident table.
            yield from self.lwp.busy_for(self._translation_time(num_bytes),
                                         bucket=STORAGE_ACCESS)
            groups = self.translate_read(flash_word_address, num_bytes)
            self.stats.groups_read += len(groups)
            # Stream the data out of the backbone and land it in DDR3L.
            yield from self.backbone.bulk_read(num_bytes)
            yield from self.ddr.write(num_bytes)
        finally:
            self.range_lock.release(start_group, end_group, kernel.kernel_id)
        return num_bytes

    def map_for_write(self, kernel: Kernel, flash_word_address: int,
                      num_bytes: int):
        """Process generator: map a data section for writing.

        The payload is buffered in DDR3L (which "buffers the majority of
        flash writes", Section 2.2); the flash programs themselves are
        queued as pending flush work that Storengine drains in the
        background, so the requesting worker is not stalled on the 2.6 ms
        TLC program latency.
        """
        if num_bytes <= 0:
            return 0
        self.stats.write_requests += 1
        yield from self._message_overhead()
        start_group = self.geometry.word_address_to_group(
            flash_word_address, self.word_bytes)
        end_group = start_group + max(
            0, self.geometry.bytes_to_page_groups(num_bytes) - 1)
        yield from self._acquire_range_lock(start_group, end_group, WRITE,
                                            kernel.kernel_id)
        try:
            yield from self.lwp.busy_for(self._translation_time(num_bytes),
                                         bucket=STORAGE_ACCESS)
            self.translate_write(flash_word_address, num_bytes)
            yield from self.ddr.write(num_bytes)
            self.pending_flush_bytes += num_bytes
        finally:
            self.range_lock.release(start_group, end_group, kernel.kernel_id)
        return num_bytes

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #
    def mapping_table_bytes(self) -> int:
        """Scratchpad footprint of the full mapping table (paper: ~2 MB)."""
        return self.mapping.size_bytes()

    def mapped_capacity_bytes(self) -> int:
        return len(self.mapping.mapped_groups()) * self.geometry.page_group_bytes
