"""Storengine: background flash management on a dedicated LWP (Section 4.3).

Storengine relieves Flashvisor of the time-consuming flash-firmware work so
that address translation never stalls kernel execution:

* it drains the DDR3L write buffer into the backbone (flash programs),
* it journals the scratchpad-resident mapping table to flash periodically,
* it reclaims physical block rows, choosing victims from the used pool in a
  simple round-robin order (the paper's deliberately cheap policy) and
  migrating the still-valid page groups before erasing.

All of this runs as a background simulation process that competes with the
workers only for backbone bandwidth — exactly the paper's design point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.engine import Environment
from ..hw.lwp import LWP
from ..hw.power import STORAGE_ACCESS, EnergyAccountant
from ..flash.backbone import FlashBackbone
from .flashvisor import Flashvisor


@dataclass
class StorengineStats:
    """Background-activity counters."""

    flushed_bytes: int = 0
    journal_dumps: int = 0
    journal_bytes: int = 0
    gc_invocations: int = 0
    migrated_groups: int = 0
    erased_rows: int = 0


class Storengine:
    """Background storage-management process."""

    def __init__(self, env: Environment, lwp: LWP, flashvisor: Flashvisor,
                 backbone: FlashBackbone,
                 energy: Optional[EnergyAccountant] = None,
                 poll_interval_s: float = 2e-3,
                 journal_interval_s: float = 50e-3,
                 flush_chunk_bytes: int = 8 * 1024 * 1024,
                 victim_policy: str = "round_robin"):
        if victim_policy not in ("round_robin", "greedy"):
            raise ValueError(f"unknown victim policy: {victim_policy!r}")
        self.env = env
        self.lwp = lwp
        self.flashvisor = flashvisor
        self.backbone = backbone
        self.energy = energy
        self.poll_interval_s = poll_interval_s
        self.journal_interval_s = journal_interval_s
        self.flush_chunk_bytes = flush_chunk_bytes
        self.victim_policy = victim_policy
        self.stats = StorengineStats()
        self._stopped = False
        self._last_journal = env.now
        self._process = env.process(self._run())

    # ------------------------------------------------------------------ #
    # Lifecycle                                                           #
    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        """Ask the background loop to exit at its next poll."""
        self._stopped = True

    @property
    def stopped(self) -> bool:
        return self._stopped

    # ------------------------------------------------------------------ #
    # Background loop                                                     #
    # ------------------------------------------------------------------ #
    def _run(self):
        while not self._stopped:
            did_work = False
            if self.flashvisor.pending_flush_bytes > 0:
                yield from self._flush_some()
                did_work = True
            if self.flashvisor.allocator.needs_gc():
                yield from self._collect_garbage()
                did_work = True
            if (self.env.now - self._last_journal) >= self.journal_interval_s:
                yield from self._journal_metadata()
                did_work = True
            if not did_work:
                yield self.env.timeout(self.poll_interval_s)

    # ------------------------------------------------------------------ #
    # Write-buffer flushing                                               #
    # ------------------------------------------------------------------ #
    def _flush_some(self):
        chunk = min(self.flashvisor.pending_flush_bytes,
                    self.flush_chunk_bytes)
        self.flashvisor.pending_flush_bytes -= chunk
        yield from self.backbone.bulk_program(chunk)
        self.stats.flushed_bytes += chunk

    def drain(self):
        """Process generator: synchronously flush all buffered writes.

        The evaluation runner calls this at the end of a workload so that
        storage energy reflects every byte the workload produced.
        """
        while self.flashvisor.pending_flush_bytes > 0:
            yield from self._flush_some()

    # ------------------------------------------------------------------ #
    # Metadata journaling                                                 #
    # ------------------------------------------------------------------ #
    def _journal_metadata(self):
        # The page-table entries for each block are persisted to the first
        # two pages of the block (Section 4.3); a periodic dump of the
        # scratchpad snapshot is modeled as a small bulk program.
        snapshot_bytes = 2 * self.backbone.spec.page_bytes
        yield from self.lwp.busy_for(20e-6, bucket=STORAGE_ACCESS)
        yield from self.backbone.bulk_program(snapshot_bytes)
        self.stats.journal_dumps += 1
        self.stats.journal_bytes += snapshot_bytes
        self._last_journal = self.env.now

    # ------------------------------------------------------------------ #
    # Garbage collection / wear-leveling                                  #
    # ------------------------------------------------------------------ #
    def _pick_victim(self) -> Optional[int]:
        allocator = self.flashvisor.allocator
        if self.victim_policy == "greedy":
            return allocator.pick_victim_greedy()
        return allocator.pick_victim_round_robin()

    def _collect_garbage(self):
        """Reclaim one block row: migrate valid groups, erase, free."""
        allocator = self.flashvisor.allocator
        victim_row = self._pick_victim()
        if victim_row is None:
            yield self.env.timeout(self.poll_interval_s)
            return
        self.stats.gc_invocations += 1
        row = allocator.rows[victim_row]
        valid_groups = sorted(row.valid_groups)
        # Load the page-table entries for the victim row from flash
        # (Storengine does not scan the whole table; it loads the two
        # metadata pages of the victim block).
        yield from self.backbone.bulk_read(2 * self.backbone.spec.page_bytes)
        for physical_group in valid_groups:
            logical = self.flashvisor.mapping.reverse_lookup(physical_group)
            yield from self.backbone.read_page_group(physical_group)
            new_physical = allocator.allocate_group()
            yield from self.backbone.program_page_group(new_physical)
            if logical is not None:
                self.flashvisor.mapping.update(logical, new_physical)
            self.stats.migrated_groups += 1
        yield from self.backbone.erase_block_row(victim_row)
        allocator.reclaim_row(victim_row)
        self.stats.erased_rows += 1
        if self.energy is not None:
            # Storengine compute share of the reclaim, charged as storage.
            self.energy.charge_power(f"lwp{self.lwp.lwp_id}", STORAGE_ACCESS,
                                     self.lwp.spec.power_per_core_w, 50e-6)
