"""FlashAbacus core: multi-kernel execution, Flashvisor, Storengine, schedulers."""

from .kernel import (
    DATA_SECTION,
    HEAP_SECTION,
    Kernel,
    KernelDescriptionTable,
    Microblock,
    STACK_SECTION,
    Screen,
    TEXT_SECTION,
    build_kernel,
)
from .app import Application, OffloadBatch
from .execution_chain import (
    KernelChain,
    MicroblockNode,
    MultiAppExecutionChain,
    ScreenNode,
    ScreenStatus,
)
from .range_lock import (
    READ,
    WRITE,
    LockedRange,
    RangeLock,
    RangeLockConflict,
)
from .flashvisor import Flashvisor, FlashvisorStats, MappingRequest
from .storengine import Storengine, StorengineStats
from .offload import BootRecord, OffloadController, PowerSleepController
from .schedulers import (
    DynamicInterKernelScheduler,
    InOrderIntraKernelScheduler,
    OutOfOrderIntraKernelScheduler,
    SCHEDULER_CLASSES,
    Scheduler,
    StaticInterKernelScheduler,
    WorkItem,
    make_scheduler,
)
from .accelerator import (
    ExecutionReport,
    FlashAbacusAccelerator,
    FlashAddressSpace,
    run_flashabacus,
)

__all__ = [
    "DATA_SECTION",
    "HEAP_SECTION",
    "Kernel",
    "KernelDescriptionTable",
    "Microblock",
    "STACK_SECTION",
    "Screen",
    "TEXT_SECTION",
    "build_kernel",
    "Application",
    "OffloadBatch",
    "KernelChain",
    "MicroblockNode",
    "MultiAppExecutionChain",
    "ScreenNode",
    "ScreenStatus",
    "READ",
    "WRITE",
    "LockedRange",
    "RangeLock",
    "RangeLockConflict",
    "Flashvisor",
    "FlashvisorStats",
    "MappingRequest",
    "Storengine",
    "StorengineStats",
    "BootRecord",
    "OffloadController",
    "PowerSleepController",
    "DynamicInterKernelScheduler",
    "InOrderIntraKernelScheduler",
    "OutOfOrderIntraKernelScheduler",
    "SCHEDULER_CLASSES",
    "Scheduler",
    "StaticInterKernelScheduler",
    "WorkItem",
    "make_scheduler",
    "ExecutionReport",
    "FlashAbacusAccelerator",
    "FlashAddressSpace",
    "run_flashabacus",
]
