"""Host-side offload path (Section 4, "Offload" / "Execution").

The host writes each kernel description table through a PCIe BAR window
that the PCIe controller maps onto DDR3L, then raises an interrupt.  The
interrupt is forwarded to Flashvisor, which puts the target LWP to sleep
through the power/sleep controller (PSC), programs its boot address
register with the DDR3L location of the downloaded kernel, triggers an
inter-process interrupt and wakes the LWP back up.  After this revocation
sequence the LWP starts fetching and executing the kernel, and Flashvisor
is free to decide execution order — which is exactly what the schedulers
in :mod:`repro.core.schedulers` do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.engine import Environment
from ..hw.memory import DDR3L
from ..hw.pcie import PCIeLink
from ..hw.power import EnergyAccountant
from .kernel import Kernel


@dataclass
class BootRecord:
    """Per-kernel record of the offload sequence, for tests and tracing."""

    kernel: Kernel
    bar_address: int
    downloaded_at: float
    interrupt_at: float
    ready_at: float


class PowerSleepController:
    """The PSC used to park and wake LWPs around boot-register updates."""

    SLEEP_LATENCY_S = 5e-6
    WAKE_LATENCY_S = 5e-6

    def __init__(self, env: Environment):
        self.env = env
        self.sleep_transitions = 0
        self.wake_transitions = 0

    def sleep(self):
        """Process generator: put an LWP into sleep mode."""
        yield self.env.timeout(self.SLEEP_LATENCY_S)
        self.sleep_transitions += 1

    def wake(self):
        """Process generator: pull an LWP out of sleep mode."""
        yield self.env.timeout(self.WAKE_LATENCY_S)
        self.wake_transitions += 1


class OffloadController:
    """Moves kernel description tables from the host into DDR3L over PCIe."""

    #: DDR3L region reserved as the PCIe BAR window for kernel images.
    BAR_REGION_BYTES = 64 * 1024 * 1024

    def __init__(self, env: Environment, pcie: PCIeLink, ddr: DDR3L,
                 psc: Optional[PowerSleepController] = None,
                 energy: Optional[EnergyAccountant] = None):
        self.env = env
        self.pcie = pcie
        self.ddr = ddr
        self.psc = psc if psc is not None else PowerSleepController(env)
        self.energy = energy
        self.records: List[BootRecord] = []
        self.boot_address_registers: Dict[int, int] = {}
        self._next_bar_offset = 0
        ddr.allocate("pcie.bar_window", self.BAR_REGION_BYTES)

    def offload_kernel(self, kernel: Kernel):
        """Process generator: download one kernel and run the boot sequence.

        Returns the :class:`BootRecord` describing the timing of each step.
        """
        image_bytes = kernel.descriptor.image_bytes
        if image_bytes > self.BAR_REGION_BYTES:
            raise ValueError(
                f"kernel image ({image_bytes} bytes) exceeds the BAR window")
        bar_address = self._next_bar_offset
        self._next_bar_offset = (self._next_bar_offset + image_bytes) \
            % self.BAR_REGION_BYTES

        # 1. Host writes the kernel description table to the BAR (PCIe DMA
        #    into DDR3L).
        yield from self.pcie.transfer(image_bytes)
        yield from self.ddr.write(image_bytes)
        downloaded_at = self.env.now

        # 2. Host raises a PCIe interrupt which is forwarded to Flashvisor.
        yield from self.pcie.interrupt()
        interrupt_at = self.env.now

        # 3. Flashvisor parks the target LWP, programs its boot address
        #    register and wakes it back up.
        yield from self.psc.sleep()
        self.boot_address_registers[kernel.kernel_id] = bar_address
        yield from self.psc.wake()
        ready_at = self.env.now

        record = BootRecord(kernel=kernel, bar_address=bar_address,
                            downloaded_at=downloaded_at,
                            interrupt_at=interrupt_at, ready_at=ready_at)
        self.records.append(record)
        return record

    def offload_batch(self, kernels: List[Kernel]):
        """Process generator: offload several kernels back to back."""
        records = []
        for kernel in kernels:
            record = yield from self.offload_kernel(kernel)
            records.append(record)
        return records

    @property
    def kernels_offloaded(self) -> int:
        return len(self.records)
