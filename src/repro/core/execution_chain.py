"""Multi-app execution chain (Figure 8 of the paper).

The chain records, per application, the ordered list of microblock nodes
and for each node the per-screen execution status (which LWP ran it and
whether it completed).  The schedulers use the chain to decide which
screens are *ready*: no screen of microblock ``i+1`` may start before every
screen of microblock ``i`` in the same kernel has completed — this is the
only data-dependency rule FlashAbacus enforces (dependencies only exist
among the microblocks within an application's kernel, Section 4.2).

Completion state is tracked incrementally: every ``mark_done`` bumps a
done-counter on the screen's node and chain, completed chains retire
from a per-app incomplete registry, and ``current_node`` advances a
monotonic cursor.  Serving runs offload one kernel per request, so
without retirement every scheduler poll re-scanned every chain ever
completed — O(requests²) over a run (it dominated cluster-run
profiles).  All queries return exactly what the full scans returned:
screens only become ready in a chain's current node and a DONE screen
never reverts, so completion is monotone per node, chain and app.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional, Tuple

from .kernel import Kernel, Microblock, Screen


class ScreenStatus(Enum):
    """Lifecycle of one screen inside the chain."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"


@dataclass
class ScreenNode:
    """Per-screen bookkeeping inside a microblock node."""

    screen: Screen
    status: ScreenStatus = ScreenStatus.PENDING
    lwp_id: Optional[int] = None
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    #: Set as soon as a scheduler hands the screen to a worker, before the
    #: worker has actually started it, so no other worker can claim it.
    claimed: bool = False
    #: Back-reference to the owning node (set by the node), so
    #: ``mark_done`` can bump the node's done-counter without a scan.
    parent: Optional["MicroblockNode"] = field(default=None, repr=False,
                                               compare=False)


@dataclass
class MicroblockNode:
    """One node of the chain: a microblock and the status of its screens."""

    kernel: Kernel
    microblock: Microblock
    screens: List[ScreenNode] = field(default_factory=list)
    #: Count of DONE screens, maintained by ``mark_done`` (all status
    #: transitions go through the chain API, so it cannot go stale).
    _done: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.screens:
            self.screens = [ScreenNode(screen=s)
                            for s in self.microblock.screens]
        self._done = sum(1 for s in self.screens
                         if s.status is ScreenStatus.DONE)
        for node in self.screens:
            node.parent = self

    @property
    def complete(self) -> bool:
        return self._done >= len(self.screens)

    @property
    def started(self) -> bool:
        return any(s.status is not ScreenStatus.PENDING for s in self.screens)

    def pending_screens(self) -> List[ScreenNode]:
        return [s for s in self.screens
                if s.status is ScreenStatus.PENDING and not s.claimed]


@dataclass
class KernelChain:
    """The ordered microblock nodes of one kernel."""

    kernel: Kernel
    nodes: List[MicroblockNode] = field(default_factory=list)
    offloaded_at: float = 0.0
    completed_at: Optional[float] = None
    #: Count of DONE screens across all nodes (``mark_done`` maintains
    #: it) and the index of the first possibly-incomplete node.  Nodes
    #: before the cursor are complete; completion is monotone, so the
    #: cursor only ever advances.
    _done: int = field(default=0, init=False, repr=False, compare=False)
    _total: int = field(default=0, init=False, repr=False, compare=False)
    _cursor: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.nodes:
            self.nodes = [MicroblockNode(kernel=self.kernel, microblock=m)
                          for m in self.kernel.microblocks]
        self._done = sum(node._done for node in self.nodes)
        self._total = sum(len(node.screens) for node in self.nodes)

    @property
    def complete(self) -> bool:
        return self._done >= self._total

    def current_node(self) -> Optional[MicroblockNode]:
        """The earliest node that is not yet complete (None when done)."""
        nodes = self.nodes
        cursor = self._cursor
        while cursor < len(nodes):
            node = nodes[cursor]
            if not node.complete:
                self._cursor = cursor
                return node
            cursor += 1
        self._cursor = cursor
        return None

    def ready_screens(self) -> List[Tuple[MicroblockNode, ScreenNode]]:
        """Screens that may start now: pending screens of the current node."""
        node = self.current_node()
        if node is None:
            return []
        return [(node, screen) for screen in node.pending_screens()]

    @property
    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.offloaded_at


class MultiAppExecutionChain:
    """Root data structure: one list of kernel chains per application."""

    def __init__(self) -> None:
        self._per_app: Dict[int, List[KernelChain]] = {}
        self._by_kernel: Dict[int, KernelChain] = {}
        # Incomplete chains per app, in insertion order (dicts keyed by
        # object id: O(1) retirement in mark_done without disturbing
        # order).  Scheduler polls iterate these instead of every chain
        # ever offloaded.
        self._incomplete: Dict[int, Dict[int, KernelChain]] = {}
        self._incomplete_count = 0

    # -- construction ----------------------------------------------------------
    def add_kernel(self, kernel: Kernel, now: float = 0.0) -> KernelChain:
        chain = KernelChain(kernel=kernel, offloaded_at=now)
        self._per_app.setdefault(kernel.app_id, []).append(chain)
        self._by_kernel[kernel.kernel_id] = chain
        if not chain.complete:    # zero-screen kernels are born complete
            self._incomplete.setdefault(kernel.app_id, {})[id(chain)] = chain
            self._incomplete_count += 1
        return chain

    # -- lookup -----------------------------------------------------------------
    def apps(self) -> List[int]:
        return sorted(self._per_app)

    def chains_for_app(self, app_id: int) -> List[KernelChain]:
        return list(self._per_app.get(app_id, []))

    def chain_for_kernel(self, kernel: Kernel) -> KernelChain:
        return self._by_kernel[kernel.kernel_id]

    def all_chains(self) -> Iterator[KernelChain]:
        for app_id in self.apps():
            yield from self._per_app[app_id]

    # -- status ---------------------------------------------------------------
    @property
    def complete(self) -> bool:
        return self._incomplete_count == 0

    def incomplete_chains(self) -> Iterator[KernelChain]:
        """Incomplete chains in :meth:`all_chains` order.

        Exactly the subsequence of :meth:`all_chains` whose chains are
        not yet complete — completed chains would contribute nothing to
        a readiness scan, so iterating this instead is behaviorally
        identical and O(live work) rather than O(history).
        """
        for app_id in sorted(self._incomplete):
            chains = self._incomplete[app_id]
            if chains:
                yield from chains.values()

    def first_incomplete(self) -> Optional[KernelChain]:
        """The first incomplete chain in :meth:`all_chains` order."""
        return next(self.incomplete_chains(), None)

    def ready_screens(self) -> List[Tuple[KernelChain, MicroblockNode, ScreenNode]]:
        """All screens that may start now, across every app and kernel."""
        ready = []
        for chain in self.incomplete_chains():
            node = chain.current_node()
            if node is None:
                continue
            for screen in node.screens:
                if screen.status is ScreenStatus.PENDING \
                        and not screen.claimed:
                    ready.append((chain, node, screen))
        return ready

    def mark_running(self, screen_node: ScreenNode, lwp_id: int,
                     now: float) -> None:
        if screen_node.status is not ScreenStatus.PENDING:
            raise ValueError("screen is not pending")
        screen_node.status = ScreenStatus.RUNNING
        screen_node.lwp_id = lwp_id
        screen_node.started_at = now

    def mark_done(self, chain: KernelChain, screen_node: ScreenNode,
                  now: float) -> None:
        if screen_node.status is not ScreenStatus.RUNNING:
            raise ValueError("screen is not running")
        screen_node.status = ScreenStatus.DONE
        screen_node.completed_at = now
        parent = screen_node.parent
        if parent is not None:
            parent._done += 1
        chain._done += 1
        if chain.complete:
            if chain.completed_at is None:
                chain.completed_at = now
            app = self._incomplete.get(chain.kernel.app_id)
            if app is not None and app.pop(id(chain), None) is not None:
                self._incomplete_count -= 1

    # -- metrics --------------------------------------------------------------
    def kernel_latencies(self) -> List[float]:
        return [chain.latency for chain in self.all_chains()
                if chain.latency is not None]

    def completion_times(self) -> List[float]:
        return sorted(chain.completed_at for chain in self.all_chains()
                      if chain.completed_at is not None)
