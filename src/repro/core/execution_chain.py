"""Multi-app execution chain (Figure 8 of the paper).

The chain records, per application, the ordered list of microblock nodes
and for each node the per-screen execution status (which LWP ran it and
whether it completed).  The schedulers use the chain to decide which
screens are *ready*: no screen of microblock ``i+1`` may start before every
screen of microblock ``i`` in the same kernel has completed — this is the
only data-dependency rule FlashAbacus enforces (dependencies only exist
among the microblocks within an application's kernel, Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional, Tuple

from .kernel import Kernel, Microblock, Screen


class ScreenStatus(Enum):
    """Lifecycle of one screen inside the chain."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"


@dataclass
class ScreenNode:
    """Per-screen bookkeeping inside a microblock node."""

    screen: Screen
    status: ScreenStatus = ScreenStatus.PENDING
    lwp_id: Optional[int] = None
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    #: Set as soon as a scheduler hands the screen to a worker, before the
    #: worker has actually started it, so no other worker can claim it.
    claimed: bool = False


@dataclass
class MicroblockNode:
    """One node of the chain: a microblock and the status of its screens."""

    kernel: Kernel
    microblock: Microblock
    screens: List[ScreenNode] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.screens:
            self.screens = [ScreenNode(screen=s)
                            for s in self.microblock.screens]

    @property
    def complete(self) -> bool:
        return all(s.status is ScreenStatus.DONE for s in self.screens)

    @property
    def started(self) -> bool:
        return any(s.status is not ScreenStatus.PENDING for s in self.screens)

    def pending_screens(self) -> List[ScreenNode]:
        return [s for s in self.screens
                if s.status is ScreenStatus.PENDING and not s.claimed]


@dataclass
class KernelChain:
    """The ordered microblock nodes of one kernel."""

    kernel: Kernel
    nodes: List[MicroblockNode] = field(default_factory=list)
    offloaded_at: float = 0.0
    completed_at: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.nodes:
            self.nodes = [MicroblockNode(kernel=self.kernel, microblock=m)
                          for m in self.kernel.microblocks]

    @property
    def complete(self) -> bool:
        return all(node.complete for node in self.nodes)

    def current_node(self) -> Optional[MicroblockNode]:
        """The earliest node that is not yet complete (None when done)."""
        for node in self.nodes:
            if not node.complete:
                return node
        return None

    def ready_screens(self) -> List[Tuple[MicroblockNode, ScreenNode]]:
        """Screens that may start now: pending screens of the current node."""
        node = self.current_node()
        if node is None:
            return []
        return [(node, screen) for screen in node.pending_screens()]

    @property
    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.offloaded_at


class MultiAppExecutionChain:
    """Root data structure: one list of kernel chains per application."""

    def __init__(self) -> None:
        self._per_app: Dict[int, List[KernelChain]] = {}
        self._by_kernel: Dict[int, KernelChain] = {}

    # -- construction ----------------------------------------------------------
    def add_kernel(self, kernel: Kernel, now: float = 0.0) -> KernelChain:
        chain = KernelChain(kernel=kernel, offloaded_at=now)
        self._per_app.setdefault(kernel.app_id, []).append(chain)
        self._by_kernel[kernel.kernel_id] = chain
        return chain

    # -- lookup -----------------------------------------------------------------
    def apps(self) -> List[int]:
        return sorted(self._per_app)

    def chains_for_app(self, app_id: int) -> List[KernelChain]:
        return list(self._per_app.get(app_id, []))

    def chain_for_kernel(self, kernel: Kernel) -> KernelChain:
        return self._by_kernel[kernel.kernel_id]

    def all_chains(self) -> Iterator[KernelChain]:
        for app_id in self.apps():
            yield from self._per_app[app_id]

    # -- status ---------------------------------------------------------------
    @property
    def complete(self) -> bool:
        return all(chain.complete for chain in self.all_chains())

    def ready_screens(self) -> List[Tuple[KernelChain, MicroblockNode, ScreenNode]]:
        """All screens that may start now, across every app and kernel."""
        ready = []
        for chain in self.all_chains():
            for node, screen in chain.ready_screens():
                ready.append((chain, node, screen))
        return ready

    def mark_running(self, screen_node: ScreenNode, lwp_id: int,
                     now: float) -> None:
        if screen_node.status is not ScreenStatus.PENDING:
            raise ValueError("screen is not pending")
        screen_node.status = ScreenStatus.RUNNING
        screen_node.lwp_id = lwp_id
        screen_node.started_at = now

    def mark_done(self, chain: KernelChain, screen_node: ScreenNode,
                  now: float) -> None:
        if screen_node.status is not ScreenStatus.RUNNING:
            raise ValueError("screen is not running")
        screen_node.status = ScreenStatus.DONE
        screen_node.completed_at = now
        if chain.complete and chain.completed_at is None:
            chain.completed_at = now

    # -- metrics --------------------------------------------------------------
    def kernel_latencies(self) -> List[float]:
        return [chain.latency for chain in self.all_chains()
                if chain.latency is not None]

    def completion_times(self) -> List[float]:
        return sorted(chain.completed_at for chain in self.all_chains()
                      if chain.completed_at is not None)
