"""Range lock protecting flash-mapped data sections (Section 4.3).

Flashvisor does not tag every page-table entry with an owner; instead it
keeps an augmented red-black tree of locked page ranges.  A request to map
a data section for *reads* is blocked while any overlapping range is locked
for *writes*, and a *write* mapping is blocked while any overlapping range
is locked at all (read or write) — i.e. multiple concurrent readers are
allowed, writers are exclusive.

The tree is keyed by the start page number of the range; each node is
augmented with the maximum end page in its subtree so overlap queries are
O(log n).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

READ = "read"
WRITE = "write"

RED = True
BLACK = False


@dataclass
class LockedRange:
    """One locked interval of flash page groups, inclusive of both ends."""

    start: int
    end: int
    mode: str
    owner: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError("invalid range")
        if self.mode not in (READ, WRITE):
            raise ValueError(f"unknown lock mode: {self.mode!r}")

    def overlaps(self, start: int, end: int) -> bool:
        return self.start <= end and start <= self.end


class _Node:
    __slots__ = ("range", "left", "right", "parent", "color", "max_end")

    def __init__(self, locked_range: LockedRange):
        self.range = locked_range
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.parent: Optional[_Node] = None
        self.color = RED
        self.max_end = locked_range.end


class RangeLockConflict(Exception):
    """Raised (or returned as a denial) when a lock request conflicts."""

    def __init__(self, requested: LockedRange, conflicting: LockedRange):
        super().__init__(
            f"range [{requested.start}, {requested.end}] ({requested.mode}) "
            f"conflicts with [{conflicting.start}, {conflicting.end}] "
            f"({conflicting.mode}) held by kernel {conflicting.owner}")
        self.requested = requested
        self.conflicting = conflicting


class RangeLock:
    """Interval red-black tree implementing Flashvisor's range lock."""

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._size = 0

    # -- public API -------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def try_acquire(self, start: int, end: int, mode: str,
                    owner: int) -> Optional[RangeLockConflict]:
        """Attempt to lock [start, end]; returns a conflict or None on success.

        Read/read overlaps are permitted (even between different kernels);
        any overlap involving a write is a conflict, matching the paper's
        description of the protection rule.
        """
        requested = LockedRange(start=start, end=end, mode=mode, owner=owner)
        conflict = self._find_conflict(requested)
        if conflict is not None:
            return RangeLockConflict(requested, conflict)
        self._insert(requested)
        return None

    def acquire(self, start: int, end: int, mode: str, owner: int) -> LockedRange:
        """Lock [start, end] or raise :class:`RangeLockConflict`."""
        conflict = self.try_acquire(start, end, mode, owner)
        if conflict is not None:
            raise conflict
        return LockedRange(start=start, end=end, mode=mode, owner=owner)

    def release(self, start: int, end: int, owner: int) -> bool:
        """Release the lock previously acquired on [start, end] by ``owner``."""
        node = self._find_exact(start, end, owner)
        if node is None:
            return False
        self._remove(node)
        return True

    def release_owner(self, owner: int) -> int:
        """Release every range held by ``owner``; returns how many."""
        victims = [r for r in self.ranges() if r.owner == owner]
        for locked in victims:
            self.release(locked.start, locked.end, owner)
        return len(victims)

    def ranges(self) -> List[LockedRange]:
        """All currently locked ranges, in start order."""
        return [node.range for node in self._in_order(self._root)]

    def conflicts_with(self, start: int, end: int, mode: str) -> List[LockedRange]:
        """All locked ranges that would block a [start, end] ``mode`` request."""
        return [node.range for node in self._in_order(self._root)
                if node.range.overlaps(start, end)
                and not (node.range.mode == READ and mode == READ)]

    # -- conflict search ------------------------------------------------------
    def _find_conflict(self, requested: LockedRange) -> Optional[LockedRange]:
        node = self._root
        while node is not None:
            if (node.range.overlaps(requested.start, requested.end)
                    and not (node.range.mode == READ and requested.mode == READ)):
                return node.range
            if (node.left is not None
                    and node.left.max_end >= requested.start):
                node = node.left
            else:
                node = node.right
        # The subtree descent above can miss read/read overlaps that hide a
        # conflicting write deeper down; fall back to a full scan in the
        # (rare) case the fast path found nothing but overlaps exist.
        for candidate in self._in_order(self._root):
            if (candidate.range.overlaps(requested.start, requested.end)
                    and not (candidate.range.mode == READ
                             and requested.mode == READ)):
                return candidate.range
        return None

    def _find_exact(self, start: int, end: int, owner: int) -> Optional[_Node]:
        for node in self._in_order(self._root):
            if (node.range.start == start and node.range.end == end
                    and node.range.owner == owner):
                return node
        return None

    # -- red-black machinery -----------------------------------------------
    def _in_order(self, node: Optional[_Node]) -> Iterator[_Node]:
        if node is None:
            return
        yield from self._in_order(node.left)
        yield node
        yield from self._in_order(node.right)

    def _insert(self, locked_range: LockedRange) -> None:
        new = _Node(locked_range)
        parent, node = None, self._root
        while node is not None:
            parent = node
            node = node.left if locked_range.start < node.range.start else node.right
        new.parent = parent
        if parent is None:
            self._root = new
        elif locked_range.start < parent.range.start:
            parent.left = new
        else:
            parent.right = new
        self._size += 1
        self._update_max_up(new)
        self._fix_insert(new)

    def _remove(self, node: _Node) -> None:
        # Simple removal: rebuild is acceptable for the modest lock counts
        # Flashvisor sees (one range per active data section), but we keep a
        # structural remove for correctness with large synthetic tests.
        ranges = [n.range for n in self._in_order(self._root) if n is not node]
        self._root = None
        self._size = 0
        for r in ranges:
            self._insert(r)

    def _rotate_left(self, x: _Node) -> None:
        y = x.right
        x.right = y.left
        if y.left is not None:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is None:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y
        self._update_max(x)
        self._update_max(y)

    def _rotate_right(self, x: _Node) -> None:
        y = x.left
        x.left = y.right
        if y.right is not None:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is None:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y
        self._update_max(x)
        self._update_max(y)

    def _update_max(self, node: _Node) -> None:
        node.max_end = node.range.end
        if node.left is not None:
            node.max_end = max(node.max_end, node.left.max_end)
        if node.right is not None:
            node.max_end = max(node.max_end, node.right.max_end)

    def _update_max_up(self, node: Optional[_Node]) -> None:
        while node is not None:
            self._update_max(node)
            node = node.parent

    def _fix_insert(self, node: _Node) -> None:
        while node.parent is not None and node.parent.color is RED:
            grand = node.parent.parent
            if grand is None:
                break
            if node.parent is grand.left:
                uncle = grand.right
                if uncle is not None and uncle.color is RED:
                    node.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    node = grand
                else:
                    if node is node.parent.right:
                        node = node.parent
                        self._rotate_left(node)
                    node.parent.color = BLACK
                    grand.color = RED
                    self._rotate_right(grand)
            else:
                uncle = grand.left
                if uncle is not None and uncle.color is RED:
                    node.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    node = grand
                else:
                    if node is node.parent.left:
                        node = node.parent
                        self._rotate_right(node)
                    node.parent.color = BLACK
                    grand.color = RED
                    self._rotate_left(grand)
        if self._root is not None:
            self._root.color = BLACK
        self._update_max_up(node)

    # -- invariants (used by property-based tests) ---------------------------
    def check_invariants(self) -> None:
        """Validate BST order, max-end augmentation, and red-black rules."""
        def black_height(node: Optional[_Node]) -> int:
            if node is None:
                return 1
            if node.color is RED:
                for child in (node.left, node.right):
                    if child is not None and child.color is RED:
                        raise AssertionError("red node with red child")
            left = black_height(node.left)
            right = black_height(node.right)
            if left != right:
                raise AssertionError("black heights differ")
            expected_max = node.range.end
            for child in (node.left, node.right):
                if child is not None:
                    expected_max = max(expected_max, child.max_end)
            if node.max_end != expected_max:
                raise AssertionError("max_end augmentation is stale")
            if node.left is not None and node.left.range.start > node.range.start:
                raise AssertionError("BST order violated (left)")
            if node.right is not None and node.right.range.start < node.range.start:
                raise AssertionError("BST order violated (right)")
            return left + (0 if node.color is RED else 1)

        if self._root is not None and self._root.color is RED:
            raise AssertionError("root must be black")
        black_height(self._root)
