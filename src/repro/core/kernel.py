"""Kernel representation: screens, microblocks, kernels, description tables.

Section 4 of the paper: a *kernel* is an executable object described by a
kernel description table (a variation of ELF) whose sections (.text,
.ddr3_arr data section, .heap, .stack) are placed in each LWP's L2 cache,
except the data section which Flashvisor maps to flash.  A kernel's body is
a sequence of *microblocks* whose executions must be serialized; inside a
microblock, *screens* operate on disjoint slices of the input vector and can
run on different LWPs concurrently (Section 4.2, Figure 6).

This module is purely descriptive — execution timing lives in the
accelerator/baseline engines.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

_kernel_ids = itertools.count()


@dataclass
class Screen:
    """A slice of a microblock that can execute on one LWP independently."""

    screen_id: int
    instructions: float
    input_bytes: int = 0
    output_bytes: int = 0
    ld_st_ratio: float = 0.3

    def __post_init__(self) -> None:
        if self.instructions < 0:
            raise ValueError("instructions must be non-negative")
        if self.input_bytes < 0 or self.output_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        if not 0.0 <= self.ld_st_ratio <= 1.0:
            raise ValueError("ld_st_ratio must be in [0, 1]")

    @property
    def total_bytes(self) -> int:
        return self.input_bytes + self.output_bytes


@dataclass
class Microblock:
    """A group of code segments whose execution depends on its inputs.

    ``serial`` microblocks contain exactly one screen and cannot be split;
    parallel microblocks may spread their screens across LWPs.
    """

    index: int
    screens: List[Screen] = field(default_factory=list)
    serial: bool = False
    reads_flash: bool = False
    writes_flash: bool = False

    def __post_init__(self) -> None:
        if self.serial and len(self.screens) > 1:
            raise ValueError("a serial microblock has exactly one screen")
        if not self.screens:
            raise ValueError("a microblock needs at least one screen")

    @property
    def instructions(self) -> float:
        return sum(s.instructions for s in self.screens)

    @property
    def input_bytes(self) -> int:
        return sum(s.input_bytes for s in self.screens)

    @property
    def output_bytes(self) -> int:
        return sum(s.output_bytes for s in self.screens)

    def __len__(self) -> int:
        return len(self.screens)


# Section names used by the kernel description table (Section 4, "Kernel").
TEXT_SECTION = ".text"
DATA_SECTION = ".ddr3_arr"
HEAP_SECTION = ".heap"
STACK_SECTION = ".stack"


@dataclass
class KernelDescriptionTable:
    """ELF-like executable object describing an offloaded kernel.

    The table records section sizes and where each section is placed: the
    data section is flash-mapped through Flashvisor, everything else lives
    in the target LWP's L2 cache.
    """

    name: str
    section_bytes: Dict[str, int] = field(default_factory=dict)
    flash_base_word: int = 0
    entry_point: int = 0

    def __post_init__(self) -> None:
        for section in (TEXT_SECTION, DATA_SECTION, HEAP_SECTION, STACK_SECTION):
            self.section_bytes.setdefault(section, 0)
        for name, size in self.section_bytes.items():
            if size < 0:
                raise ValueError(f"section {name!r} has negative size")

    @property
    def image_bytes(self) -> int:
        """Bytes transferred over PCIe when the kernel is offloaded."""
        return sum(size for name, size in self.section_bytes.items()
                   if name != DATA_SECTION)

    @property
    def data_section_bytes(self) -> int:
        return self.section_bytes.get(DATA_SECTION, 0)

    def l2_resident_bytes(self) -> int:
        """Bytes that must fit into the executing LWP's L2 cache."""
        return self.image_bytes


class Kernel:
    """One offloadable kernel: a description table plus its microblocks."""

    def __init__(self, name: str, microblocks: List[Microblock],
                 app_id: int = 0, instance: int = 0,
                 descriptor: Optional[KernelDescriptionTable] = None,
                 text_bytes: int = 64 * 1024):
        if not microblocks:
            raise ValueError("a kernel needs at least one microblock")
        self.kernel_id = next(_kernel_ids)
        self.name = name
        self.app_id = app_id
        self.instance = instance
        self.microblocks = list(microblocks)
        for expected, mblk in enumerate(self.microblocks):
            if mblk.index != expected:
                raise ValueError("microblock indices must be 0..n-1 in order")
        data_bytes = sum(m.input_bytes + m.output_bytes for m in microblocks)
        if descriptor is None:
            descriptor = KernelDescriptionTable(
                name=name,
                section_bytes={
                    TEXT_SECTION: text_bytes,
                    DATA_SECTION: data_bytes,
                    HEAP_SECTION: 16 * 1024,
                    STACK_SECTION: 16 * 1024,
                },
            )
        self.descriptor = descriptor

    # -- aggregate characteristics -----------------------------------------
    @property
    def instructions(self) -> float:
        return sum(m.instructions for m in self.microblocks)

    @property
    def input_bytes(self) -> int:
        return sum(m.input_bytes for m in self.microblocks)

    @property
    def output_bytes(self) -> int:
        return sum(m.output_bytes for m in self.microblocks)

    @property
    def flash_read_bytes(self) -> int:
        return sum(m.input_bytes for m in self.microblocks if m.reads_flash)

    @property
    def flash_write_bytes(self) -> int:
        return sum(m.output_bytes for m in self.microblocks if m.writes_flash)

    @property
    def serial_microblock_count(self) -> int:
        return sum(1 for m in self.microblocks if m.serial)

    @property
    def serial_fraction(self) -> float:
        """Fraction of the kernel's instructions in serial microblocks."""
        total = self.instructions
        if total <= 0:
            return 0.0
        serial = sum(m.instructions for m in self.microblocks if m.serial)
        return serial / total

    def iter_screens(self) -> Iterator[Screen]:
        for mblk in self.microblocks:
            yield from mblk.screens

    def screen_count(self) -> int:
        return sum(len(m) for m in self.microblocks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Kernel({self.name!r}, app={self.app_id}, "
                f"instance={self.instance}, mblks={len(self.microblocks)})")


def build_kernel(name: str, total_instructions: float, input_bytes: int,
                 output_bytes: int, microblock_count: int,
                 serial_microblocks: int, screens_per_microblock: int,
                 ld_st_ratio: float = 0.3, app_id: int = 0,
                 instance: int = 0, serial_weight: float = 0.35) -> Kernel:
    """Construct a kernel from aggregate workload characteristics.

    Instructions are split across microblocks with serial microblocks
    (placed last, as the paper's examples put reduction/epilogue steps at
    the end) receiving a ``serial_weight`` share relative to parallel
    microblocks — serial blocks are typically short epilogue/reduction
    loops, not equal halves of the kernel.  The first microblock reads the
    kernel's input from flash and the last one writes the output back;
    intermediate microblocks exchange data through DDR3L only.
    """
    if microblock_count < 1:
        raise ValueError("microblock_count must be >= 1")
    if not 0 <= serial_microblocks <= microblock_count:
        raise ValueError("serial_microblocks out of range")
    if screens_per_microblock < 1:
        raise ValueError("screens_per_microblock must be >= 1")
    if serial_weight <= 0:
        raise ValueError("serial_weight must be positive")

    parallel_count = microblock_count - serial_microblocks
    total_weight = parallel_count * 1.0 + serial_microblocks * serial_weight
    microblocks: List[Microblock] = []
    screen_seq = itertools.count()
    for index in range(microblock_count):
        serial = index >= microblock_count - serial_microblocks
        weight = serial_weight if serial else 1.0
        per_mblk_instr = total_instructions * weight / total_weight
        reads_flash = index == 0
        writes_flash = index == microblock_count - 1
        mblk_input = input_bytes if reads_flash else 0
        mblk_output = output_bytes if writes_flash else 0
        count = 1 if serial else screens_per_microblock
        screens = []
        for s in range(count):
            screens.append(Screen(
                screen_id=next(screen_seq),
                instructions=per_mblk_instr / count,
                input_bytes=mblk_input // count + (mblk_input % count if s == 0 else 0),
                output_bytes=mblk_output // count + (mblk_output % count if s == 0 else 0),
                ld_st_ratio=ld_st_ratio,
            ))
        microblocks.append(Microblock(index=index, screens=screens,
                                      serial=serial,
                                      reads_flash=reads_flash,
                                      writes_flash=writes_flash))
    return Kernel(name=name, microblocks=microblocks, app_id=app_id,
                  instance=instance)
