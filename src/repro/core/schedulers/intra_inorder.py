"""In-order intra-kernel scheduling (Section 4.2, Figure 7b).

Kernels are processed in arrival order; the microblocks of the kernel at
the head of the queue execute serially, but the screens *within* the
current microblock are spread across every free worker LWP.  This shortens
the latency of an individual kernel (screen-level parallelism) at the cost
of leaving LWPs idle whenever the current microblock is serial or has fewer
screens than there are workers — the limitation the out-of-order scheduler
removes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ...policy import register_policy
from ..execution_chain import KernelChain
from ..kernel import Kernel
from .base import Scheduler, WorkItem


@register_policy("scheduler")
class InOrderIntraKernelScheduler(Scheduler):
    """``IntraIo`` — screens of the head kernel's current microblock only."""

    name = "IntraIo"
    dispatch_overhead_s = 3e-6

    def __init__(self, num_workers: int):
        super().__init__(num_workers)
        self._pending: Deque[Kernel] = deque()
        self.dispatches = 0

    def _on_offload(self, kernel: Kernel) -> None:
        self._pending.append(kernel)

    def _head_chain(self) -> Optional[KernelChain]:
        while self._pending:
            chain = self.chain.chain_for_kernel(self._pending[0])
            if chain.complete:
                self._pending.popleft()
                continue
            return chain
        return None

    def next_work(self, worker_index: int) -> Optional[WorkItem]:
        chain = self._head_chain()
        if chain is None:
            return None
        ready = chain.ready_screens()
        if not ready:
            # The head kernel's current microblock is fully dispatched but
            # not yet complete; in-order scheduling refuses to look further.
            return None
        node, screen = ready[0]
        self.dispatches += 1
        return self.single_screen_item(chain, node, screen)

    @property
    def pending_kernels(self) -> int:
        return sum(1 for k in self._pending
                   if not self.chain.chain_for_kernel(k).complete)
