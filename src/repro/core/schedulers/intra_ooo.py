"""Out-of-order intra-kernel scheduling (Section 4.2, Figure 7c).

The key observation of the paper: data dependencies only exist among the
microblocks *within* one kernel.  Whenever an LWP becomes free, this
scheduler may therefore "borrow" a ready screen from any other kernel or
application — the current microblock of any offloaded kernel — instead of
idling until the head kernel advances.  The multi-app execution chain
guarantees that no screen starts before every screen of the previous
microblock in the same kernel has completed.

Borrowing keeps all LWPs busy (maximizing utilization and throughput) and
shortens straggler kernels by spreading their screens over several LWPs.
The price is the Flashvisor/worker IPC for every dispatched screen and the
scheduling work itself, which the engine charges via
``dispatch_overhead_s`` — the reason the paper reports IntraO3 a couple of
percent behind InterDy for homogeneous workloads.
"""

from __future__ import annotations

from typing import Optional

from ...policy import register_policy
from .base import Scheduler, WorkItem


@register_policy("scheduler")
class OutOfOrderIntraKernelScheduler(Scheduler):
    """``IntraO3`` — any ready screen from any kernel, oldest kernel first."""

    name = "IntraO3"
    dispatch_overhead_s = 5e-6

    def __init__(self, num_workers: int):
        super().__init__(num_workers)
        self.dispatches = 0
        self.borrowed_dispatches = 0

    def next_work(self, worker_index: int) -> Optional[WorkItem]:
        ready = self.chain.ready_screens()
        if not ready:
            return None
        # Oldest offload first, then microblock order: this matches the
        # paper's examples where screens are pulled forward from later
        # kernels only when earlier kernels cannot fill the LWPs.
        ready.sort(key=lambda entry: (entry[0].offloaded_at,
                                      entry[0].kernel.kernel_id,
                                      entry[1].microblock.index))
        chain, node, screen = ready[0]
        # A dispatch is "borrowed" when it does not belong to the oldest
        # incomplete kernel — the out-of-order behaviour of Figure 7c.
        oldest_incomplete = self.chain.first_incomplete()
        if oldest_incomplete is not None and chain is not oldest_incomplete:
            self.borrowed_dispatches += 1
        self.dispatches += 1
        return self.single_screen_item(chain, node, screen)
