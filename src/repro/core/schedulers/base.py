"""Scheduler interface shared by the four FlashAbacus policies.

A scheduler owns the multi-app execution chain and hands *work items* to
worker LWPs.  A work item is a sequence of (microblock node, screen node)
pairs belonging to one kernel chain that the worker executes in order:

* the inter-kernel schedulers hand out whole kernels (every screen of
  every microblock, in order) — one instruction stream per LWP;
* the intra-kernel schedulers hand out individual screens.

Workers pull work with :meth:`Scheduler.next_work` and report back with
:meth:`Scheduler.notify_complete`; the execution engine takes care of chain
status updates and timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..execution_chain import (
    KernelChain,
    MicroblockNode,
    MultiAppExecutionChain,
    ScreenNode,
)
from ..kernel import Kernel


@dataclass
class WorkItem:
    """A unit of work assigned to one worker LWP."""

    chain: KernelChain
    units: List[Tuple[MicroblockNode, ScreenNode]]
    kind: str = "screen"            # "kernel" for whole-kernel items

    @property
    def kernel(self) -> Kernel:
        return self.chain.kernel

    @property
    def instructions(self) -> float:
        return sum(screen.screen.instructions for _node, screen in self.units)

    def __len__(self) -> int:
        return len(self.units)


class Scheduler:
    """Base class: owns the chain, tracks offloaded kernels."""

    #: Human-readable name used in reports ("InterSt", "IntraO3", ...).
    name = "base"
    #: Extra Flashvisor scheduling/IPC latency charged per dispatched item.
    dispatch_overhead_s = 0.0

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.chain = MultiAppExecutionChain()
        self._offloaded: List[Kernel] = []

    # -- offload ------------------------------------------------------------
    def offload(self, kernels: Sequence[Kernel], now: float = 0.0) -> None:
        """Register newly downloaded kernels with the scheduler."""
        for kernel in kernels:
            self.chain.add_kernel(kernel, now)
            self._offloaded.append(kernel)
            self._on_offload(kernel)

    def _on_offload(self, kernel: Kernel) -> None:
        """Hook for subclasses to maintain their dispatch queues."""

    # -- dispatch --------------------------------------------------------------
    def next_work(self, worker_index: int) -> Optional[WorkItem]:
        """Return the next work item for ``worker_index`` (None if idle)."""
        raise NotImplementedError

    def notify_complete(self, worker_index: int, item: WorkItem,
                        now: float) -> None:
        """Called by the engine when a work item finishes."""

    # -- status ---------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once every offloaded kernel has completed."""
        return bool(self._offloaded) and self.chain.complete

    @property
    def offloaded_count(self) -> int:
        return len(self._offloaded)

    # -- helpers for subclasses ---------------------------------------------
    @staticmethod
    def whole_kernel_item(chain: KernelChain) -> WorkItem:
        """Build a work item covering every screen of ``chain`` in order."""
        units: List[Tuple[MicroblockNode, ScreenNode]] = []
        for node in chain.nodes:
            for screen in node.screens:
                screen.claimed = True
                units.append((node, screen))
        return WorkItem(chain=chain, units=units, kind="kernel")

    @staticmethod
    def single_screen_item(chain: KernelChain, node: MicroblockNode,
                           screen: ScreenNode) -> WorkItem:
        screen.claimed = True
        return WorkItem(chain=chain, units=[(node, screen)], kind="screen")
