"""The four FlashAbacus kernel-scheduling policies (Sections 4.1 and 4.2)."""

from .base import Scheduler, WorkItem
from .inter_static import StaticInterKernelScheduler
from .inter_dynamic import DynamicInterKernelScheduler
from .intra_inorder import InOrderIntraKernelScheduler
from .intra_ooo import OutOfOrderIntraKernelScheduler

SCHEDULER_CLASSES = {
    "InterSt": StaticInterKernelScheduler,
    "InterDy": DynamicInterKernelScheduler,
    "IntraIo": InOrderIntraKernelScheduler,
    "IntraO3": OutOfOrderIntraKernelScheduler,
}


def make_scheduler(name: str, num_workers: int) -> Scheduler:
    """Instantiate a scheduler by its paper name (InterSt/InterDy/IntraIo/IntraO3)."""
    try:
        cls = SCHEDULER_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULER_CLASSES)}"
        ) from None
    return cls(num_workers)


__all__ = [
    "Scheduler",
    "WorkItem",
    "StaticInterKernelScheduler",
    "DynamicInterKernelScheduler",
    "InOrderIntraKernelScheduler",
    "OutOfOrderIntraKernelScheduler",
    "SCHEDULER_CLASSES",
    "make_scheduler",
]
