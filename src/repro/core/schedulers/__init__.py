"""The four FlashAbacus kernel-scheduling policies (Sections 4.1 and 4.2).

Each scheduler class registers itself in the unified policy registry
(:mod:`repro.policy`) under the ``scheduler`` domain with its paper name
(``InterSt``/``InterDy``/``IntraIo``/``IntraO3``); importing this package
is what loads the built-in set.  New schedulers are one registered class:

    @register_policy("scheduler")
    class MyScheduler(Scheduler):
        name = "MySched"
        ...

:data:`SCHEDULER_CLASSES` and :func:`make_scheduler` are the pre-registry
surface, kept as deprecated shims over the registry.
"""

import warnings

from ...policy import build_policy, policy_names
from .base import Scheduler, WorkItem
from .inter_static import StaticInterKernelScheduler
from .inter_dynamic import DynamicInterKernelScheduler
from .intra_inorder import InOrderIntraKernelScheduler
from .intra_ooo import OutOfOrderIntraKernelScheduler

#: Deprecated alias of the registry's scheduler domain (the paper's four
#: built-ins, in paper order).  Prefer
#: ``repro.policy.registered_policies("scheduler")``.
SCHEDULER_CLASSES = {
    "InterSt": StaticInterKernelScheduler,
    "InterDy": DynamicInterKernelScheduler,
    "IntraIo": InOrderIntraKernelScheduler,
    "IntraO3": OutOfOrderIntraKernelScheduler,
}


def make_scheduler(name: str, num_workers: int) -> Scheduler:
    """Deprecated: instantiate a scheduler by its paper name.

    Kept as a shim over the unified policy registry; use
    ``repro.policy.build_policy("scheduler", name, num_workers=...)`` (or
    a :class:`~repro.policy.PolicySpec`) instead.
    """
    warnings.warn(
        "make_scheduler() is deprecated; use repro.policy.build_policy("
        "'scheduler', name, num_workers=...) instead",
        DeprecationWarning, stacklevel=2)
    try:
        return build_policy("scheduler", name, num_workers=num_workers)
    except ValueError as exc:
        if "unknown scheduler policy" in str(exc):
            # Preserve the pre-registry message shape for existing callers.
            raise ValueError(
                f"unknown scheduler {name!r}; "
                f"choose from {policy_names('scheduler')}") from None
        raise


__all__ = [
    "Scheduler",
    "WorkItem",
    "StaticInterKernelScheduler",
    "DynamicInterKernelScheduler",
    "InOrderIntraKernelScheduler",
    "OutOfOrderIntraKernelScheduler",
    "SCHEDULER_CLASSES",
    "make_scheduler",
]
