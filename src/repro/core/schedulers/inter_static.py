"""Static inter-kernel scheduling (Section 4.1, Figure 5a/b).

Every incoming kernel is statically bound to one worker LWP based on its
application number (``app_id % num_workers``).  Each bound worker executes
its kernels from beginning to end, one after another, as single instruction
streams.  Simple to implement, needs no further host communication — but
load imbalance leaves LWPs idle whenever the per-application kernel loads
differ, which is exactly the weakness the paper's evaluation exposes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from ...policy import register_policy
from ..kernel import Kernel
from .base import Scheduler, WorkItem


@register_policy("scheduler")
class StaticInterKernelScheduler(Scheduler):
    """``InterSt`` — kernels pinned to LWPs by application number."""

    name = "InterSt"
    dispatch_overhead_s = 1e-6

    def __init__(self, num_workers: int):
        super().__init__(num_workers)
        self._queues: Dict[int, Deque[Kernel]] = {
            w: deque() for w in range(num_workers)
        }

    def _on_offload(self, kernel: Kernel) -> None:
        worker = kernel.app_id % self.num_workers
        self._queues[worker].append(kernel)

    def next_work(self, worker_index: int) -> Optional[WorkItem]:
        queue = self._queues.get(worker_index % self.num_workers)
        if not queue:
            return None
        kernel = queue.popleft()
        chain = self.chain.chain_for_kernel(kernel)
        return self.whole_kernel_item(chain)

    def pending_for_worker(self, worker_index: int) -> int:
        """Kernels still waiting in ``worker_index``'s private queue."""
        return len(self._queues.get(worker_index % self.num_workers, ()))
