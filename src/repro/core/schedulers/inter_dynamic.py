"""Dynamic inter-kernel scheduling (Section 4.1, Figure 5c).

Flashvisor keeps a single queue of offloaded kernels and hands the next one
to whichever worker LWP reports itself free (workers signal completion
through the hardware message queue, so Flashvisor always knows who is
idle).  This keeps all LWPs busy as long as enough kernel execution
requests are pending, which makes it the best policy for homogeneous
workloads — but a single "straggler" kernel still bounds the makespan
because a kernel never spans more than one LWP.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ...policy import register_policy
from ..kernel import Kernel
from .base import Scheduler, WorkItem


@register_policy("scheduler")
class DynamicInterKernelScheduler(Scheduler):
    """``InterDy`` — first-free-worker gets the next queued kernel."""

    name = "InterDy"
    dispatch_overhead_s = 2e-6

    def __init__(self, num_workers: int):
        super().__init__(num_workers)
        self._ready: Deque[Kernel] = deque()
        self.dispatches = 0

    def _on_offload(self, kernel: Kernel) -> None:
        self._ready.append(kernel)

    def next_work(self, worker_index: int) -> Optional[WorkItem]:
        if not self._ready:
            return None
        kernel = self._ready.popleft()
        self.dispatches += 1
        chain = self.chain.chain_for_kernel(kernel)
        return self.whole_kernel_item(chain)

    @property
    def queued_kernels(self) -> int:
        return len(self._ready)
