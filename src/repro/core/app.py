"""Applications: named groups of kernels offloaded together.

Section 3.2 / Figure 4b: a host can offload multiple kernels belonging to
different applications; FlashAbacus schedules them all internally.  An
:class:`Application` here is a factory that expands a workload description
into concrete :class:`~repro.core.kernel.Kernel` instances (one per
"instance" in the paper's evaluation: 6 per kernel for homogeneous runs,
4 per kernel for the heterogeneous mixes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from .kernel import Kernel


KernelFactory = Callable[[int, int], Kernel]


@dataclass
class Application:
    """A user application comprising one or more kernel factories."""

    name: str
    app_id: int
    kernel_factories: List[KernelFactory] = field(default_factory=list)

    def instantiate(self, instances: int = 1) -> List[Kernel]:
        """Create ``instances`` copies of every kernel of this application."""
        if instances < 1:
            raise ValueError("instances must be >= 1")
        kernels: List[Kernel] = []
        for instance in range(instances):
            for factory in self.kernel_factories:
                kernel = factory(self.app_id, instance)
                kernels.append(kernel)
        return kernels

    @property
    def kernel_count(self) -> int:
        return len(self.kernel_factories)


@dataclass
class OffloadBatch:
    """A set of kernels submitted to the accelerator in one offload burst."""

    kernels: List[Kernel]
    submitted_at: float = 0.0

    @property
    def total_input_bytes(self) -> int:
        return sum(k.input_bytes for k in self.kernels)

    @property
    def total_output_bytes(self) -> int:
        return sum(k.output_bytes for k in self.kernels)

    @property
    def total_instructions(self) -> float:
        return sum(k.instructions for k in self.kernels)

    @property
    def app_ids(self) -> List[int]:
        return sorted({k.app_id for k in self.kernels})

    def __len__(self) -> int:
        return len(self.kernels)
