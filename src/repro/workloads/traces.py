"""Arrival-trace helpers for the serving subsystem.

Serving scenarios can replay explicit request traces
(:class:`repro.serve.arrivals.TraceArrivals`).  This module provides the
trace file format (JSON lines: one ``{"arrival_s", "tenant", "workload"}``
object per line), writers/loaders, and a deterministic synthetic trace
builder useful for tests and demos — a reproducible stand-in for a
production request log.
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from .characteristics import lookup

TraceEvent = Tuple[float, str, str]     # (arrival_s, tenant, workload)


def write_trace(path: Union[str, Path],
                events: Sequence[TraceEvent]) -> None:
    """Write events as a JSON-lines trace file (time-sorted)."""
    lines = [json.dumps({"arrival_s": arrival, "tenant": tenant,
                         "workload": workload})
             for arrival, tenant, workload
             in sorted(events, key=lambda e: e[0])]
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))


def load_trace(path: Union[str, Path]) -> List[TraceEvent]:
    """Load a JSON-lines trace file back into event triples."""
    events: List[TraceEvent] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        events.append((float(record["arrival_s"]), str(record["tenant"]),
                       str(record["workload"])))
    return sorted(events, key=lambda e: e[0])


def synthetic_trace(duration_s: float, rate_rps: float,
                    tenants: Sequence[str] = ("tenant-a", "tenant-b"),
                    workloads: Sequence[str] = ("ATAX", "MVT"),
                    seed: int = 1) -> List[TraceEvent]:
    """A deterministic Poisson-like trace over the given pools.

    Unlike the live arrival processes this is a plain event list, so it
    can be saved with :func:`write_trace` and replayed bit-identically by
    any scenario that names the same tenants.
    """
    if duration_s <= 0 or rate_rps <= 0:
        raise ValueError("duration_s and rate_rps must be positive")
    if not tenants or not workloads:
        raise ValueError("tenants and workloads must be non-empty")
    for name in workloads:
        lookup(name)            # fail fast on unknown Table-2 names
    rng = random.Random(seed)
    events: List[TraceEvent] = []
    t = rng.expovariate(rate_rps)
    while t < duration_s:
        events.append((t, tenants[rng.randrange(len(tenants))],
                       workloads[rng.randrange(len(workloads))]))
        t += rng.expovariate(rate_rps)
    return events
