"""Heterogeneous workload mixes MX1..MX14 (right side of Table 2).

Each mix combines six PolyBench applications; the evaluation offloads four
instances of every kernel in the mix (24 kernels per execution).  The
compositions below transcribe the bullet matrix on the right-hand side of
Table 2.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.app import Application
from ..core.kernel import Kernel
from .polybench import DEFAULT_SCREENS_PER_MICROBLOCK, polybench_application

#: Which applications participate in each mix (Table 2, columns 1-14).
MIX_COMPOSITIONS: Dict[str, List[str]] = {
    "MX1": ["ATAX", "BICG", "2DCON", "MVT", "ADI", "FDTD"],
    "MX2": ["ATAX", "MVT", "ADI", "GESUM", "SYRK", "GEMM"],
    "MX3": ["BICG", "MVT", "FDTD", "GESUM", "3MM", "2MM"],
    "MX4": ["2DCON", "MVT", "ADI", "SYRK", "COVAR", "GEMM"],
    "MX5": ["ATAX", "BICG", "ADI", "FDTD", "GESUM", "CORR"],
    "MX6": ["2DCON", "MVT", "GESUM", "SYRK", "3MM", "SYR2K"],
    "MX7": ["MVT", "ADI", "FDTD", "COVAR", "GEMM", "2MM"],
    "MX8": ["ATAX", "2DCON", "MVT", "ADI", "GESUM", "COVAR"],
    "MX9": ["BICG", "MVT", "FDTD", "SYRK", "GEMM", "SYR2K"],
    "MX10": ["2DCON", "ADI", "GESUM", "3MM", "2MM", "CORR"],
    "MX11": ["ATAX", "MVT", "FDTD", "COVAR", "GEMM", "2MM"],
    "MX12": ["BICG", "ADI", "GESUM", "SYRK", "2MM", "CORR"],
    "MX13": ["2DCON", "MVT", "FDTD", "3MM", "GEMM", "SYR2K"],
    "MX14": ["ATAX", "BICG", "ADI", "COVAR", "2MM", "CORR"],
}

MIX_ORDER: List[str] = [f"MX{i}" for i in range(1, 15)]

#: Instances per kernel used for every heterogeneous execution (Section 5.1).
INSTANCES_PER_KERNEL = 4


def mix_applications(mix_name: str,
                     screens_per_microblock: int = DEFAULT_SCREENS_PER_MICROBLOCK,
                     input_scale: float = 1.0) -> List[Application]:
    """The applications composing ``mix_name``, with distinct app ids."""
    try:
        names = MIX_COMPOSITIONS[mix_name]
    except KeyError:
        raise KeyError(f"unknown mix {mix_name!r}; choose from {MIX_ORDER}") \
            from None
    return [polybench_application(name, app_id=i,
                                  screens_per_microblock=screens_per_microblock,
                                  input_scale=input_scale)
            for i, name in enumerate(names)]


def heterogeneous_workload(mix_name: str,
                           instances_per_kernel: int = INSTANCES_PER_KERNEL,
                           screens_per_microblock: int = DEFAULT_SCREENS_PER_MICROBLOCK,
                           input_scale: float = 1.0) -> List[Kernel]:
    """All kernel instances of one mix, interleaved across applications.

    Kernels are interleaved (app0 inst0, app1 inst0, ..., app0 inst1, ...)
    so that dynamic schedulers see a realistic arrival mixture rather than
    long runs of identical kernels.
    """
    apps = mix_applications(mix_name, screens_per_microblock, input_scale)
    per_app = [app.instantiate(instances_per_kernel) for app in apps]
    kernels: List[Kernel] = []
    for round_index in range(instances_per_kernel):
        for app_kernels in per_app:
            kernels.append(app_kernels[round_index])
    return kernels


def all_mix_names() -> List[str]:
    return list(MIX_ORDER)
