"""Synthetic workload generator.

Used by the motivation study (Fig. 3b/3c): kernels with a controlled
fraction of serial instructions and a configurable number of parallel
screens, so the Amdahl-style scalability of the multi-kernel execution
model can be measured directly.  Also provides a deterministic pseudo-random
mixed-workload generator for stress tests.
"""

from __future__ import annotations

import random
from typing import List

from ..core.kernel import Kernel, Microblock, Screen
from .characteristics import WorkloadCharacteristics


def synthetic_kernel(name: str, total_instructions: float, input_bytes: int,
                     serial_fraction: float, parallel_screens: int,
                     ld_st_ratio: float = 0.3, output_bytes: int = 0,
                     app_id: int = 0, instance: int = 0) -> Kernel:
    """A kernel with ``serial_fraction`` of its work in a serial microblock.

    The kernel has (up to) two microblocks: a parallel one carrying
    ``1 - serial_fraction`` of the instructions split into
    ``parallel_screens`` screens, followed by a serial one carrying the
    rest.  Input is read by the first microblock, output written by the
    last, as in the real workloads.
    """
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial_fraction must be in [0, 1]")
    if parallel_screens < 1:
        raise ValueError("parallel_screens must be >= 1")
    if total_instructions < 0 or input_bytes < 0 or output_bytes < 0:
        raise ValueError("sizes must be non-negative")

    serial_instr = total_instructions * serial_fraction
    parallel_instr = total_instructions - serial_instr
    microblocks: List[Microblock] = []
    screen_id = 0

    if serial_fraction < 1.0:
        screens = []
        for s in range(parallel_screens):
            screens.append(Screen(
                screen_id=screen_id,
                instructions=parallel_instr / parallel_screens,
                input_bytes=input_bytes // parallel_screens
                + (input_bytes % parallel_screens if s == 0 else 0),
                output_bytes=0,
                ld_st_ratio=ld_st_ratio,
            ))
            screen_id += 1
        microblocks.append(Microblock(index=0, screens=screens, serial=False,
                                      reads_flash=input_bytes > 0,
                                      writes_flash=False))
    if serial_fraction > 0.0 or not microblocks:
        index = len(microblocks)
        microblocks.append(Microblock(
            index=index,
            screens=[Screen(screen_id=screen_id, instructions=serial_instr,
                            input_bytes=input_bytes if not microblocks else 0,
                            output_bytes=output_bytes,
                            ld_st_ratio=ld_st_ratio)],
            serial=True,
            reads_flash=not microblocks and input_bytes > 0,
            writes_flash=output_bytes > 0,
        ))
    else:
        # Fully parallel kernel: let the parallel microblock write output.
        last = microblocks[-1]
        if output_bytes > 0:
            last.screens[0].output_bytes = output_bytes
            microblocks[-1] = Microblock(index=last.index, screens=last.screens,
                                         serial=False,
                                         reads_flash=last.reads_flash,
                                         writes_flash=True)
    return Kernel(name=name, microblocks=microblocks, app_id=app_id,
                  instance=instance)


def serial_sweep_kernels(serial_fraction: float, instances: int,
                         parallel_screens: int,
                         instructions_per_instance: float = 8e9,
                         input_bytes: int = 64 * 1024 * 1024,
                         ld_st_ratio: float = 0.3) -> List[Kernel]:
    """Kernels for one point of the Fig. 3b/3c serial-fraction sweep."""
    return [synthetic_kernel(
        name=f"synthetic-{int(serial_fraction * 100)}pct",
        total_instructions=instructions_per_instance,
        input_bytes=input_bytes,
        serial_fraction=serial_fraction,
        parallel_screens=parallel_screens,
        ld_st_ratio=ld_st_ratio,
        app_id=0, instance=i)
        for i in range(instances)]


def random_characteristics(seed: int, count: int,
                           suite: str = "synthetic") -> List[WorkloadCharacteristics]:
    """Deterministic pseudo-random workload descriptors for stress tests."""
    rng = random.Random(seed)
    out = []
    for i in range(count):
        microblocks = rng.randint(1, 4)
        serial = rng.randint(0, max(0, microblocks - 1))
        out.append(WorkloadCharacteristics(
            name=f"rand{i}",
            description="randomly generated workload",
            microblocks=microblocks,
            serial_microblocks=serial,
            input_mb=rng.choice([64, 128, 256, 512]),
            ld_st_ratio_pct=rng.uniform(20.0, 55.0),
            bytes_per_kilo_instruction=rng.uniform(2.0, 80.0),
            suite=suite,
        ))
    return out
