"""PolyBench kernel builders (the 14 workloads of Table 2).

Each builder converts the descriptor-level characteristics of
:mod:`repro.workloads.characteristics` into a concrete
:class:`~repro.core.kernel.Kernel`: microblocks in order, serial
microblocks as single screens, parallel microblocks split into a number of
screens chosen by the caller (typically the number of worker LWPs).
"""

from __future__ import annotations

from typing import List

from ..core.app import Application
from ..core.kernel import Kernel, build_kernel
from .characteristics import (
    POLYBENCH,
    POLYBENCH_ORDER,
    WorkloadCharacteristics,
    lookup,
)

DEFAULT_SCREENS_PER_MICROBLOCK = 6


def build_workload_kernel(characteristics: WorkloadCharacteristics,
                          app_id: int = 0, instance: int = 0,
                          screens_per_microblock: int = DEFAULT_SCREENS_PER_MICROBLOCK,
                          input_scale: float = 1.0) -> Kernel:
    """Build one kernel instance from a Table 2 row.

    ``input_scale`` shrinks (or grows) the per-instance data set, which the
    tests use to keep simulations fast while preserving every ratio that
    drives the scheduling behaviour.
    """
    if input_scale <= 0:
        raise ValueError("input_scale must be positive")
    input_bytes = int(characteristics.input_bytes * input_scale)
    output_bytes = int(characteristics.output_bytes * input_scale)
    instructions = characteristics.instructions * input_scale
    return build_kernel(
        name=characteristics.name,
        total_instructions=instructions,
        input_bytes=input_bytes,
        output_bytes=output_bytes,
        microblock_count=characteristics.microblocks,
        serial_microblocks=characteristics.serial_microblocks,
        screens_per_microblock=screens_per_microblock,
        ld_st_ratio=characteristics.ld_st_ratio,
        app_id=app_id,
        instance=instance,
    )


def polybench_application(name: str, app_id: int = 0,
                          screens_per_microblock: int = DEFAULT_SCREENS_PER_MICROBLOCK,
                          input_scale: float = 1.0) -> Application:
    """Wrap one PolyBench workload as an :class:`Application` factory."""
    characteristics = lookup(name)

    def factory(app: int, instance: int) -> Kernel:
        return build_workload_kernel(characteristics, app_id=app,
                                     instance=instance,
                                     screens_per_microblock=screens_per_microblock,
                                     input_scale=input_scale)

    return Application(name=characteristics.name, app_id=app_id,
                       kernel_factories=[factory])


def homogeneous_workload(name: str, instances: int = 6,
                         screens_per_microblock: int = DEFAULT_SCREENS_PER_MICROBLOCK,
                         input_scale: float = 1.0) -> List[Kernel]:
    """The paper's homogeneous setup: N instances of one kernel (Fig. 10a)."""
    app = polybench_application(name, app_id=0,
                                screens_per_microblock=screens_per_microblock,
                                input_scale=input_scale)
    return app.instantiate(instances)


def all_polybench_names() -> List[str]:
    return list(POLYBENCH_ORDER)


def polybench_characteristics(name: str) -> WorkloadCharacteristics:
    return POLYBENCH[name.upper()] if name.upper() in POLYBENCH else lookup(name)
