"""Benchmark workloads: PolyBench (Table 2), Rodinia/Mars, mixes, synthetic."""

from .characteristics import (
    COMPUTE_INTENSIVE,
    DATA_INTENSIVE,
    MOTIVATION_ORDER,
    POLYBENCH,
    POLYBENCH_ORDER,
    REALWORLD,
    REALWORLD_ORDER,
    WorkloadCharacteristics,
    lookup,
    table2_rows,
)
from .polybench import (
    DEFAULT_SCREENS_PER_MICROBLOCK,
    all_polybench_names,
    build_workload_kernel,
    homogeneous_workload,
    polybench_application,
)
from .rodinia import all_realworld_names, realworld_application, realworld_workload
from .mixes import (
    INSTANCES_PER_KERNEL,
    MIX_COMPOSITIONS,
    MIX_ORDER,
    all_mix_names,
    heterogeneous_workload,
    mix_applications,
)
from .generator import random_characteristics, serial_sweep_kernels, synthetic_kernel
from .traces import TraceEvent, load_trace, synthetic_trace, write_trace

__all__ = [
    "COMPUTE_INTENSIVE",
    "DATA_INTENSIVE",
    "MOTIVATION_ORDER",
    "POLYBENCH",
    "POLYBENCH_ORDER",
    "REALWORLD",
    "REALWORLD_ORDER",
    "WorkloadCharacteristics",
    "lookup",
    "table2_rows",
    "DEFAULT_SCREENS_PER_MICROBLOCK",
    "all_polybench_names",
    "build_workload_kernel",
    "homogeneous_workload",
    "polybench_application",
    "all_realworld_names",
    "realworld_application",
    "realworld_workload",
    "INSTANCES_PER_KERNEL",
    "MIX_COMPOSITIONS",
    "MIX_ORDER",
    "all_mix_names",
    "heterogeneous_workload",
    "mix_applications",
    "random_characteristics",
    "serial_sweep_kernels",
    "synthetic_kernel",
    "TraceEvent",
    "load_trace",
    "synthetic_trace",
    "write_trace",
]
