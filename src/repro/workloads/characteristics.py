"""Workload characteristics (Table 2 of the paper, plus Section 5.6).

Each entry describes one benchmark kernel with the aggregate numbers the
paper reports: how many microblocks it has, how many of them are serial
(no screens), the input size per instance, the load/store instruction
ratio, and the computation complexity in bytes processed per thousand
instructions (B/KI).  The instruction count of a kernel instance is derived
from ``input_mb`` and ``bytes_per_kilo_instruction``:

    instructions = input_bytes * 1000 / B_per_KI

so data-intensive kernels (high B/KI) execute few instructions per byte
while compute-intensive kernels (low B/KI) execute many.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

MB = 1024 * 1024


@dataclass(frozen=True)
class WorkloadCharacteristics:
    """One row of Table 2 (or one of the Section 5.6 applications)."""

    name: str
    description: str
    microblocks: int
    serial_microblocks: int
    input_mb: float
    ld_st_ratio_pct: float
    bytes_per_kilo_instruction: float
    suite: str = "polybench"
    output_fraction: float = 0.1

    @property
    def input_bytes(self) -> int:
        return int(self.input_mb * MB)

    @property
    def output_bytes(self) -> int:
        return int(self.input_bytes * self.output_fraction)

    @property
    def instructions(self) -> float:
        """Total dynamic instructions for one instance of this kernel."""
        return self.input_bytes * 1000.0 / self.bytes_per_kilo_instruction

    @property
    def ld_st_ratio(self) -> float:
        return self.ld_st_ratio_pct / 100.0

    @property
    def is_data_intensive(self) -> bool:
        """The paper groups workloads by B/KI; > 20 means data-intensive."""
        return self.bytes_per_kilo_instruction > 20.0


# --------------------------------------------------------------------------- #
# Table 2: the 14 PolyBench kernels                                            #
# --------------------------------------------------------------------------- #
POLYBENCH: Dict[str, WorkloadCharacteristics] = {
    "ATAX": WorkloadCharacteristics(
        "ATAX", "Matrix Transpose & Multiplication", 2, 1, 640, 45.61, 68.86),
    "BICG": WorkloadCharacteristics(
        "BICG", "BiCG Sub Kernel", 2, 1, 640, 46.0, 72.3),
    "2DCON": WorkloadCharacteristics(
        "2DCON", "2-Dimension Convolution", 1, 0, 640, 23.96, 35.59),
    "MVT": WorkloadCharacteristics(
        "MVT", "Matrix Vector Product & Transpose", 1, 0, 640, 45.1, 72.05),
    "ADI": WorkloadCharacteristics(
        "ADI", "Alternating Direction Implicit solver", 3, 1, 1920, 23.96, 35.59),
    "FDTD": WorkloadCharacteristics(
        "FDTD", "2-D Finite Difference Time Domain", 3, 1, 1920, 27.27, 38.52),
    "GESUM": WorkloadCharacteristics(
        "GESUM", "Scalar, Vector & Matrix Multiplication", 1, 0, 640, 48.08, 72.13),
    "SYRK": WorkloadCharacteristics(
        "SYRK", "Symmetric rank-k operations", 1, 0, 1280, 28.21, 5.29),
    "3MM": WorkloadCharacteristics(
        "3MM", "3-Matrix Multiplications", 3, 1, 2560, 33.68, 2.48),
    "COVAR": WorkloadCharacteristics(
        "COVAR", "Covariance Computation", 3, 1, 640, 34.33, 2.86),
    "GEMM": WorkloadCharacteristics(
        "GEMM", "Matrix-Multiply", 1, 0, 192, 30.77, 5.29),
    "2MM": WorkloadCharacteristics(
        "2MM", "2-Matrix Multiplications", 2, 1, 2560, 33.33, 3.76),
    "SYR2K": WorkloadCharacteristics(
        "SYR2K", "Symmetric rank-2k operations", 1, 0, 1280, 30.19, 1.85),
    "CORR": WorkloadCharacteristics(
        "CORR", "Correlation Computation", 4, 1, 640, 33.04, 2.79),
}

#: Order used by the paper's figures (data-intensive first).
POLYBENCH_ORDER: List[str] = [
    "ATAX", "BICG", "2DCON", "MVT", "GESUM", "ADI", "FDTD",
    "SYRK", "3MM", "COVAR", "GEMM", "2MM", "SYR2K", "CORR",
]

#: The subset used in the Fig. 3d/3e motivation breakdowns.
MOTIVATION_ORDER: List[str] = [
    "ATAX", "BICG", "2DCON", "MVT", "SYRK", "3MM", "GESUM",
    "ADI", "COVAR", "FDTD",
]

DATA_INTENSIVE: List[str] = [n for n in POLYBENCH_ORDER
                             if POLYBENCH[n].is_data_intensive]
COMPUTE_INTENSIVE: List[str] = [n for n in POLYBENCH_ORDER
                                if not POLYBENCH[n].is_data_intensive]


# --------------------------------------------------------------------------- #
# Section 5.6: graph / bigdata applications (Rodinia + Mars)                   #
# --------------------------------------------------------------------------- #
REALWORLD: Dict[str, WorkloadCharacteristics] = {
    "bfs": WorkloadCharacteristics(
        "bfs", "Graph breadth-first traversal", 2, 1, 1024, 52.0, 48.0,
        suite="rodinia"),
    "wc": WorkloadCharacteristics(
        "wc", "MapReduce wordcount", 2, 1, 1536, 48.0, 55.0, suite="mars"),
    "nn": WorkloadCharacteristics(
        "nn", "K-nearest neighbours", 2, 1, 1024, 44.0, 42.0, suite="rodinia"),
    "nw": WorkloadCharacteristics(
        "nw", "Needleman-Wunsch DNA sequence alignment", 1, 0, 768, 40.0, 30.0,
        suite="rodinia"),
    "path": WorkloadCharacteristics(
        "path", "Pathfinder grid traversal", 1, 0, 768, 38.0, 34.0,
        suite="rodinia"),
}

REALWORLD_ORDER: List[str] = ["bfs", "wc", "nn", "nw", "path"]


def lookup(name: str) -> WorkloadCharacteristics:
    """Find a workload in either suite by name (case-insensitive)."""
    for table in (POLYBENCH, REALWORLD):
        for key, value in table.items():
            if key.lower() == name.lower():
                return value
    raise KeyError(f"unknown workload: {name!r}")


def table2_rows() -> List[Tuple]:
    """Render Table 2's per-kernel columns for reports and benchmarks."""
    rows = []
    for name in POLYBENCH_ORDER:
        wc = POLYBENCH[name]
        rows.append((wc.name, wc.description, wc.microblocks,
                     wc.serial_microblocks, int(wc.input_mb),
                     wc.ld_st_ratio_pct, wc.bytes_per_kilo_instruction))
    return rows
