"""Graph and big-data kernels used in Section 5.6 (Fig. 16).

The paper selects five representative data-intensive applications from the
Rodinia and Mars suites: K-nearest neighbours (nn), breadth-first search
(bfs), Needleman-Wunsch sequence alignment (nw), pathfinder grid traversal
(path) and MapReduce wordcount (wc).  They are descriptor-level kernels
built the same way as the PolyBench set, using the characteristics in
:data:`repro.workloads.characteristics.REALWORLD`.
"""

from __future__ import annotations

from typing import List

from ..core.app import Application
from ..core.kernel import Kernel
from .characteristics import REALWORLD, REALWORLD_ORDER
from .polybench import DEFAULT_SCREENS_PER_MICROBLOCK, build_workload_kernel


def realworld_application(name: str, app_id: int = 0,
                          screens_per_microblock: int = DEFAULT_SCREENS_PER_MICROBLOCK,
                          input_scale: float = 1.0) -> Application:
    """Wrap one graph/bigdata workload as an :class:`Application`."""
    try:
        characteristics = REALWORLD[name]
    except KeyError:
        raise KeyError(f"unknown graph/bigdata workload: {name!r}; "
                       f"choose from {REALWORLD_ORDER}") from None

    def factory(app: int, instance: int) -> Kernel:
        return build_workload_kernel(characteristics, app_id=app,
                                     instance=instance,
                                     screens_per_microblock=screens_per_microblock,
                                     input_scale=input_scale)

    return Application(name=name, app_id=app_id, kernel_factories=[factory])


def realworld_workload(name: str, instances: int = 6,
                       screens_per_microblock: int = DEFAULT_SCREENS_PER_MICROBLOCK,
                       input_scale: float = 1.0) -> List[Kernel]:
    """N instances of one graph/bigdata kernel (the Fig. 16 setup)."""
    app = realworld_application(name, app_id=0,
                                screens_per_microblock=screens_per_microblock,
                                input_scale=input_scale)
    return app.instantiate(instances)


def all_realworld_names() -> List[str]:
    return list(REALWORLD_ORDER)
