"""Serving scenario description and the session engine that runs it.

A :class:`ServingScenario` is the declarative, serializable description of
one open-loop serving run: which arrival process at which offered load,
for how long, over which tenants and Table-2 kernels, under which
admission policy.  Like :class:`~repro.platform.PlatformConfig` it
round-trips losslessly through plain dicts, so the experiment orchestrator
can key its result cache on the scenario content.

:class:`ServingSession` executes a scenario on one system (a FlashAbacus
scheduler or the ``SIMD`` baseline): it builds the platform, generates the
arrival trace, schedules the arrivals into the front-end, drives the
simulation until every request has settled, and assembles a
:class:`~repro.serve.report.ServingReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..baseline.system import BaselineSystem
from ..core.accelerator import FlashAbacusAccelerator
from ..core.kernel import Kernel
from ..obs import MetricsBus, ObsConfig, Tracer, wire_serving_metrics
from ..platform.config import PlatformConfig
from ..policy import (
    PolicySpec,
    build_policy,
    learned_snapshot,
    policy_class,
    wire_feedback,
)
from ..workloads.characteristics import lookup
from ..workloads.polybench import (
    DEFAULT_SCREENS_PER_MICROBLOCK,
    build_workload_kernel,
)
from .arrivals import (
    DEFAULT_WORKLOAD_POOL,
    ArrivalProcess,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TenantSpec,
    TraceArrivals,
)
from .backends import AcceleratorBackend, BaselineBackend, ServingBackend
from .frontend import ServingFrontend
from .report import ServingReport
from .request import Request
from .slo import REPORT_PERCENTILES, SLOTracker, TenantAccount

ARRIVAL_PROCESSES = ("poisson", "mmpp", "diurnal", "trace")


def make_kernel_factory(scenario: "ServingScenario",
                        config: PlatformConfig):
    """Request -> Kernel builder shared by single-device and cluster runs.

    Tenant identity maps to the kernel's ``app_id`` (input regions are
    shared per application) and the request id to the instance number, so
    every request builds a distinct kernel deterministically.
    """
    tenant_index = {t.name: i for i, t in enumerate(scenario.tenants)}
    input_scale = config.input_scale

    def build(request: Request) -> Kernel:
        """Build the deterministic kernel for one request."""
        characteristics = lookup(request.workload)
        return build_workload_kernel(
            characteristics,
            app_id=tenant_index[request.tenant],
            instance=request.request_id,
            screens_per_microblock=DEFAULT_SCREENS_PER_MICROBLOCK,
            input_scale=input_scale)

    return build


def build_serving_backend(scenario: "ServingScenario",
                          config: PlatformConfig,
                          env=None) -> ServingBackend:
    """Build the execution backend for one device.

    ``env=None`` gives the device its own :class:`Environment` (the
    single-device serving path); the cluster layer passes one shared
    environment so all devices advance on the same virtual clock.
    """
    factory = make_kernel_factory(scenario, config)
    if config.is_baseline:
        return BaselineBackend(BaselineSystem(env=env, config=config),
                               factory)
    return AcceleratorBackend(
        FlashAbacusAccelerator(env=env, config=config), factory)


def arrival_driver(env, sink, requests: List[Request]):
    """Process generator: feed a time-sorted arrival trace into ``sink``.

    ``sink`` is anything with ``submit(request)`` and ``close()`` — the
    single-device front-end or the cluster layer's sharding dispatcher.
    """
    for request in requests:
        delay = request.arrival_s - env.now
        if delay > 0:
            yield env.timeout(delay)
        sink.submit(request)
    sink.close()


def latency_summary(account: TenantAccount) -> Dict[str, Optional[float]]:
    """The latency dict every serving-style report carries."""
    latency: Dict[str, Optional[float]] = {}
    for pct in REPORT_PERCENTILES:
        latency[f"p{pct:g}_s"] = account.percentile(pct)
    latency["mean_s"] = (account.latency.mean
                         if account.latency.count else None)
    latency["max_s"] = (account.latency.max
                        if account.latency.count else None)
    return latency


def assemble_serving_report(scenario: "ServingScenario", system: str,
                            tracker: SLOTracker, makespan_s: float,
                            energy_j: float,
                            scheduler_stats=None) -> ServingReport:
    """Roll one tracker's accounting into a :class:`ServingReport`.

    Shared by the single-device session and the cluster layer's
    per-device reports, so the two can never drift field-wise.
    """
    aggregate = tracker.aggregate
    duration = scenario.duration_s
    return ServingReport(
        system=system,
        workload=scenario.label,
        duration_s=duration,
        makespan_s=makespan_s,
        offered=aggregate.offered,
        admitted=aggregate.admitted,
        rejected=aggregate.rejected,
        completed=aggregate.completed,
        slo_violations=aggregate.slo_violations,
        offered_rps=aggregate.offered / duration,
        goodput_rps=aggregate.goodput_rps(duration),
        latency=latency_summary(aggregate),
        per_tenant={tenant: tracker.account(tenant).as_dict(duration)
                    for tenant in tracker.tenants()},
        energy_j=energy_j,
        scheduler_stats=dict(scheduler_stats) if scheduler_stats else {},
    )


def drive_until_settled(env, tracker: SLOTracker, expected: int,
                        duration_s: float, check_health,
                        label: str = "serving run") -> None:
    """Step ``env`` until ``expected`` requests settled, with a watchdog.

    An exhausted event queue can never happen while an accelerator
    backend is up (Storengine polls perpetually until stopped), so
    progress is what is watched — if no request settles for a generous
    simulated span, the run is wedged.  ``check_health`` runs after
    every step to surface crashes from backend-owned processes.
    """
    stall_horizon = max(60.0, 10.0 * duration_s)
    last_settled = -1
    last_progress = env.now
    while tracker.settled < expected:
        if env.peek() == float("inf"):
            raise RuntimeError(
                f"{label} stalled: {tracker.settled}/{expected} "
                f"requests settled at t={env.now:.3f}s")
        if tracker.settled != last_settled:
            last_settled = tracker.settled
            last_progress = env.now
        elif env.now - last_progress > stall_horizon:
            raise RuntimeError(
                f"{label} stalled: no request settled for "
                f"{stall_horizon:.0f} simulated seconds "
                f"({tracker.settled}/{expected} settled at "
                f"t={env.now:.3f}s)")
        env.step()
        check_health()

#: Default tenant set: two equal-share tenants with the same SLO, so the
#: multi-tenant path is exercised even by one-line experiments.
DEFAULT_TENANTS: Tuple[TenantSpec, ...] = (
    TenantSpec("tenant-a", 1.0, 1.0),
    TenantSpec("tenant-b", 1.0, 1.0),
)


@dataclass(frozen=True)
class ServingScenario:
    """Declarative description of one open-loop serving run.

    ``offered_rps`` is the base rate of the arrival process (the peak rate
    for ``diurnal``; ignored for ``trace``).  All fields are hashable
    plain data so scenarios can key the experiment registry/cache.

    Admission and dispatch are policy domains of the unified registry
    (:mod:`repro.policy`).  The legacy string knobs (``admission`` +
    ``max_queue_depth``) still describe the common cases and keep their
    serialized form; ``admission_spec`` / ``dispatch_spec`` select any
    registered policy with arbitrary params (a set spec wins over the
    string knobs, and both fields are omitted from :meth:`to_dict` when
    unset so pre-policy-layer scenarios keep their cache keys).
    """

    process: str = "poisson"
    offered_rps: float = 20.0
    duration_s: float = 10.0
    seed: int = 1
    workloads: Tuple[str, ...] = DEFAULT_WORKLOAD_POOL
    tenants: Tuple[TenantSpec, ...] = DEFAULT_TENANTS
    admission: str = "queue_depth"
    max_queue_depth: int = 64
    # MMPP (bursty) parameters
    mmpp_burst_factor: float = 4.0
    mmpp_normal_dwell_s: float = 2.0
    mmpp_burst_dwell_s: float = 0.5
    # Diurnal-ramp parameters
    diurnal_period_s: float = 60.0
    diurnal_floor: float = 0.2
    # Trace replay: (arrival_s, tenant, workload) triples
    trace_events: Tuple[Tuple[float, str, str], ...] = ()
    # SLO accounting
    reservoir_capacity: int = 4096
    # Policy-layer selections (None = the legacy knobs / round-robin)
    admission_spec: Optional[PolicySpec] = None
    dispatch_spec: Optional[PolicySpec] = None

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ValueError(f"unknown arrival process {self.process!r}; "
                             f"choose from {ARRIVAL_PROCESSES}")
        if self.process != "trace" and self.offered_rps <= 0:
            raise ValueError("offered_rps must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not self.tenants:
            raise ValueError("at least one tenant is required")
        if self.process == "trace" and not self.trace_events:
            raise ValueError("trace scenarios need trace_events")
        # Coerce and eagerly validate the policy selections (the legacy
        # string knob included): a mistyped name should fail at
        # construction, not minutes into a sweep.
        policy_class("admission", self.admission)
        if self.admission_spec is not None:
            spec = PolicySpec.coerce(self.admission_spec)
            object.__setattr__(self, "admission_spec", spec)
            policy_class("admission", spec.name)
            # The spec names the policy; the legacy string field mirrors
            # it so serialized scenarios report the policy actually run.
            object.__setattr__(self, "admission", spec.name)
        if self.dispatch_spec is not None:
            spec = PolicySpec.coerce(self.dispatch_spec)
            object.__setattr__(self, "dispatch_spec", spec)
            policy_class("dispatch", spec.name)

    @property
    def label(self) -> str:
        """Cache/registry identity prefix, e.g. ``serve-poisson-40rps``."""
        return f"serve-{self.process}-{self.offered_rps:g}rps"

    # ------------------------------------------------------------------ #
    # Factories                                                           #
    # ------------------------------------------------------------------ #
    def make_arrivals(self) -> ArrivalProcess:
        """Instantiate the scenario's arrival process."""
        if self.process == "poisson":
            return PoissonArrivals(self.offered_rps, self.tenants,
                                   self.workloads, self.seed)
        if self.process == "mmpp":
            return MMPPArrivals(self.offered_rps, self.tenants,
                                self.workloads, self.seed,
                                burst_factor=self.mmpp_burst_factor,
                                normal_dwell_s=self.mmpp_normal_dwell_s,
                                burst_dwell_s=self.mmpp_burst_dwell_s)
        if self.process == "diurnal":
            return DiurnalArrivals(self.offered_rps, self.tenants,
                                   self.workloads, self.seed,
                                   period_s=self.diurnal_period_s,
                                   floor_fraction=self.diurnal_floor)
        return TraceArrivals(list(self.trace_events), self.tenants,
                             self.seed)

    def effective_admission_spec(self) -> PolicySpec:
        """The admission selection as one policy spec.

        ``admission_spec`` when set; otherwise the legacy string knobs
        folded into an equivalent spec (``queue_depth`` carries
        ``max_queue_depth`` as its depth bound, exactly as before).
        """
        if self.admission_spec is not None:
            return self.admission_spec
        if self.admission == "queue_depth":
            return PolicySpec("queue_depth",
                              {"max_tenant_depth": self.max_queue_depth})
        return PolicySpec(self.admission)

    def make_admission(self):
        """Instantiate the scenario's admission controller.

        The scenario seed is offered as context so learned policies
        derive their exploration RNG from it; static policies do not
        name a ``seed`` param and never see it.
        """
        return build_policy("admission", self.effective_admission_spec(),
                            seed=self.seed)

    def make_dispatch(self):
        """Instantiate the scenario's tenant-dispatch policy.

        ``dispatch_spec`` when set, else round-robin (the pre-policy-layer
        behavior).  The scenario's tenant weights are offered as context
        defaults, so ``weighted_fair`` without an explicit ``weights``
        param follows the traffic shares of the tenant specs; the seed
        context feeds learned policies' exploration RNG.
        """
        spec = self.dispatch_spec if self.dispatch_spec is not None \
            else PolicySpec("round_robin")
        return build_policy(
            "dispatch", spec,
            weights={t.name: t.weight for t in self.tenants},
            seed=self.seed)

    # ------------------------------------------------------------------ #
    # Serialization                                                       #
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Plain-dict (JSON-safe) form; keys the experiment cache."""
        data: Dict[str, object] = {
            "process": self.process,
            "offered_rps": self.offered_rps,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "workloads": list(self.workloads),
            "tenants": [[t.name, t.weight, t.slo_s] for t in self.tenants],
            "admission": self.admission,
            "max_queue_depth": self.max_queue_depth,
            "mmpp_burst_factor": self.mmpp_burst_factor,
            "mmpp_normal_dwell_s": self.mmpp_normal_dwell_s,
            "mmpp_burst_dwell_s": self.mmpp_burst_dwell_s,
            "diurnal_period_s": self.diurnal_period_s,
            "diurnal_floor": self.diurnal_floor,
            "trace_events": [list(e) for e in self.trace_events],
            "reservoir_capacity": self.reservoir_capacity,
        }
        # Emitted only when set, so pre-policy-layer scenarios keep their
        # serialized form (and experiment cache keys) byte-identical.
        if self.admission_spec is not None:
            data["admission_spec"] = self.admission_spec.to_dict()
        if self.dispatch_spec is not None:
            data["dispatch_spec"] = self.dispatch_spec.to_dict()
        if self.effective_admission_spec().name == "deadline":
            # The deadline policy's cold-start window changed behavior in
            # PR 5 (bounded instead of admit-all before the first EWMA
            # sample); re-key exactly these scenarios so a persisted
            # result cache cannot silently serve pre-fix results, while
            # every other scenario keeps its pre-policy-layer key.
            data["admission_behavior_rev"] = 2
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ServingScenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        tenants = tuple(TenantSpec(name, weight, slo)
                        for name, weight, slo in data.get("tenants", []))
        trace = tuple((float(t), str(tenant), str(workload))
                      for t, tenant, workload
                      in data.get("trace_events", []))
        return cls(
            process=str(data.get("process", "poisson")),
            offered_rps=float(data.get("offered_rps", 20.0)),
            duration_s=float(data.get("duration_s", 10.0)),
            seed=int(data.get("seed", 1)),
            workloads=tuple(data.get("workloads", DEFAULT_WORKLOAD_POOL)),
            tenants=tenants or DEFAULT_TENANTS,
            admission=str(data.get("admission", "queue_depth")),
            max_queue_depth=int(data.get("max_queue_depth", 64)),
            mmpp_burst_factor=float(data.get("mmpp_burst_factor", 4.0)),
            mmpp_normal_dwell_s=float(data.get("mmpp_normal_dwell_s", 2.0)),
            mmpp_burst_dwell_s=float(data.get("mmpp_burst_dwell_s", 0.5)),
            diurnal_period_s=float(data.get("diurnal_period_s", 60.0)),
            diurnal_floor=float(data.get("diurnal_floor", 0.2)),
            trace_events=trace,
            reservoir_capacity=int(data.get("reservoir_capacity", 4096)),
            admission_spec=(PolicySpec.from_dict(data["admission_spec"])
                            if data.get("admission_spec") is not None
                            else None),
            dispatch_spec=(PolicySpec.from_dict(data["dispatch_spec"])
                           if data.get("dispatch_spec") is not None
                           else None),
        )

    def with_overrides(self, **kwargs) -> "ServingScenario":
        """Copy of the scenario with ``kwargs`` fields replaced.

        Overriding ``admission`` by name clears an ``admission_spec``
        naming a different policy (its params belong to the old one);
        without clearing, the sync in ``__post_init__`` would override
        the requested admission.  Overriding ``max_queue_depth`` on a
        scenario whose spec selects ``queue_depth`` folds the new depth
        into the spec (a set spec's params otherwise win, and the legacy
        knob would be silently ignored).
        """
        from dataclasses import replace
        if "admission" in kwargs and "admission_spec" not in kwargs \
                and self.admission_spec is not None \
                and self.admission_spec.name != kwargs["admission"]:
            kwargs["admission_spec"] = None
        if "max_queue_depth" in kwargs and "admission_spec" not in kwargs \
                and self.admission_spec is not None \
                and self.admission_spec.name == "queue_depth":
            kwargs["admission_spec"] = self.admission_spec.with_params(
                max_tenant_depth=kwargs["max_queue_depth"])
        return replace(self, **kwargs)


class ServingSession:
    """Runs one :class:`ServingScenario` on one configured system.

    ``obs`` opts into the observability layer (:mod:`repro.obs`): with
    tracing on, a :class:`~repro.obs.Tracer` is attached to the
    environment before the front-end is built and left on
    :attr:`tracer` after the run; with metrics on, the standard serving
    instrument set samples into a timeline exposed as :attr:`metrics`
    and serialized into the report's ``metrics`` field.  ``obs=None``
    (the default) is the byte-identical pre-observability path.
    """

    def __init__(self, scenario: ServingScenario, config: PlatformConfig,
                 obs: Optional[ObsConfig] = None):
        self.scenario = scenario
        self.config = config
        self.obs = obs
        self.tracer: Optional[Tracer] = None
        self.metrics = None
        # The last run's front-end: learned-policy snapshots and the
        # learning-curve evaluator read its records after the run.
        self.frontend: Optional[ServingFrontend] = None

    def _build_backend(self) -> ServingBackend:
        return build_serving_backend(self.scenario, self.config)

    # ------------------------------------------------------------------ #
    # Execution                                                           #
    # ------------------------------------------------------------------ #
    def run(self) -> ServingReport:
        """Execute the scenario end to end; returns the report."""
        scenario = self.scenario
        obs = self.obs
        backend = self._build_backend()
        env = backend.env
        if obs is not None and obs.tracing:
            # Attached before the front-end/backend capture env.tracer.
            self.tracer = Tracer(obs.trace_capacity)
            env.tracer = self.tracer
        tenants = [t.name for t in scenario.tenants]
        tracker = SLOTracker(tenants,
                             reservoir_capacity=scenario.reservoir_capacity,
                             seed=scenario.seed)
        frontend = ServingFrontend(env, backend, scenario.make_admission(),
                                   tracker, tenants,
                                   dispatch=scenario.make_dispatch())
        wire_feedback(frontend)
        self.frontend = frontend
        bus: Optional[MetricsBus] = None
        if obs is not None and obs.metrics:
            bus = MetricsBus(cadence_s=obs.cadence_s)
            wire_serving_metrics(bus, tracker, frontend, backend)
            bus.install(env)
        requests = scenario.make_arrivals().generate(scenario.duration_s)
        backend.start()
        env.process(arrival_driver(env, frontend, requests))
        drive_until_settled(env, tracker, len(requests),
                            scenario.duration_s, backend.check_health)
        if bus is not None:
            # Final sample at settle time, then retire the sampler
            # (de-scheduling its pending tick) so the drain loop below
            # terminates — and ends at the same clock reading as an
            # unobserved run.
            bus.stop(env)
        backend.finish()
        # Drain the remaining background work (Storengine flush/GC on the
        # accelerator) so energy accounting covers every byte served.
        while env.peek() != float("inf"):
            env.step()
        backend.check_health()
        report = self._assemble_report(backend, tracker)
        if bus is not None:
            self.metrics = bus.timeline
            report.metrics = bus.timeline.to_dict()
        report.learned = learned_snapshot({
            "admission": frontend.admission,
            "dispatch": frontend.dispatch_policy})
        return report

    # ------------------------------------------------------------------ #
    # Report assembly                                                     #
    # ------------------------------------------------------------------ #
    def _assemble_report(self, backend: ServingBackend,
                         tracker: SLOTracker) -> ServingReport:
        # The environment is quiescent by now, so the clock reads the end
        # of the last piece of work (completion or background drain).
        stats_fn = getattr(backend, "scheduler_stats", None)
        return assemble_serving_report(
            self.scenario, self.config.system, tracker,
            makespan_s=backend.env.now, energy_j=backend.energy_j,
            scheduler_stats=stats_fn() if stats_fn else None)


def run_serving(scenario: ServingScenario,
                config: Optional[PlatformConfig] = None,
                system: Optional[str] = None,
                obs: Optional[ObsConfig] = None) -> ServingReport:
    """Convenience wrapper: run one scenario on one system."""
    if config is None:
        config = PlatformConfig(system=system) if system \
            else PlatformConfig()
    elif system is not None:
        config = config.with_system(system)
    return ServingSession(scenario, config, obs=obs).run()
