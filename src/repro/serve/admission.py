"""Admission control for the multi-tenant serving front-end.

Open-loop traffic does not slow down when the accelerator saturates, so an
unchecked front-end grows unbounded queues and every request eventually
misses its deadline.  The admission controller decides, at arrival time,
whether a request may enter its tenant queue:

* :class:`AlwaysAdmit` — no control (the pure open-loop baseline).
* :class:`QueueDepthAdmission` — reject when the tenant's queue (or the
  whole front-end backlog) exceeds a depth bound.
* :class:`DeadlineAwareAdmission` — estimate the queueing delay from the
  current backlog and an EWMA of observed service times, and reject
  requests that would already miss their SLO at dispatch time.
* :class:`TokenBucketAdmission` — classic rate limiter: admit while the
  bucket has tokens, refilled at a fixed rate up to a burst bound.

Every policy registers itself in the unified registry
(:mod:`repro.policy`) under the ``admission`` domain, so a scenario picks
one declaratively via a :class:`~repro.policy.PolicySpec` (name +
params).  :func:`make_admission` is the pre-registry shim.
"""

from __future__ import annotations

import warnings
from typing import Optional, Protocol

from ..policy import build_policy, register_policy
from .request import Request


class FrontendView(Protocol):
    """What an admission policy may observe about the front-end."""

    def queue_depth(self, tenant: str) -> int: ...
    @property
    def total_queued(self) -> int: ...
    @property
    def in_flight(self) -> int: ...
    @property
    def dispatch_capacity(self) -> int: ...


class AdmissionController:
    """Base policy: admit everything, learn nothing."""

    name = "none"

    def admit(self, request: Request, frontend: FrontendView) -> bool:
        """Decide at arrival time whether ``request`` may enqueue."""
        return True

    def observe_service_time(self, service_s: float) -> None:
        """Completion feedback (used by estimating policies)."""


@register_policy("admission")
class AlwaysAdmit(AdmissionController):
    """The pure open-loop front-end: queues are unbounded."""

    name = "none"


@register_policy("admission")
class QueueDepthAdmission(AdmissionController):
    """Bound per-tenant queue depth (and optionally the total backlog)."""

    name = "queue_depth"

    def __init__(self, max_tenant_depth: int = 64,
                 max_total_depth: Optional[int] = None):
        if max_tenant_depth < 1:
            raise ValueError("max_tenant_depth must be >= 1")
        if max_total_depth is not None and max_total_depth < 1:
            raise ValueError("max_total_depth must be >= 1")
        self.max_tenant_depth = max_tenant_depth
        self.max_total_depth = max_total_depth

    def admit(self, request: Request, frontend: FrontendView) -> bool:
        """Admit while the tenant (and total) backlog is under bound."""
        if frontend.queue_depth(request.tenant) >= self.max_tenant_depth:
            return False
        if self.max_total_depth is not None \
                and frontend.total_queued >= self.max_total_depth:
            return False
        return True


@register_policy("admission")
class DeadlineAwareAdmission(AdmissionController):
    """Reject requests whose estimated completion already misses the SLO.

    The wait estimate assumes the backlog ahead of the request (queued
    plus in-flight work) drains at ``dispatch_capacity`` concurrent
    requests, each taking the EWMA service time; the request itself then
    needs one more service time.  Requests without an SLO are admitted
    (subject to the optional backstop depth bound).

    Until the EWMA has a sample the estimator is blind, so the cold-start
    window is bounded instead of open: seed the estimate via
    ``initial_service_s`` (e.g. the platform's nominal service time) to
    make the deadline test live from the first arrival, or leave it unset
    and the policy bootstraps from the first completion while admitting
    at most ``cold_start_waves`` dispatch waves of backlog — an open-loop
    burst before the first completion can no longer flood the queue
    unchecked.
    """

    name = "deadline"

    def __init__(self, ewma_alpha: float = 0.2,
                 initial_service_s: float = 0.0,
                 slack_factor: float = 1.0,
                 backstop_depth: Optional[int] = None,
                 cold_start_waves: float = 2.0):
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if slack_factor <= 0:
            raise ValueError("slack_factor must be positive")
        if cold_start_waves <= 0:
            raise ValueError("cold_start_waves must be positive")
        self.ewma_alpha = ewma_alpha
        self.service_estimate_s = initial_service_s
        self.slack_factor = slack_factor
        self.backstop_depth = backstop_depth
        self.cold_start_waves = cold_start_waves

    def observe_service_time(self, service_s: float) -> None:
        """Fold one observed service time into the EWMA estimate."""
        if self.service_estimate_s <= 0:
            self.service_estimate_s = service_s
        else:
            self.service_estimate_s += self.ewma_alpha * (
                service_s - self.service_estimate_s)

    def estimated_completion_s(self, frontend: FrontendView) -> float:
        """Estimated queueing delay + service for a request arriving now."""
        backlog = frontend.total_queued + frontend.in_flight
        capacity = max(1, frontend.dispatch_capacity)
        waves = backlog / capacity
        return (waves + 1.0) * self.service_estimate_s

    def admit(self, request: Request, frontend: FrontendView) -> bool:
        """Admit unless the estimated completion would miss the SLO."""
        if self.backstop_depth is not None \
                and frontend.total_queued >= self.backstop_depth:
            return False
        if request.slo_s is None:
            return True
        if self.service_estimate_s <= 0:
            # Cold start (no estimate yet): bound the backlog to a few
            # dispatch waves so samples can be gathered without admitting
            # an unbounded, unestimated burst.
            backlog = frontend.total_queued + frontend.in_flight
            capacity = max(1, frontend.dispatch_capacity)
            return backlog < capacity * self.cold_start_waves
        return self.estimated_completion_s(frontend) \
            <= request.slo_s * self.slack_factor


@register_policy("admission")
class TokenBucketAdmission(AdmissionController):
    """Classic token-bucket rate limiter over the arrival timeline.

    The bucket holds up to ``burst`` tokens and refills at ``rate_rps``
    tokens per second of *simulated* time (measured on the arrival
    timestamps, so the policy is deterministic and needs no clock
    access).  Each admitted request spends one token; arrivals finding an
    empty bucket are rejected.  Unlike the backlog-driven policies this
    shapes the *input* rate regardless of how the backend is doing.
    """

    name = "token_bucket"

    def __init__(self, rate_rps: float = 100.0, burst: float = 10.0):
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate_rps = rate_rps
        self.burst = burst
        self.tokens = float(burst)
        self._last_arrival_s: Optional[float] = None

    def admit(self, request: Request, frontend: FrontendView) -> bool:
        """Spend one token if available, refilling from elapsed time."""
        now = request.arrival_s
        if self._last_arrival_s is not None:
            elapsed = max(0.0, now - self._last_arrival_s)
            self.tokens = min(float(self.burst),
                              self.tokens + elapsed * self.rate_rps)
        self._last_arrival_s = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


def make_admission(policy: str, **kwargs) -> AdmissionController:
    """Deprecated: instantiate an admission policy by name.

    Kept as a shim over the unified policy registry; use
    ``repro.policy.build_policy("admission", name, ...)`` (or a
    :class:`~repro.policy.PolicySpec`) instead.  ``"always"`` remains an
    accepted alias of ``"none"``.
    """
    warnings.warn(
        "make_admission() is deprecated; use repro.policy.build_policy("
        "'admission', name, ...) instead",
        DeprecationWarning, stacklevel=2)
    return build_policy("admission", {"name": policy, "params": kwargs})
