"""Admission control for the multi-tenant serving front-end.

Open-loop traffic does not slow down when the accelerator saturates, so an
unchecked front-end grows unbounded queues and every request eventually
misses its deadline.  The admission controller decides, at arrival time,
whether a request may enter its tenant queue:

* :class:`AlwaysAdmit` — no control (the pure open-loop baseline).
* :class:`QueueDepthAdmission` — reject when the tenant's queue (or the
  whole front-end backlog) exceeds a depth bound.
* :class:`DeadlineAwareAdmission` — estimate the queueing delay from the
  current backlog and an EWMA of observed service times, and reject
  requests that would already miss their SLO at dispatch time.
"""

from __future__ import annotations

from typing import Optional, Protocol

from .request import Request


class FrontendView(Protocol):
    """What an admission policy may observe about the front-end."""

    def queue_depth(self, tenant: str) -> int: ...
    @property
    def total_queued(self) -> int: ...
    @property
    def in_flight(self) -> int: ...
    @property
    def dispatch_capacity(self) -> int: ...


class AdmissionController:
    """Base policy: admit everything, learn nothing."""

    name = "none"

    def admit(self, request: Request, frontend: FrontendView) -> bool:
        """Decide at arrival time whether ``request`` may enqueue."""
        return True

    def observe_service_time(self, service_s: float) -> None:
        """Completion feedback (used by estimating policies)."""


class AlwaysAdmit(AdmissionController):
    """The pure open-loop front-end: queues are unbounded."""

    name = "none"


class QueueDepthAdmission(AdmissionController):
    """Bound per-tenant queue depth (and optionally the total backlog)."""

    name = "queue_depth"

    def __init__(self, max_tenant_depth: int = 64,
                 max_total_depth: Optional[int] = None):
        if max_tenant_depth < 1:
            raise ValueError("max_tenant_depth must be >= 1")
        if max_total_depth is not None and max_total_depth < 1:
            raise ValueError("max_total_depth must be >= 1")
        self.max_tenant_depth = max_tenant_depth
        self.max_total_depth = max_total_depth

    def admit(self, request: Request, frontend: FrontendView) -> bool:
        """Admit while the tenant (and total) backlog is under bound."""
        if frontend.queue_depth(request.tenant) >= self.max_tenant_depth:
            return False
        if self.max_total_depth is not None \
                and frontend.total_queued >= self.max_total_depth:
            return False
        return True


class DeadlineAwareAdmission(AdmissionController):
    """Reject requests whose estimated completion already misses the SLO.

    The wait estimate assumes the backlog ahead of the request (queued
    plus in-flight work) drains at ``dispatch_capacity`` concurrent
    requests, each taking the EWMA service time; the request itself then
    needs one more service time.  Requests without an SLO are admitted
    (subject to the optional backstop depth bound).
    """

    name = "deadline"

    def __init__(self, ewma_alpha: float = 0.2,
                 initial_service_s: float = 0.0,
                 slack_factor: float = 1.0,
                 backstop_depth: Optional[int] = None):
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if slack_factor <= 0:
            raise ValueError("slack_factor must be positive")
        self.ewma_alpha = ewma_alpha
        self.service_estimate_s = initial_service_s
        self.slack_factor = slack_factor
        self.backstop_depth = backstop_depth

    def observe_service_time(self, service_s: float) -> None:
        """Fold one observed service time into the EWMA estimate."""
        if self.service_estimate_s <= 0:
            self.service_estimate_s = service_s
        else:
            self.service_estimate_s += self.ewma_alpha * (
                service_s - self.service_estimate_s)

    def estimated_completion_s(self, frontend: FrontendView) -> float:
        """Estimated queueing delay + service for a request arriving now."""
        backlog = frontend.total_queued + frontend.in_flight
        capacity = max(1, frontend.dispatch_capacity)
        waves = backlog / capacity
        return (waves + 1.0) * self.service_estimate_s

    def admit(self, request: Request, frontend: FrontendView) -> bool:
        """Admit unless the estimated completion would miss the SLO."""
        if self.backstop_depth is not None \
                and frontend.total_queued >= self.backstop_depth:
            return False
        if request.slo_s is None or self.service_estimate_s <= 0:
            return True
        return self.estimated_completion_s(frontend) \
            <= request.slo_s * self.slack_factor


def make_admission(policy: str, **kwargs) -> AdmissionController:
    """Instantiate an admission policy by name (none/queue_depth/deadline)."""
    if policy in ("none", "always"):
        return AlwaysAdmit()
    if policy == "queue_depth":
        return QueueDepthAdmission(**kwargs)
    if policy == "deadline":
        return DeadlineAwareAdmission(**kwargs)
    raise ValueError(f"unknown admission policy {policy!r}; "
                     f"choose none, queue_depth or deadline")
