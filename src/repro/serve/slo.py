"""Per-tenant SLO accounting for serving runs.

Every tenant owns a :class:`TenantAccount`: an end-to-end latency
reservoir (:class:`repro.sim.stats.LatencyReservoir`, so tail percentiles
stay cheap at scale) plus offered/admitted/rejected/completed counters and
an SLO-violation count.  The :class:`SLOTracker` aggregates the accounts
and answers the sweep-level questions: goodput versus offered load and
the latency tail per tenant and overall.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim.stats import LatencyReservoir
from .request import RequestRecord

#: The percentiles every serving report carries.
REPORT_PERCENTILES = (50.0, 95.0, 99.0, 99.9)


class TenantAccount:
    """Counters + latency reservoir for one tenant."""

    def __init__(self, tenant: str, reservoir_capacity: int = 4096,
                 seed: int = 0):
        self.tenant = tenant
        self.offered = 0
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.slo_violations = 0
        self.latency = LatencyReservoir(capacity=reservoir_capacity,
                                        seed=seed)

    # -- event feed ----------------------------------------------------------
    def on_offered(self) -> None:
        """Count one arrival."""
        self.offered += 1

    def on_admitted(self) -> None:
        """Count one admission."""
        self.admitted += 1

    def on_rejected(self) -> None:
        """Count one rejection."""
        self.rejected += 1

    def on_completed(self, record: RequestRecord) -> None:
        """Count one completion and record its end-to-end latency."""
        self.completed += 1
        latency = record.latency_s
        assert latency is not None
        self.latency.observe(latency)
        if record.slo_met is False:
            self.slo_violations += 1

    # -- derived metrics ------------------------------------------------------
    @property
    def good(self) -> int:
        """Requests completed within their SLO."""
        return self.completed - self.slo_violations

    def goodput_rps(self, duration_s: float) -> float:
        """In-SLO completions per second over ``duration_s``."""
        if duration_s <= 0:
            return 0.0
        return self.good / duration_s

    def percentile(self, pct: float) -> Optional[float]:
        """Latency percentile, or None with no samples."""
        if self.latency.count == 0:
            return None
        return self.latency.percentile(pct)

    def as_dict(self, duration_s: float) -> Dict[str, object]:
        """Counters plus latency summary as a plain dict."""
        out: Dict[str, object] = {
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "slo_violations": self.slo_violations,
            "goodput_rps": self.goodput_rps(duration_s),
        }
        for pct in REPORT_PERCENTILES:
            out[f"p{pct:g}_s"] = self.percentile(pct)
        out["mean_latency_s"] = (self.latency.mean
                                 if self.latency.count else None)
        out["max_latency_s"] = (self.latency.max
                                if self.latency.count else None)
        return out


class SLOTracker:
    """All tenant accounts of one serving run plus the aggregate view."""

    def __init__(self, tenants: Sequence[str],
                 reservoir_capacity: int = 4096, seed: int = 0):
        # Per-tenant reservoirs get distinct seeds so their subsample
        # decisions are independent but still deterministic.
        self.accounts: Dict[str, TenantAccount] = {
            name: TenantAccount(name, reservoir_capacity, seed + index)
            for index, name in enumerate(tenants)}
        self.aggregate = TenantAccount("__all__", reservoir_capacity, seed)

    def account(self, tenant: str) -> TenantAccount:
        """The account for ``tenant`` (KeyError if unknown)."""
        return self.accounts[tenant]

    # -- event feed (mirrors TenantAccount) -----------------------------------
    def on_offered(self, tenant: str) -> None:
        """Record one arrival for ``tenant`` and the aggregate."""
        self.accounts[tenant].on_offered()
        self.aggregate.on_offered()

    def on_admitted(self, tenant: str) -> None:
        """Record one admission for ``tenant`` and the aggregate."""
        self.accounts[tenant].on_admitted()
        self.aggregate.on_admitted()

    def on_rejected(self, tenant: str) -> None:
        """Record one rejection for ``tenant`` and the aggregate."""
        self.accounts[tenant].on_rejected()
        self.aggregate.on_rejected()

    def on_completed(self, record: RequestRecord) -> None:
        """Record one completion for its tenant and the aggregate."""
        self.accounts[record.tenant].on_completed(record)
        self.aggregate.on_completed(record)

    def on_completed_batch(self, records: Sequence[RequestRecord]) -> None:
        """Bulk completion feed (the fast-forward batch-observe path).

        Equivalent to calling :meth:`on_completed` once per record in
        order — identical counters and identical reservoir states, since
        each reservoir sees its own samples in the same relative order —
        but ingests latencies through
        :meth:`~repro.sim.stats.LatencyReservoir.observe_many`, one batch
        per account, instead of one observation per record.
        """
        all_latencies: List[float] = []
        per_tenant: Dict[str, List[float]] = {}
        for record in records:
            latency = record.latency_s
            assert latency is not None
            account = self.accounts[record.tenant]
            account.completed += 1
            self.aggregate.completed += 1
            if record.slo_met is False:
                account.slo_violations += 1
                self.aggregate.slo_violations += 1
            per_tenant.setdefault(record.tenant, []).append(latency)
            all_latencies.append(latency)
        for tenant in sorted(per_tenant):
            self.accounts[tenant].latency.observe_many(per_tenant[tenant])
        self.aggregate.latency.observe_many(all_latencies)

    # -- aggregate views -------------------------------------------------------
    @property
    def offered(self) -> int:
        """Total requests offered across all tenants."""
        return self.aggregate.offered

    @property
    def completed(self) -> int:
        """Total requests completed across all tenants."""
        return self.aggregate.completed

    @property
    def rejected(self) -> int:
        """Total requests rejected across all tenants."""
        return self.aggregate.rejected

    @property
    def settled(self) -> int:
        """Requests with a final outcome (completed or rejected)."""
        return self.aggregate.completed + self.aggregate.rejected

    def rolling_percentile(self, pct: float) -> Optional[float]:
        """Aggregate latency percentile so far, or None with no samples.

        The metrics bus's ``rolling_p99_s`` feed (repro.obs): read
        mid-run it reflects every completion observed up to the current
        simulation time through the aggregate reservoir.
        """
        return self.aggregate.percentile(pct)

    def tenants(self) -> List[str]:
        """Tenant names, sorted for deterministic iteration."""
        return sorted(self.accounts)
