"""Pluggable tenant-queue dispatch order for the serving front-end.

When backend capacity frees up, the front-end's dispatch loop must pick
*which tenant's* queue to serve next.  That choice used to be a
round-robin loop hardcoded into :class:`~repro.serve.frontend
.ServingFrontend`; it is now a policy domain of the unified registry
(:mod:`repro.policy`), selectable per scenario like admission or
placement:

* :class:`RoundRobinDispatch` — cycle over tenants in declaration order
  (the pre-registry behavior, and still the default).
* :class:`WeightedFairDispatch` — weighted fair queueing: serve the
  non-empty tenant with the smallest served/weight ratio, so dispatch
  share tracks the configured weights whenever demand allows.
* :class:`StrictPriorityDispatch` — always serve the highest-priority
  non-empty queue; lower priorities only run when higher ones are empty.

Every policy is deterministic — the same queue contents always produce
the same pick — which is what keeps serving runs cacheable and the
golden/determinism suites meaningful.
"""

from __future__ import annotations

from typing import Deque, Mapping, Optional, Sequence

from ..policy import register_policy
from .request import RequestRecord


class DispatchPolicy:
    """Base policy: pick the next tenant queue the front-end serves.

    The front-end calls :meth:`bind` once with the tenant declaration
    order, then :meth:`select` each time it needs the next request;
    ``queues`` maps every tenant to its FIFO deque (read-only to the
    policy).  :meth:`select` returns the chosen tenant name — accounting
    for the pick (cursors, served counters) happens inside it — or
    ``None`` when every queue is empty.
    """

    name = "dispatch"

    def bind(self, tenants: Sequence[str]) -> None:
        """Learn the tenant set (called once, before any select)."""

    def select(self, queues: Mapping[str, Deque[RequestRecord]]
               ) -> Optional[str]:
        """The tenant whose queue head should be dispatched next."""
        raise NotImplementedError


@register_policy("dispatch")
class RoundRobinDispatch(DispatchPolicy):
    """Cycle over tenants in declaration order, skipping empty queues.

    Byte-identical to the dispatch loop that used to live inside the
    front-end: one cursor advances past each considered tenant, so a
    bursty tenant cannot starve the others at the dispatch point.
    """

    name = "round_robin"

    def __init__(self):
        self._order: Sequence[str] = ()
        self._cursor = 0

    def bind(self, tenants: Sequence[str]) -> None:
        self._order = list(tenants)
        self._cursor = 0

    def select(self, queues: Mapping[str, Deque[RequestRecord]]
               ) -> Optional[str]:
        order = self._order
        count = len(order)
        nxt = self._cursor
        for _ in range(count):
            tenant = order[nxt]
            nxt += 1
            if nxt == count:
                nxt = 0
            if queues[tenant]:
                self._cursor = nxt
                return tenant
        self._cursor = nxt
        return None


@register_policy("dispatch")
class WeightedFairDispatch(DispatchPolicy):
    """Serve the non-empty tenant with the smallest served/weight ratio.

    ``weights`` maps tenant name to a positive dispatch share; tenants
    not listed default to 1.0 (the scenario wiring passes its
    ``TenantSpec`` weights as defaults, so traffic share and dispatch
    share agree unless overridden).  Work-conserving: weights only bite
    while several tenants have queued demand.  Ties break to the earlier
    declared tenant, keeping the policy deterministic.
    """

    name = "weighted_fair"

    def __init__(self, weights: Optional[Mapping[str, float]] = None):
        self._configured = dict(weights) if weights else {}
        for tenant, weight in self._configured.items():
            if weight <= 0:
                raise ValueError(
                    f"dispatch weight for {tenant!r} must be positive")
        self._order: Sequence[str] = ()
        self._weights: Mapping[str, float] = {}
        self._served: dict = {}

    def bind(self, tenants: Sequence[str]) -> None:
        self._order = list(tenants)
        self._weights = {t: float(self._configured.get(t, 1.0))
                         for t in tenants}
        self._served = {t: 0 for t in tenants}

    def select(self, queues: Mapping[str, Deque[RequestRecord]]
               ) -> Optional[str]:
        best: Optional[str] = None
        best_cost = 0.0
        for tenant in self._order:
            if not queues[tenant]:
                continue
            cost = (self._served[tenant] + 1) / self._weights[tenant]
            if best is None or cost < best_cost:
                best, best_cost = tenant, cost
        if best is not None:
            self._served[best] += 1
        return best


@register_policy("dispatch")
class StrictPriorityDispatch(DispatchPolicy):
    """Always serve the highest-priority tenant that has queued work.

    ``priority`` maps tenant name to a rank (lower rank dispatches
    first); tenants not listed rank behind every listed one, ordered
    among themselves by declaration order — with no ``priority`` at all,
    earlier declared tenants strictly preempt later ones at the dispatch
    point.  Starvation of low-priority tenants under sustained
    high-priority load is the intended behavior (that is what "strict"
    buys).
    """

    name = "strict_priority"

    def __init__(self, priority: Optional[Mapping[str, int]] = None):
        self._configured = dict(priority) if priority else {}
        self._order: Sequence[str] = ()

    def bind(self, tenants: Sequence[str]) -> None:
        # Precompute the service order: configured rank first (unlisted
        # tenants rank last), then declaration index as the tie-break.
        unranked = float("inf")
        self._order = [
            tenant for _, tenant in sorted(
                enumerate(tenants),
                key=lambda pair: (self._configured.get(pair[1], unranked),
                                  pair[0]))]

    def select(self, queues: Mapping[str, Deque[RequestRecord]]
               ) -> Optional[str]:
        for tenant in self._order:
            if queues[tenant]:
                return tenant
        return None
