"""Execution backends for the serving front-end.

A backend turns dispatched requests into kernel executions on one of the
two systems and reports completions back to the front-end:

* :class:`AcceleratorBackend` — FlashAbacus in service mode: each request
  is offloaded incrementally (PCIe download + boot sequence) and handed
  to the multi-kernel scheduler; capacity is one request per worker LWP.
* :class:`BaselineBackend` — the conventional ``SIMD`` system: strictly
  serial, one request at a time through the SSD -> host -> PCIe path.

Both expose the same tiny surface the dispatcher relies on:
``capacity``, ``in_flight`` and ``dispatch(record, on_complete)``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..baseline.system import BaselineSystem
from ..core.accelerator import FlashAbacusAccelerator
from ..core.kernel import Kernel
from .request import Request, RequestRecord

KernelFactory = Callable[[Request], Kernel]
CompletionCallback = Callable[[RequestRecord, float], None]


class ServingBackend:
    """Common bookkeeping: in-flight count and crash surfacing."""

    def __init__(self, env, kernel_factory: KernelFactory, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.kernel_factory = kernel_factory
        self.capacity = capacity
        self.in_flight = 0
        self.dispatched = 0
        self._procs: List = []
        # Observability (repro.obs): captured from the environment in
        # start() — sessions attach a tracer before starting the backend
        # — and every span site guards on None.  ``trace_device``
        # distinguishes shards in cluster traces.
        self._tracer = None
        self.trace_device = 0

    def start(self) -> None:
        """Called once before the first dispatch."""
        self._tracer = self.env.tracer

    def bind_trace_device(self, device: int) -> None:
        """Tag this backend's span events with shard index ``device``."""
        self.trace_device = device

    def dispatch(self, record: RequestRecord,
                 on_complete: CompletionCallback) -> None:
        """Execute ``record``; call ``on_complete(record, now)`` when done."""
        raise NotImplementedError

    def finish(self) -> None:
        """Called once after the last completion."""

    def check_health(self) -> None:
        """Re-raise crashes from backend-owned simulation processes.

        Completed-ok processes are pruned so the scan stays bounded by
        the in-flight count (this runs after every simulation step).
        """
        alive = []
        for proc in self._procs:
            if proc.triggered:
                if not proc.ok:
                    raise proc.value
            else:
                alive.append(proc)
        self._procs = alive

    @property
    def energy_j(self) -> float:
        """Total energy the backend's device has consumed (joules)."""
        return 0.0


class AcceleratorBackend(ServingBackend):
    """FlashAbacus in service mode: multi-kernel scheduling of requests."""

    def __init__(self, accelerator: FlashAbacusAccelerator,
                 kernel_factory: KernelFactory):
        super().__init__(accelerator.env, kernel_factory,
                         capacity=accelerator.worker_count)
        self.accelerator = accelerator
        self._pending: Dict[int, Tuple[RequestRecord,
                                       CompletionCallback]] = {}
        accelerator.add_completion_listener(self._on_kernel_complete)

    def start(self) -> None:
        """Enter service mode on the accelerator."""
        super().start()
        self.accelerator.begin_service()

    def bind_trace_device(self, device: int) -> None:
        """Tag backend *and* accelerator span events with the shard."""
        super().bind_trace_device(device)
        self.accelerator.trace_device = device

    def dispatch(self, record: RequestRecord,
                 on_complete: CompletionCallback) -> None:
        """Offload one request's kernel into the running scheduler."""
        kernel = self.kernel_factory(record.request)
        self._pending[kernel.kernel_id] = (record, on_complete)
        self.in_flight += 1
        self.dispatched += 1
        tracer = self._tracer
        if tracer is None:
            # The untraced hot path: identical to pre-observability code.
            self._procs.append(
                self.env.process(self.accelerator.submit_kernel(kernel)))
            return
        # Kernel spans correlate via kernel.instance (the request id the
        # factory stamped), not kernel_id: that counter is process-global
        # and would break same-seed trace determinism within a process.
        tracer.span(self.env.now, "service_begin",
                    record.request.request_id, record.request.tenant,
                    self.trace_device, kernel.instance)
        self._procs.append(
            self.env.process(self._traced_submit(kernel, record, tracer)))

    def _traced_submit(self, kernel: Kernel, record: RequestRecord,
                       tracer):
        # Same process shape as the untraced path (one process driving
        # submit_kernel's yields); the extra frame only exists when a
        # tracer is attached.  The span lands after the PCIe offload
        # sequence, i.e. when the kernel enters the on-device scheduler.
        yield from self.accelerator.submit_kernel(kernel)
        tracer.span(self.env.now, "kernel_begin",
                    record.request.request_id, record.request.tenant,
                    self.trace_device, kernel.instance)

    def _on_kernel_complete(self, kernel: Kernel, now: float) -> None:
        entry = self._pending.pop(kernel.kernel_id, None)
        if entry is None:       # not one of ours (e.g. a mixed-use run)
            return
        record, on_complete = entry
        self.in_flight -= 1
        tracer = self._tracer
        if tracer is not None:
            tracer.span(now, "kernel_end", record.request.request_id,
                        record.request.tenant, self.trace_device,
                        kernel.instance)
        on_complete(record, now)

    def finish(self) -> None:
        """Leave service mode; stop Storengine and drain buffered writes."""
        self.accelerator.end_service()
        # Stop the background loop, then flush the buffered flash writes
        # (mirrors run_workload): stop() alone would drop any bytes
        # buffered since Storengine's last poll and undercount storage
        # energy.  The drain process runs during the session's
        # quiescence loop.
        self.accelerator.storengine.stop()
        self._procs.append(
            self.env.process(self.accelerator.storengine.drain()))

    def check_health(self) -> None:
        """Surface crashes from backend processes and the service loop."""
        super().check_health()
        self.accelerator.check_service_health()

    @property
    def energy_j(self) -> float:
        """Accelerator energy breakdown total (joules)."""
        return self.accelerator.energy.breakdown.total

    def scheduler_stats(self) -> Dict[str, float]:
        """Scheduler counters for the serving report."""
        return self.accelerator._scheduler_stats()


class BaselineBackend(ServingBackend):
    """The conventional system: strictly serial request execution."""

    def __init__(self, system: BaselineSystem,
                 kernel_factory: KernelFactory):
        super().__init__(system.env, kernel_factory, capacity=1)
        self.system = system

    def dispatch(self, record: RequestRecord,
                 on_complete: CompletionCallback) -> None:
        """Run one request through the serial SSD -> host -> PCIe path."""
        self.in_flight += 1
        self.dispatched += 1
        self._procs.append(self.env.process(
            self._serve(record, on_complete)))

    def _serve(self, record: RequestRecord,
               on_complete: CompletionCallback):
        kernel = self.kernel_factory(record.request)
        tracer = self._tracer
        if tracer is not None:
            # The serial baseline has no offload/scheduler split:
            # service and kernel both begin at dispatch time.
            rid = record.request.request_id
            tenant = record.request.tenant
            tracer.span(self.env.now, "service_begin", rid, tenant,
                        self.trace_device, kernel.instance)
            tracer.span(self.env.now, "kernel_begin", rid, tenant,
                        self.trace_device, kernel.instance)
        yield from self.system.serve_kernel(kernel)
        self.in_flight -= 1
        if tracer is not None:
            tracer.span(self.env.now, "kernel_end",
                        record.request.request_id, record.request.tenant,
                        self.trace_device, kernel.instance)
        on_complete(record, self.env.now)

    @property
    def energy_j(self) -> float:
        """Baseline-system energy breakdown total (joules)."""
        return self.system.energy.breakdown.total

    def scheduler_stats(self) -> Dict[str, float]:
        """SSD request counters for the serving report."""
        return {
            "ssd_reads": float(self.system.ssd.read_requests),
            "ssd_writes": float(self.system.ssd.write_requests),
        }
