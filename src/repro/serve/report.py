"""Serializable result of one serving run.

A :class:`ServingReport` is to the serving subsystem what
:class:`~repro.core.accelerator.ExecutionReport` is to batch runs: a
plain-data summary that round-trips losslessly through dicts/JSON so the
experiment orchestrator's result cache can persist it.  It carries the
sweep-level aggregates (offered load, goodput, the latency tail) plus the
full per-tenant SLO accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class ServingReport:
    """Results of one open-loop serving run on one system."""

    system: str
    workload: str               # scenario label, e.g. "serve-poisson-40rps"
    duration_s: float           # arrival horizon (offered-load window)
    makespan_s: float           # time of the last completion
    offered: int
    admitted: int
    rejected: int
    completed: int
    slo_violations: int
    offered_rps: float
    goodput_rps: float
    latency: Dict[str, Optional[float]] = field(default_factory=dict)
    per_tenant: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    energy_j: float = 0.0
    scheduler_stats: Dict[str, float] = field(default_factory=dict)
    # Fast-forward provenance (engaged/refused + calibration facts); None
    # on exact runs so pre-fast-forward reports keep their byte form.
    fastforward: Optional[Dict[str, Any]] = None
    # Metrics-bus timeline (repro.obs); None unless the run opted into
    # observability, so default runs keep their byte form.
    metrics: Optional[Dict[str, Any]] = None
    # Learned-policy state snapshots per domain (repro.policy.learned);
    # None unless the run used learned policies, so static runs keep
    # their byte form.
    learned: Optional[Dict[str, Any]] = None

    # -- convenience accessors ------------------------------------------------
    def percentile_s(self, key: str) -> Optional[float]:
        """Overall latency percentile by key ("p50"/"p95"/"p99"/"p99.9")."""
        return self.latency.get(f"{key}_s")

    @property
    def p50_s(self) -> Optional[float]:
        """Median end-to-end latency."""
        return self.percentile_s("p50")

    @property
    def p95_s(self) -> Optional[float]:
        """95th-percentile end-to-end latency."""
        return self.percentile_s("p95")

    @property
    def p99_s(self) -> Optional[float]:
        """99th-percentile end-to-end latency."""
        return self.percentile_s("p99")

    @property
    def admission_rate(self) -> float:
        """Fraction of offered requests that were admitted."""
        if self.offered == 0:
            return 0.0
        return self.admitted / self.offered

    @property
    def completed_rps(self) -> float:
        """Completions per second of the offered-load window."""
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    # -- serialization --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-safe) form for caching and goldens."""
        data: Dict[str, Any] = {
            "system": self.system,
            "workload": self.workload,
            "duration_s": self.duration_s,
            "makespan_s": self.makespan_s,
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "slo_violations": self.slo_violations,
            "offered_rps": self.offered_rps,
            "goodput_rps": self.goodput_rps,
            "latency": dict(self.latency),
            "per_tenant": {tenant: dict(stats)
                           for tenant, stats in self.per_tenant.items()},
            "energy_j": self.energy_j,
            "scheduler_stats": dict(self.scheduler_stats),
        }
        # Emitted only when set: exact-engine reports (fast-forward off,
        # the default) must stay byte-identical to their goldens.
        if self.fastforward is not None:
            data["fastforward"] = dict(self.fastforward)
        if self.metrics is not None:
            data["metrics"] = dict(self.metrics)
        if self.learned is not None:
            data["learned"] = dict(self.learned)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServingReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            system=data["system"],
            workload=data["workload"],
            duration_s=data["duration_s"],
            makespan_s=data["makespan_s"],
            offered=data["offered"],
            admitted=data["admitted"],
            rejected=data["rejected"],
            completed=data["completed"],
            slo_violations=data["slo_violations"],
            offered_rps=data["offered_rps"],
            goodput_rps=data["goodput_rps"],
            latency=dict(data.get("latency", {})),
            per_tenant={tenant: dict(stats) for tenant, stats
                        in data.get("per_tenant", {}).items()},
            energy_j=data.get("energy_j", 0.0),
            scheduler_stats=dict(data.get("scheduler_stats", {})),
            fastforward=(dict(data["fastforward"])
                         if data.get("fastforward") is not None else None),
            metrics=(dict(data["metrics"])
                     if data.get("metrics") is not None else None),
            learned=(dict(data["learned"])
                     if data.get("learned") is not None else None),
        )
