"""Online serving subsystem: open-loop arrivals, admission, SLO accounting.

``repro.serve`` drives the FlashAbacus accelerator and the SIMD baseline
under open-loop, multi-tenant request traffic instead of one-shot batches:
arrival processes emit timestamped kernel-offload requests from the
Table-2 pool, a front-end applies admission control over per-tenant
queues, a dispatcher feeds the accelerator's scheduler as LWP capacity
frees up, and per-tenant SLO accounts record the end-to-end latency tail
(p50/p95/p99/p99.9), goodput versus offered load, and SLO violations.
"""

from .admission import (
    AdmissionController,
    AlwaysAdmit,
    DeadlineAwareAdmission,
    QueueDepthAdmission,
    TokenBucketAdmission,
    make_admission,
)
from .dispatch import (
    DispatchPolicy,
    RoundRobinDispatch,
    StrictPriorityDispatch,
    WeightedFairDispatch,
)
from .arrivals import (
    DEFAULT_WORKLOAD_POOL,
    ArrivalProcess,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TenantSpec,
    TraceArrivals,
)
from .backends import AcceleratorBackend, BaselineBackend, ServingBackend
from .fastforward import (
    FastForwardConfig,
    FastForwardServingSession,
    run_serving_fastforward,
)
from .frontend import ServingFrontend
from .report import ServingReport
from .request import Request, RequestRecord, RequestStatus
from .session import (
    DEFAULT_TENANTS,
    ServingScenario,
    ServingSession,
    build_serving_backend,
    make_kernel_factory,
    run_serving,
)
from .slo import REPORT_PERCENTILES, SLOTracker, TenantAccount

__all__ = [
    "AdmissionController",
    "AlwaysAdmit",
    "DeadlineAwareAdmission",
    "QueueDepthAdmission",
    "TokenBucketAdmission",
    "make_admission",
    "DispatchPolicy",
    "RoundRobinDispatch",
    "StrictPriorityDispatch",
    "WeightedFairDispatch",
    "DEFAULT_WORKLOAD_POOL",
    "ArrivalProcess",
    "DiurnalArrivals",
    "MMPPArrivals",
    "PoissonArrivals",
    "TenantSpec",
    "TraceArrivals",
    "AcceleratorBackend",
    "BaselineBackend",
    "ServingBackend",
    "FastForwardConfig",
    "FastForwardServingSession",
    "run_serving_fastforward",
    "ServingFrontend",
    "ServingReport",
    "Request",
    "RequestRecord",
    "RequestStatus",
    "DEFAULT_TENANTS",
    "ServingScenario",
    "ServingSession",
    "build_serving_backend",
    "make_kernel_factory",
    "run_serving",
    "REPORT_PERCENTILES",
    "SLOTracker",
    "TenantAccount",
]
