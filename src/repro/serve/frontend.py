"""Multi-tenant serving front-end: queues, admission, dispatcher.

The front-end sits between the open-loop arrival stream and an execution
backend (:mod:`repro.serve.backends`).  Every arriving request passes the
admission controller; admitted requests wait in their tenant's FIFO queue
until the dispatcher — a simulation process woken by arrivals and
completions — hands them to the backend, keeping at most
``backend.capacity`` requests in flight (one per worker LWP on the
accelerator, one total on the strictly serial SIMD baseline).  The order
tenant queues are served in is a pluggable
:class:`~repro.serve.dispatch.DispatchPolicy` (round-robin by default, so
one bursty tenant cannot starve the others at the dispatch point).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from ..policy.feedback import FeedbackEvent
from ..sim.engine import Environment, Event
from .admission import AdmissionController
from .backends import ServingBackend
from .dispatch import DispatchPolicy, RoundRobinDispatch
from .request import Request, RequestRecord, RequestStatus
from .slo import SLOTracker


class ServingFrontend:
    """Per-tenant queues + admission + policy-ordered dispatcher."""

    def __init__(self, env: Environment, backend: ServingBackend,
                 admission: AdmissionController, tracker: SLOTracker,
                 tenants: Sequence[str],
                 dispatch: Optional[DispatchPolicy] = None):
        if not tenants:
            raise ValueError("at least one tenant is required")
        self.env = env
        self.backend = backend
        self.admission = admission
        self.tracker = tracker
        self.dispatch_policy = dispatch if dispatch is not None \
            else RoundRobinDispatch()
        self.dispatch_policy.bind(list(tenants))
        self.queues: Dict[str, Deque[RequestRecord]] = {
            tenant: deque() for tenant in tenants}
        self.records: List[RequestRecord] = []
        self._order = list(tenants)
        self._open = True
        # Total queued requests, maintained incrementally: the dispatch
        # loop re-reads it after every dispatch and completion, and
        # summing the per-tenant deques there is O(tenants) per check —
        # measurably slow for wide tenant sets (see PERFORMANCE.md).
        self._queued_total = 0
        # Optional derating of the backend's dispatch capacity (the
        # cluster layer's slow/failed-device model); None = full capacity.
        self.capacity_limit: Optional[int] = None
        # Observability (repro.obs): the tracer is captured from the
        # environment at construction (sessions attach it before building
        # the front-end) and every span site guards on None, so untraced
        # runs pay a single comparison per arrival/dispatch/completion.
        # ``trace_device`` distinguishes shards in cluster traces;
        # ``obs_latency`` is the metrics bus's completion-latency
        # histogram hook.
        self._tracer = env.tracer
        self.trace_device = 0
        self.obs_latency = None
        # Learned-policy feedback (repro.policy.feedback): hooks invoked
        # once per completion.  Empty unless the session wired learned
        # policies, so static runs pay one truthiness check.
        self.feedback_hooks: List = []
        self._wake: Event = env.event()
        self._dispatcher = env.process(self._dispatch_loop())

    # ------------------------------------------------------------------ #
    # FrontendView protocol (what admission policies may observe)         #
    # ------------------------------------------------------------------ #
    def queue_depth(self, tenant: str) -> int:
        """Number of requests waiting in ``tenant``'s queue."""
        return len(self.queues[tenant])

    @property
    def total_queued(self) -> int:
        """Requests waiting across all tenant queues (O(1))."""
        return self._queued_total

    @property
    def in_flight(self) -> int:
        """Requests currently executing on the backend."""
        return self.backend.in_flight

    @property
    def dispatch_capacity(self) -> int:
        """Concurrent-dispatch bound (backend capacity, possibly derated)."""
        if self.capacity_limit is None:
            return self.backend.capacity
        return min(self.backend.capacity, self.capacity_limit)

    # ------------------------------------------------------------------ #
    # Arrival side                                                        #
    # ------------------------------------------------------------------ #
    def submit(self, request: Request) -> RequestRecord:
        """Admit-or-reject ``request`` at the current simulation time."""
        if request.tenant not in self.queues:
            raise ValueError(f"unknown tenant {request.tenant!r}")
        record = RequestRecord(request=request)
        self.records.append(record)
        self.tracker.on_offered(request.tenant)
        tracer = self._tracer
        if tracer is not None:
            tracer.span(self.env.now, "arrival", request.request_id,
                        request.tenant, self.trace_device, request.workload)
        if not self.admission.admit(request, self):
            record.status = RequestStatus.REJECTED
            self.tracker.on_rejected(request.tenant)
            if tracer is not None:
                tracer.span(self.env.now, "reject", request.request_id,
                            request.tenant, self.trace_device)
            return record
        record.admitted_at = self.env.now
        self.tracker.on_admitted(request.tenant)
        if tracer is not None:
            tracer.span(self.env.now, "admit", request.request_id,
                        request.tenant, self.trace_device)
        self.queues[request.tenant].append(record)
        self._queued_total += 1
        self._kick()
        return record

    def enqueue_record(self, record: RequestRecord) -> None:
        """Queue an already-admitted record (cluster rerouting path).

        The record keeps its original admission timestamp and is *not*
        re-counted as offered/admitted — it was admitted elsewhere and is
        merely changing queues.  It is also not appended to
        :attr:`records`, which tracks arrivals at this front-end.
        """
        if record.request.tenant not in self.queues:
            raise ValueError(f"unknown tenant {record.request.tenant!r}")
        record.status = RequestStatus.QUEUED
        self.queues[record.request.tenant].append(record)
        self._queued_total += 1
        self._kick()

    def evict_queued(self) -> List[RequestRecord]:
        """Remove and return every queued (not yet dispatched) record.

        Used by the cluster layer when this device fails: the backlog is
        handed back to the dispatcher for rerouting.  In-flight requests
        are untouched (the failing device drains them).
        """
        evicted: List[RequestRecord] = []
        for tenant in self._order:
            queue = self.queues[tenant]
            evicted.extend(queue)
            queue.clear()
        self._queued_total = 0
        return evicted

    def close(self) -> None:
        """No more arrivals: the dispatcher may exit once drained."""
        self._open = False
        self._kick()

    @property
    def drained(self) -> bool:
        """True once closed with empty queues and nothing in flight."""
        return (not self._open and self.total_queued == 0
                and self.backend.in_flight == 0)

    # ------------------------------------------------------------------ #
    # Dispatch side                                                       #
    # ------------------------------------------------------------------ #
    def _kick(self) -> None:
        wake, self._wake = self._wake, self.env.event()
        if not wake.triggered:
            wake.succeed()

    def _pop_next(self) -> RequestRecord:
        """Pop the head of the queue the dispatch policy selects."""
        tenant = self.dispatch_policy.select(self.queues)
        if tenant is None:
            raise RuntimeError("no queued request to pop")
        self._queued_total -= 1
        return self.queues[tenant].popleft()

    def _dispatch_loop(self):
        backend = self.backend
        dispatch = backend.dispatch
        on_complete = self._on_complete
        tracer = self._tracer
        while True:
            while (backend.in_flight < self.dispatch_capacity
                   and self._queued_total > 0):
                record = self._pop_next()
                record.dispatched_at = self.env.now
                record.status = RequestStatus.RUNNING
                if tracer is not None:
                    tracer.span(self.env.now, "dispatch",
                                record.request.request_id,
                                record.request.tenant, self.trace_device)
                dispatch(record, on_complete)
            if self.drained:
                return
            yield self._wake

    def _on_complete(self, record: RequestRecord, now: float) -> None:
        record.completed_at = now
        record.status = RequestStatus.COMPLETED
        self.tracker.on_completed(record)
        tracer = self._tracer
        if tracer is not None:
            tracer.span(now, "complete", record.request.request_id,
                        record.request.tenant, self.trace_device)
        if self.obs_latency is not None:
            self.obs_latency.observe(record.latency_s)
        service = record.service_s
        if service is not None and service > 0:
            self.admission.observe_service_time(service)
        if self.feedback_hooks:
            event = FeedbackEvent.from_record(record, self.trace_device)
            for hook in self.feedback_hooks:
                hook.on_feedback(event)
        self._kick()
