"""Request model for the online serving subsystem.

A :class:`Request` is one timestamped kernel-offload demand emitted by an
arrival process: a tenant asks for one instance of a Table-2 kernel at a
given simulation time, optionally with a latency SLO.  The front-end wraps
each request in a :class:`RequestRecord` that accumulates the lifecycle
timestamps the SLO accounting is computed from.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional


@dataclass(frozen=True)
class Request:
    """One kernel-offload request emitted by an arrival process."""

    request_id: int
    tenant: str
    workload: str               # Table-2 kernel name, e.g. "ATAX"
    arrival_s: float            # absolute simulation time of arrival
    slo_s: Optional[float] = None   # end-to-end latency objective

    @property
    def deadline_s(self) -> Optional[float]:
        """Absolute completion deadline, or None without an SLO."""
        if self.slo_s is None:
            return None
        return self.arrival_s + self.slo_s


class RequestStatus(Enum):
    """Lifecycle of one request inside the serving front-end."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    REJECTED = "rejected"


@dataclass
class RequestRecord:
    """Per-request bookkeeping: admission decision plus timestamps.

    ``reroutes`` counts how many times the cluster layer moved this
    record's backlog entry off a failed device onto a peer; it stays 0
    on the single-device path and for requests that were dispatched
    before any fault hit.
    """

    request: Request
    status: RequestStatus = RequestStatus.QUEUED
    admitted_at: Optional[float] = None
    dispatched_at: Optional[float] = None
    completed_at: Optional[float] = None
    reroutes: int = 0

    @property
    def tenant(self) -> str:
        """Owning tenant (delegates to the request)."""
        return self.request.tenant

    @property
    def latency_s(self) -> Optional[float]:
        """End-to-end latency: arrival to completion."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.request.arrival_s

    @property
    def queue_delay_s(self) -> Optional[float]:
        """Arrival-to-dispatch wait, or None if not dispatched."""
        if self.dispatched_at is None:
            return None
        return self.dispatched_at - self.request.arrival_s

    @property
    def service_s(self) -> Optional[float]:
        """Dispatch-to-completion time, or None while pending."""
        if self.completed_at is None or self.dispatched_at is None:
            return None
        return self.completed_at - self.dispatched_at

    @property
    def slo_met(self) -> Optional[bool]:
        """True/False once completed (None while in flight or rejected)."""
        if self.completed_at is None:
            return None
        if self.request.slo_s is None:
            return True
        return self.latency_s <= self.request.slo_s
