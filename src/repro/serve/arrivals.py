"""Open-loop arrival processes over the Table-2 kernel pool.

Each generator produces a finite, time-sorted list of
:class:`~repro.serve.request.Request` objects for a horizon, drawing the
kernel name and tenant for every arrival from weighted pools under one
deterministic seeded RNG — the same seed always reproduces the same trace,
which is what makes serving experiments cacheable by content hash.

Four processes cover the paper-style evaluation space:

* :class:`PoissonArrivals` — memoryless open-loop traffic at a fixed rate.
* :class:`MMPPArrivals` — a 2-state Markov-modulated Poisson process
  (normal/burst) for bursty tenants.
* :class:`DiurnalArrivals` — a sinusoidal day-night ramp, sampled by
  thinning a peak-rate Poisson stream.
* :class:`TraceArrivals` — replay of an explicit (time, tenant, workload)
  event list, e.g. loaded from a JSON-lines trace file.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..workloads.characteristics import lookup
from ..workloads.traces import load_trace
from .request import Request

#: Default request pool: a bandwidth-light slice of Table 2 so serving
#: sweeps cover both data-intensive and compute-intensive kernels.
DEFAULT_WORKLOAD_POOL: Tuple[str, ...] = ("ATAX", "MVT", "GESUM", "BICG")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the multi-tenant front-end.

    ``weight`` is the tenant's share of the offered traffic; ``slo_s`` its
    end-to-end latency objective (None = no deadline).
    """

    name: str
    weight: float = 1.0
    slo_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if self.slo_s is not None and self.slo_s <= 0:
            raise ValueError("slo_s must be positive")


def _weighted_choice(rng: random.Random, items: Sequence[str],
                     weights: Sequence[float]) -> str:
    total = sum(weights)
    pick = rng.random() * total
    for item, weight in zip(items, weights):
        pick -= weight
        if pick <= 0:
            return item
    return items[-1]


class ArrivalProcess:
    """Base class: emits timestamped requests over a finite horizon."""

    def __init__(self, tenants: Sequence[TenantSpec],
                 workloads: Sequence[str] = DEFAULT_WORKLOAD_POOL,
                 seed: int = 1):
        if not tenants:
            raise ValueError("at least one tenant is required")
        if not workloads:
            raise ValueError("at least one workload is required")
        for name in workloads:
            lookup(name)    # unknown Table-2 names fail fast
        self.tenants = list(tenants)
        self.workloads = list(workloads)
        self.seed = seed

    # -- subclass contract ---------------------------------------------------
    def _arrival_times(self, rng: random.Random,
                       duration_s: float) -> List[float]:
        raise NotImplementedError

    # -- generation -----------------------------------------------------------
    def generate(self, duration_s: float) -> List[Request]:
        """The full request trace for ``duration_s`` (time-sorted)."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        rng = random.Random(self.seed)
        times = self._arrival_times(rng, duration_s)
        tenant_names = [t.name for t in self.tenants]
        tenant_weights = [t.weight for t in self.tenants]
        slo_by_tenant: Dict[str, Optional[float]] = {
            t.name: t.slo_s for t in self.tenants}
        requests: List[Request] = []
        for request_id, arrival in enumerate(times):
            tenant = _weighted_choice(rng, tenant_names, tenant_weights)
            workload = self.workloads[rng.randrange(len(self.workloads))]
            requests.append(Request(
                request_id=request_id, tenant=tenant, workload=workload,
                arrival_s=arrival, slo_s=slo_by_tenant[tenant]))
        return requests


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate_rps`` requests per second."""

    def __init__(self, rate_rps: float, tenants: Sequence[TenantSpec],
                 workloads: Sequence[str] = DEFAULT_WORKLOAD_POOL,
                 seed: int = 1):
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        super().__init__(tenants, workloads, seed)
        self.rate_rps = rate_rps

    def _arrival_times(self, rng: random.Random,
                       duration_s: float) -> List[float]:
        times: List[float] = []
        t = rng.expovariate(self.rate_rps)
        while t < duration_s:
            times.append(t)
            t += rng.expovariate(self.rate_rps)
        return times


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (normal vs. burst).

    The process alternates between a normal state at ``rate_rps`` and a
    burst state at ``rate_rps * burst_factor``; dwell times in each state
    are exponential with the given means.  The long-run average rate is
    reported by :meth:`mean_rate_rps`.
    """

    def __init__(self, rate_rps: float, tenants: Sequence[TenantSpec],
                 workloads: Sequence[str] = DEFAULT_WORKLOAD_POOL,
                 seed: int = 1, burst_factor: float = 4.0,
                 normal_dwell_s: float = 2.0, burst_dwell_s: float = 0.5):
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if normal_dwell_s <= 0 or burst_dwell_s <= 0:
            raise ValueError("dwell times must be positive")
        super().__init__(tenants, workloads, seed)
        self.rate_rps = rate_rps
        self.burst_factor = burst_factor
        self.normal_dwell_s = normal_dwell_s
        self.burst_dwell_s = burst_dwell_s

    def mean_rate_rps(self) -> float:
        """Long-run average rate over the normal/burst dwell cycle."""
        weight_normal = self.normal_dwell_s
        weight_burst = self.burst_dwell_s
        return (self.rate_rps * weight_normal
                + self.rate_rps * self.burst_factor * weight_burst) \
            / (weight_normal + weight_burst)

    def _arrival_times(self, rng: random.Random,
                       duration_s: float) -> List[float]:
        times: List[float] = []
        t = 0.0
        bursting = False
        while t < duration_s:
            dwell = rng.expovariate(
                1.0 / (self.burst_dwell_s if bursting
                       else self.normal_dwell_s))
            state_end = min(t + dwell, duration_s)
            rate = self.rate_rps * (self.burst_factor if bursting else 1.0)
            arrival = t + rng.expovariate(rate)
            while arrival < state_end:
                times.append(arrival)
                arrival += rng.expovariate(rate)
            t = state_end
            bursting = not bursting
        return times


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal day/night load ramp sampled by Poisson thinning.

    The instantaneous rate follows
    ``peak * (floor + (1 - floor) * (1 - cos(2*pi*t/period)) / 2)``:
    it starts at the floor, peaks at ``period/2`` and returns to the
    floor — one "day" per period.
    """

    def __init__(self, peak_rate_rps: float, tenants: Sequence[TenantSpec],
                 workloads: Sequence[str] = DEFAULT_WORKLOAD_POOL,
                 seed: int = 1, period_s: float = 60.0,
                 floor_fraction: float = 0.2):
        if peak_rate_rps <= 0:
            raise ValueError("peak_rate_rps must be positive")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if not 0.0 <= floor_fraction <= 1.0:
            raise ValueError("floor_fraction must be in [0, 1]")
        super().__init__(tenants, workloads, seed)
        self.peak_rate_rps = peak_rate_rps
        self.period_s = period_s
        self.floor_fraction = floor_fraction

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t`` (cosine ramp)."""
        wave = (1.0 - math.cos(2.0 * math.pi * t / self.period_s)) / 2.0
        return self.peak_rate_rps * (
            self.floor_fraction + (1.0 - self.floor_fraction) * wave)

    def _arrival_times(self, rng: random.Random,
                       duration_s: float) -> List[float]:
        # Thinning: draw candidates at the peak rate, keep each with
        # probability rate(t)/peak.
        times: List[float] = []
        t = rng.expovariate(self.peak_rate_rps)
        while t < duration_s:
            if rng.random() < self.rate_at(t) / self.peak_rate_rps:
                times.append(t)
            t += rng.expovariate(self.peak_rate_rps)
        return times


class TraceArrivals(ArrivalProcess):
    """Replay of an explicit event list.

    Events are ``(arrival_s, tenant, workload)`` triples; tenants named in
    the trace must appear in ``tenants`` so their SLOs can be attached.
    Arrivals beyond the requested horizon are dropped.
    """

    def __init__(self, events: Sequence[Tuple[float, str, str]],
                 tenants: Sequence[TenantSpec], seed: int = 1):
        workloads = sorted({workload for _t, _ten, workload in events}) \
            or list(DEFAULT_WORKLOAD_POOL)
        super().__init__(tenants, workloads, seed)
        known = {t.name for t in self.tenants}
        for arrival, tenant, _workload in events:
            if arrival < 0:
                raise ValueError("trace arrival times must be non-negative")
            if tenant not in known:
                raise ValueError(f"trace names unknown tenant {tenant!r}")
        self.events = sorted(events, key=lambda e: e[0])

    @classmethod
    def from_file(cls, path: Union[str, Path],
                  tenants: Sequence[TenantSpec]) -> "TraceArrivals":
        """Load a JSON-lines trace: one object per line with
        ``arrival_s``, ``tenant`` and ``workload`` keys
        (the :func:`repro.workloads.traces.load_trace` format)."""
        return cls(load_trace(path), tenants)

    def generate(self, duration_s: float) -> List[Request]:
        """Materialize trace events before ``duration_s`` as requests."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        slo_by_tenant = {t.name: t.slo_s for t in self.tenants}
        return [Request(request_id=i, tenant=tenant, workload=workload,
                        arrival_s=arrival, slo_s=slo_by_tenant[tenant])
                for i, (arrival, tenant, workload)
                in enumerate(e for e in self.events if e[0] < duration_s)]

    def _arrival_times(self, rng: random.Random,
                       duration_s: float) -> List[float]:  # pragma: no cover
        return [e[0] for e in self.events if e[0] < duration_s]
