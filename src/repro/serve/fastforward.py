"""Fast-forward serving session: exact warm-up, analytic cruise.

:class:`FastForwardServingSession` wires the generic machinery of
:mod:`repro.sim.fastforward` to the serving pipeline.  The run splits in
two phases:

1. **Warm-up (exact).**  Arrivals inside the warm-up window run on the
   unmodified event engine — real front-end, real admission controller,
   real accelerator backend — and are driven to full settlement.  The
   completed records calibrate the analytic model: empirical
   service-time pools per ``(tenant, workload)``, per-completion energy,
   and the admission EWMA state.
2. **Cruise (analytic).**  If the steady-state detector accepts the
   warm-up data, the remaining arrivals advance through an
   :class:`~repro.sim.fastforward.AnalyticServer` — the *same* admission
   controller decides each arrival against an analytic front-end view,
   service times are resampled from the measured pools, and the SLO
   tracker ingests the resulting completions through the batch-observe
   path.  The engine clock jumps to the last completion via
   ``Environment.advance_to`` — no events are scheduled at all.

The contract (documented in PERFORMANCE.md): with fast-forward
*disabled* (the default) the session defers to the exact
:class:`~repro.serve.session.ServingSession` and reports are
byte-identical; when the detector *refuses* (bursty MMPP/diurnal/trace
arrivals, unstable backlog, too few warm-up samples) the whole scenario
re-runs exactly and only the report's ``fastforward`` annotation records
the refusal; when it *engages*, report-level metrics (goodput, p50–p99.9,
energy) agree with the exact engine within the documented tolerance.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List, Optional, Tuple, Union

from ..platform.config import PlatformConfig
from ..policy import policy_is_learned
from ..sim.fastforward import (
    AnalyticServer,
    FastForwardConfig,
    ServiceTimeModel,
    SteadyStateDetector,
)
from .frontend import ServingFrontend
from .report import ServingReport
from .request import RequestRecord, RequestStatus
from .session import (
    ServingScenario,
    ServingSession,
    arrival_driver,
    assemble_serving_report,
    drive_until_settled,
)
from .slo import SLOTracker


class _AnalyticFrontendView:
    """FrontendView over the analytic queue state.

    Presents the same observables the real front-end offers admission
    policies — per-tenant queue depth, total backlog, in-flight count,
    dispatch capacity — but derives them from the analytic schedule:
    a request is *queued* from arrival until its computed start time and
    *in flight* from start to completion.  Completions popped by
    :meth:`advance` are returned so the session can feed the admission
    controller's service-time EWMA in completion order, exactly as the
    exact engine would.
    """

    def __init__(self, tenants, capacity: int):
        self._depth = {tenant: 0 for tenant in tenants}
        self._total_queued = 0
        self._in_flight = 0
        self._capacity = capacity
        self._starts: List[Tuple[float, int, str]] = []
        self._dones: List[Tuple[float, int, float]] = []
        self._seq = 0

    def advance(self, now_s: float) -> List[float]:
        """Apply all starts/completions due by ``now_s``.

        Returns the service times of requests that completed, in
        completion order (the admission EWMA feed).  Starts pop first:
        a completion implies its start is due too.
        """
        starts = self._starts
        while starts and starts[0][0] <= now_s:
            _, _, tenant = heappop(starts)
            self._depth[tenant] -= 1
            self._total_queued -= 1
            self._in_flight += 1
        done: List[float] = []
        dones = self._dones
        while dones and dones[0][0] <= now_s:
            done.append(heappop(dones)[2])
            self._in_flight -= 1
        return done

    def on_dispatched(self, tenant: str, start_s: float, done_s: float,
                      service_s: float) -> None:
        """Register one admitted request's analytic schedule."""
        self._seq += 1
        heappush(self._starts, (start_s, self._seq, tenant))
        heappush(self._dones, (done_s, self._seq, service_s))
        self._depth[tenant] += 1
        self._total_queued += 1

    # -- FrontendView protocol ------------------------------------------------
    def queue_depth(self, tenant: str) -> int:
        """Requests waiting (not yet started) for ``tenant``."""
        return self._depth[tenant]

    @property
    def total_queued(self) -> int:
        """Waiting requests across all tenants."""
        return self._total_queued

    @property
    def in_flight(self) -> int:
        """Requests between analytic start and completion."""
        return self._in_flight

    @property
    def dispatch_capacity(self) -> int:
        """Concurrent-dispatch bound (the backend's capacity)."""
        return self._capacity


class FastForwardServingSession(ServingSession):
    """ServingSession with calibrated steady-state fast-forward."""

    def __init__(self, scenario: ServingScenario, config: PlatformConfig,
                 fastforward: Optional[FastForwardConfig] = None,
                 obs=None):
        super().__init__(scenario, config, obs=obs)
        self.fastforward = fastforward if fastforward is not None \
            else FastForwardConfig(enabled=True)

    def run(self) -> ServingReport:
        """Execute the scenario, fast-forwarding when safe."""
        ff = self.fastforward
        if not ff.enabled:
            # Off is the default and the golden-checked path: defer to
            # the exact engine wholesale, byte-identical reports.
            return super().run()
        reason = self._static_refusal()
        if reason is None:
            result = self._attempt_fastforward()
            if isinstance(result, ServingReport):
                return result
            reason = result
        # Refused: the scenario re-runs exactly from scratch so the
        # numbers match the exact engine bit-for-bit; only the
        # annotation records why fast-forward did not engage.
        report = super().run()
        report.fastforward = {"engaged": False, "reason": reason}
        return report

    # ------------------------------------------------------------------ #
    # Engagement preconditions                                            #
    # ------------------------------------------------------------------ #
    def _static_refusal(self) -> Optional[str]:
        """Scenario-level refusals, decided before any simulation."""
        scenario = self.scenario
        if self.obs is not None and self.obs.enabled:
            # The analytic cruise schedules no events, so there is
            # nothing to trace or sample — observability forces the
            # exact engine (which the fallback run then instruments).
            return ("observability (tracing/metrics bus) requires the "
                    "exact engine")
        if scenario.process != "poisson":
            return (f"arrival process {scenario.process!r} is not "
                    f"stationary (only 'poisson' engages)")
        admission_spec = scenario.effective_admission_spec()
        if policy_is_learned("admission", admission_spec):
            # A learned controller's decisions depend on the feedback
            # stream; the analytic cruise delivers none, so its dynamic
            # behavior would silently freeze — always run exactly.
            return (f"learned admission policy {admission_spec.name!r} "
                    f"adapts online (exact engine required)")
        if scenario.dispatch_spec is not None \
                and policy_is_learned("dispatch", scenario.dispatch_spec):
            return (f"learned dispatch policy "
                    f"{scenario.dispatch_spec.name!r} adapts online "
                    f"(exact engine required)")
        if scenario.dispatch_spec is not None \
                and scenario.dispatch_spec.name != "round_robin":
            return (f"non-default dispatch policy "
                    f"{scenario.dispatch_spec.name!r}")
        if self.fastforward.warmup_s >= scenario.duration_s:
            return "warm-up window covers the entire run"
        return None

    # ------------------------------------------------------------------ #
    # The two-phase run                                                   #
    # ------------------------------------------------------------------ #
    def _attempt_fastforward(self) -> Union[ServingReport, str]:
        """Warm up exactly, then cruise analytically.

        Returns the finished report, or a refusal reason string if the
        steady-state detector rejects the warm-up window (the caller
        then falls back to a from-scratch exact run).
        """
        scenario = self.scenario
        ff = self.fastforward
        requests = scenario.make_arrivals().generate(scenario.duration_s)
        warm = [r for r in requests if r.arrival_s < ff.warmup_s]
        rest = requests[len(warm):]
        if not rest:
            return "no arrivals after the warm-up window"

        # -- phase 1: exact warm-up -------------------------------------
        backend = self._build_backend()
        env = backend.env
        tenants = [t.name for t in scenario.tenants]
        tracker = SLOTracker(
            tenants, reservoir_capacity=scenario.reservoir_capacity,
            seed=scenario.seed)
        admission = scenario.make_admission()
        frontend = ServingFrontend(env, backend, admission, tracker,
                                   tenants,
                                   dispatch=scenario.make_dispatch())
        backend.start()
        env.process(arrival_driver(env, frontend, warm))
        drive_until_settled(env, tracker, len(warm), scenario.duration_s,
                            backend.check_health,
                            label="fast-forward warm-up")
        t_settle = env.now

        completed = sorted(
            (r for r in frontend.records
             if r.status is RequestStatus.COMPLETED),
            key=lambda r: r.completed_at)
        services = [r.service_s for r in completed]
        latencies = [r.latency_s for r in completed]
        detector = SteadyStateDetector(min_samples=ff.min_samples,
                                       rel_tol=ff.rel_tol)
        engage, verdict = detector.assess(services, latencies)
        if not engage:
            return verdict

        # Retire the backend while the queues are empty: Storengine
        # stops and flushes, so the environment goes fully quiescent and
        # the warm-up energy figure covers every byte it served.
        backend.finish()
        while env.peek() != float("inf"):
            env.step()
        backend.check_health()
        t_drained = env.now
        warm_completed = tracker.aggregate.completed
        warm_energy = backend.energy_j
        energy_per_completion = warm_energy / warm_completed

        # -- phase 2: analytic cruise -----------------------------------
        # Calibrate on the post-transient suffix only: service times
        # measured while the in-flight mix was still filling up carry
        # less scheduler interference than steady state and would bias
        # the analytic throughput optimistic.
        model = ServiceTimeModel(f"fastforward-{scenario.seed}")
        for record in completed[detector.transient_cut(len(completed)):]:
            model.observe(record.tenant, record.request.workload,
                          record.service_s)
        capacity = frontend.dispatch_capacity
        server = AnalyticServer(capacity, free_at=t_settle)
        view = _AnalyticFrontendView(tenants, capacity)
        analytic: List[RequestRecord] = []
        for request in rest:
            now = request.arrival_s
            for service_s in view.advance(now):
                admission.observe_service_time(service_s)
            tracker.on_offered(request.tenant)
            if not admission.admit(request, view):
                tracker.on_rejected(request.tenant)
                continue
            tracker.on_admitted(request.tenant)
            service_s = model.draw(request.tenant, request.workload)
            start, done = server.submit(now, service_s)
            view.on_dispatched(request.tenant, start, done, service_s)
            analytic.append(RequestRecord(
                request=request, status=RequestStatus.COMPLETED,
                admitted_at=now, dispatched_at=start, completed_at=done))

        # Feed completions in completion order through the batch-observe
        # path — the same relative sample order per reservoir as the
        # exact engine's per-completion feed.
        analytic.sort(key=lambda r: (r.completed_at, r.request.request_id))
        tracker.on_completed_batch(analytic)

        # The exact engine's makespan includes the post-completion
        # background drain (Storengine flush/GC); the warm-up measured
        # that tail directly (t_drained - t_settle), so extrapolate it
        # past the last analytic completion.
        drain_tail = t_drained - t_settle
        makespan = max(t_drained, server.last_completion + drain_tail)
        env.advance_to(makespan)
        stats_fn = getattr(backend, "scheduler_stats", None)
        report = assemble_serving_report(
            scenario, self.config.system, tracker,
            makespan_s=env.now,
            energy_j=warm_energy + energy_per_completion * len(analytic),
            scheduler_stats=stats_fn() if stats_fn else None)
        report.fastforward = {
            "engaged": True,
            "reason": "steady",
            "warmup_s": ff.warmup_s,
            "warmup_completed": warm_completed,
            "analytic_requests": len(rest),
            "analytic_completed": len(analytic),
            "calibration_samples": model.sample_count,
        }
        return report


def run_serving_fastforward(
        scenario: ServingScenario,
        config: Optional[PlatformConfig] = None,
        fastforward: Optional[FastForwardConfig] = None,
        obs=None) -> ServingReport:
    """Convenience wrapper: one scenario, fast-forward enabled."""
    if config is None:
        config = PlatformConfig()
    return FastForwardServingSession(scenario, config, fastforward,
                                     obs=obs).run()


__all__ = [
    "FastForwardConfig",
    "FastForwardServingSession",
    "run_serving_fastforward",
]
