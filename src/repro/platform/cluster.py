"""Declarative, serializable cluster (fleet) configuration.

A :class:`ClusterConfig` describes a scale-out fleet of independently-built
devices: one :class:`~repro.platform.PlatformConfig` per device, the
placement policy the cluster dispatcher routes requests with, routing
knobs (tenant-affinity salt, degraded-capacity derating), and an optional
health timeline of :class:`FaultSpec` events (a device marked slow or
failed mid-run).  Like :class:`PlatformConfig` it round-trips losslessly
through plain dicts, so :meth:`ClusterConfig.config_hash` can key the
experiment result cache for cluster runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from ..policy import PolicySpec, policy_names
from .config import PlatformConfig

#: The original placement policies (implemented and registered in
#: :mod:`repro.cluster.placement`).  Kept as the static fast path for
#: validation — checking it first avoids importing the registry's
#: built-ins for the common names; the authoritative set is the
#: registry's ``placement`` domain, which also carries additions like
#: ``join_shortest_queue``.
PLACEMENT_POLICIES: Tuple[str, ...] = (
    "round_robin", "least_outstanding", "tenant_affinity", "power_aware")

#: Device health states a :class:`FaultSpec` may switch a device to.
HEALTH_STATES: Tuple[str, ...] = ("healthy", "degraded", "failed")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled health transition of one device.

    At simulation time ``time_s`` device ``device`` switches to ``state``:
    ``degraded`` derates its dispatch capacity (a slow board), ``failed``
    takes it out of rotation and reroutes its queued requests, and
    ``healthy`` returns it to full service.
    """

    time_s: float
    device: int
    state: str

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("fault time_s must be non-negative")
        if self.device < 0:
            raise ValueError("fault device index must be non-negative")
        if self.state not in HEALTH_STATES:
            raise ValueError(f"unknown health state {self.state!r}; "
                             f"choose from {HEALTH_STATES}")

    def to_list(self) -> list:
        return [self.time_s, self.device, self.state]

    @classmethod
    def from_list(cls, data) -> "FaultSpec":
        time_s, device, state = data
        return cls(time_s=float(time_s), device=int(device),
                   state=str(state))


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to instantiate one fleet of serving devices.

    Frozen like :class:`PlatformConfig`: cluster configs act as cache
    identities via :meth:`config_hash`, so evolution goes through copies
    (:meth:`with_overrides` / :meth:`scaled_to`).

    Attributes
    ----------
    devices:
        One :class:`PlatformConfig` per device.  Devices are independent
        products of :class:`~repro.platform.PlatformBuilder`; mixing
        schedulers (or even SIMD boards) in one fleet is allowed.
    placement:
        Routing policy name from :data:`PLACEMENT_POLICIES`.
    affinity_salt:
        Salt mixed into the tenant-affinity hash so two fleets can map the
        same tenants to different devices.
    degraded_capacity_factor:
        Fraction of a device's dispatch capacity that survives a
        ``degraded`` health transition (slow-board model).
    faults:
        Health timeline applied during the run, time-ordered by the
        session.
    placement_spec:
        Optional :class:`~repro.policy.PolicySpec` parameterizing the
        placement policy (``None`` = the parameterless policy named by
        ``placement``, which serializes and hashes exactly as before the
        policy layer existed).  When set, its name *is* the placement:
        the ``placement`` field is synced to it.
    autoscaler_spec:
        Optional :class:`~repro.policy.PolicySpec` naming an
        ``autoscaler`` policy.  ``None`` (the default) means a static
        fleet — and, like ``placement_spec``, the field plus every
        elastic knob below is omitted from serialization when unset so
        legacy config hashes stay byte-identical.
    min_devices / max_devices:
        Fleet-size bounds the autoscaler is clamped to.  ``None`` means
        1 and ``len(devices)`` respectively; ``devices`` itself is the
        *initially provisioned* fleet, and scale-up past it clones the
        first device's config (the device template).
    warmup_s:
        How long a freshly provisioned device is held out of placement
        (it burns energy and device-seconds while warming — the cost of
        reacting late).
    autoscale_interval_s:
        Cadence of the autoscaler's control tick.
    """

    devices: Tuple[PlatformConfig, ...]
    placement: str = "round_robin"
    affinity_salt: int = 0
    degraded_capacity_factor: float = 0.5
    faults: Tuple[FaultSpec, ...] = ()
    placement_spec: Optional[PolicySpec] = None
    autoscaler_spec: Optional[PolicySpec] = None
    min_devices: Optional[int] = None
    max_devices: Optional[int] = None
    warmup_s: float = 0.0
    autoscale_interval_s: float = 1.0

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError("a cluster needs at least one device")
        if self.placement_spec is not None:
            spec = PolicySpec.coerce(self.placement_spec)
            object.__setattr__(self, "placement_spec", spec)
            # The spec names the policy; the placement field mirrors it
            # so reports and legacy readers agree.
            object.__setattr__(self, "placement", spec.name)
        if self.placement not in PLACEMENT_POLICIES \
                and self.placement not in policy_names("placement"):
            raise ValueError(
                f"unknown placement {self.placement!r}; choose from "
                f"{policy_names('placement')}")
        if not 0.0 < self.degraded_capacity_factor <= 1.0:
            raise ValueError(
                "degraded_capacity_factor must be in (0, 1]")
        seen_faults = set()
        for fault in self.faults:
            if fault.device >= len(self.devices):
                raise ValueError(
                    f"fault names device {fault.device}, but the cluster "
                    f"has only {len(self.devices)} devices")
            key = (fault.time_s, fault.device)
            if key in seen_faults:
                raise ValueError(
                    f"duplicate fault for device {fault.device} at "
                    f"t={fault.time_s}: which state wins would depend on "
                    f"timeline order — merge or re-time the entries")
            seen_faults.add(key)
        if self.autoscaler_spec is not None:
            spec = PolicySpec.coerce(self.autoscaler_spec)
            object.__setattr__(self, "autoscaler_spec", spec)
            if spec.name not in policy_names("autoscaler"):
                raise ValueError(
                    f"unknown autoscaler {spec.name!r}; choose from "
                    f"{policy_names('autoscaler')}")
            if self.min_devices is not None and self.min_devices < 1:
                raise ValueError("min_devices must be >= 1")
            if self.effective_min_devices > len(self.devices):
                raise ValueError(
                    "min_devices exceeds the initially provisioned fleet")
            if self.effective_max_devices < len(self.devices):
                raise ValueError(
                    "max_devices is below the initially provisioned fleet")
            if self.warmup_s < 0:
                raise ValueError("warmup_s must be non-negative")
            if self.autoscale_interval_s <= 0:
                raise ValueError("autoscale_interval_s must be positive")
        elif (self.min_devices is not None or self.max_devices is not None
              or self.warmup_s != 0.0 or self.autoscale_interval_s != 1.0):
            raise ValueError(
                "elastic knobs (min_devices/max_devices/warmup_s/"
                "autoscale_interval_s) require an autoscaler_spec")

    # ------------------------------------------------------------------ #
    # Factories                                                           #
    # ------------------------------------------------------------------ #
    @classmethod
    def homogeneous(cls, count: int, device: PlatformConfig,
                    **kwargs: Any) -> "ClusterConfig":
        """A fleet of ``count`` identical devices."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return cls(devices=tuple(device for _ in range(count)), **kwargs)

    def scaled_to(self, count: int) -> "ClusterConfig":
        """Copy of this cluster resized to ``count`` devices.

        Grows by repeating the first device's config; shrinking keeps the
        prefix.  Faults naming devices beyond the new size are dropped.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if count <= len(self.devices):
            devices = self.devices[:count]
        else:
            devices = self.devices + tuple(
                self.devices[0] for _ in range(count - len(self.devices)))
        faults = tuple(f for f in self.faults if f.device < count)
        return replace(self, devices=devices, faults=faults)

    def with_overrides(self, **kwargs: Any) -> "ClusterConfig":
        """Copy of this cluster with ``kwargs`` fields replaced.

        Overriding ``placement`` by name clears a ``placement_spec``
        naming a different policy (its params belong to the old one);
        without clearing, the sync in ``__post_init__`` would override
        the requested placement.
        """
        if "placement" in kwargs and "placement_spec" not in kwargs \
                and self.placement_spec is not None \
                and self.placement_spec.name != kwargs["placement"]:
            kwargs["placement_spec"] = None
        return replace(self, **kwargs)

    def placement_policy_spec(self) -> PolicySpec:
        """The policy spec the cluster dispatcher routes with.

        ``placement_spec`` when set, else the parameterless spec named by
        ``placement`` — a single resolution path for the dispatcher.
        """
        if self.placement_spec is not None:
            return self.placement_spec
        return PolicySpec(self.placement)

    # ------------------------------------------------------------------ #
    # Derived properties                                                   #
    # ------------------------------------------------------------------ #
    @property
    def device_count(self) -> int:
        return len(self.devices)

    @property
    def elastic(self) -> bool:
        """Whether this cluster runs with an autoscaler control loop."""
        return self.autoscaler_spec is not None

    @property
    def effective_min_devices(self) -> int:
        return 1 if self.min_devices is None else self.min_devices

    @property
    def effective_max_devices(self) -> int:
        return (len(self.devices) if self.max_devices is None
                else self.max_devices)

    @property
    def device_template(self) -> PlatformConfig:
        """The config scale-up clones for devices beyond ``devices``."""
        return self.devices[0]

    def device_config(self, index: int) -> PlatformConfig:
        """Config of device ``index``, template-cloned past the fleet."""
        if index < len(self.devices):
            return self.devices[index]
        return self.device_template

    @property
    def label(self) -> str:
        """Registry/cache identity prefix, e.g. ``cluster-4xIntraO3``."""
        systems = {config.system for config in self.devices}
        flavor = self.devices[0].system if len(systems) == 1 else "mixed"
        return f"cluster-{len(self.devices)}x{flavor}"

    def __hash__(self) -> int:
        return hash(self.config_hash())

    # ------------------------------------------------------------------ #
    # Serialization                                                        #
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        data = {
            "devices": [config.to_dict() for config in self.devices],
            "placement": self.placement,
            "affinity_salt": self.affinity_salt,
            "degraded_capacity_factor": self.degraded_capacity_factor,
            "faults": [fault.to_list() for fault in self.faults],
        }
        # Emitted only when set, so pre-policy-layer configs keep their
        # serialized form (and cache keys) byte-identical.
        if self.placement_spec is not None:
            data["placement_spec"] = self.placement_spec.to_dict()
        if self.autoscaler_spec is not None:
            data["autoscaler_spec"] = self.autoscaler_spec.to_dict()
            data["min_devices"] = self.effective_min_devices
            data["max_devices"] = self.effective_max_devices
            data["warmup_s"] = self.warmup_s
            data["autoscale_interval_s"] = self.autoscale_interval_s
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClusterConfig":
        spec = data.get("placement_spec")
        autoscaler = data.get("autoscaler_spec")
        elastic: Dict[str, Any] = {}
        if autoscaler is not None:
            elastic = {
                "autoscaler_spec": PolicySpec.from_dict(autoscaler),
                "min_devices": data.get("min_devices"),
                "max_devices": data.get("max_devices"),
                "warmup_s": float(data.get("warmup_s", 0.0)),
                "autoscale_interval_s": float(
                    data.get("autoscale_interval_s", 1.0)),
            }
        return cls(
            devices=tuple(PlatformConfig.from_dict(d)
                          for d in data.get("devices", [])),
            placement=str(data.get("placement", "round_robin")),
            affinity_salt=int(data.get("affinity_salt", 0)),
            degraded_capacity_factor=float(
                data.get("degraded_capacity_factor", 0.5)),
            faults=tuple(FaultSpec.from_list(f)
                         for f in data.get("faults", [])),
            placement_spec=(PolicySpec.from_dict(spec)
                            if spec is not None else None),
            **elastic,
        )

    def config_hash(self) -> str:
        """Stable short hash of the canonical serialized form."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
