"""Declarative, serializable platform configuration.

A :class:`PlatformConfig` fully describes one simulated platform: the
system (the ``SIMD`` baseline or one of the four FlashAbacus schedulers),
the hardware specification, workload sizing knobs (instance counts and
input scale), and feature toggles.  Because it round-trips losslessly
through plain dicts (:meth:`to_dict` / :meth:`from_dict`), a stable
:meth:`config_hash` can key the on-disk experiment cache and configs can
be shipped to worker processes or stored next to results.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from types import MappingProxyType
from typing import Any, Dict, List, Mapping, Optional

from ..hw.spec import (
    FlashSpec,
    HardwareSpec,
    HostSpec,
    InterconnectSpec,
    LWPSpec,
    MemorySpec,
    PCIeSpec,
    SSDSpec,
    prototype_spec,
)
from ..policy import PolicySpec, policy_names

#: The conventional baseline system of the paper (Section 5).
BASELINE_SYSTEM = "SIMD"

#: The four FlashAbacus scheduling policies (Section 4).
FLASHABACUS_SCHEDULERS: List[str] = ["InterSt", "IntraIo", "InterDy", "IntraO3"]

_SUB_SPECS = {
    "lwp": LWPSpec,
    "memory": MemorySpec,
    "interconnect": InterconnectSpec,
    "pcie": PCIeSpec,
    "flash": FlashSpec,
    "host": HostSpec,
    "ssd": SSDSpec,
}


def spec_to_dict(spec: HardwareSpec) -> Dict[str, Dict[str, Any]]:
    """Serialize a :class:`HardwareSpec` to nested plain dicts."""
    return spec.as_dict()


def _sub_spec_from_dict(cls, data: Dict[str, Any]):
    known = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in data.items() if k in known})


def spec_from_dict(data: Dict[str, Any]) -> HardwareSpec:
    """Rebuild a :class:`HardwareSpec` from :func:`spec_to_dict` output.

    Unknown keys are ignored so configs written by newer revisions still
    load (the config hash, not this loader, decides cache identity).
    """
    kwargs = {}
    for name, cls in _SUB_SPECS.items():
        if name in data:
            kwargs[name] = _sub_spec_from_dict(cls, data[name])
    return HardwareSpec(**kwargs)


@dataclass(frozen=True)
class PlatformConfig:
    """Everything needed to instantiate one platform and size its workload.

    Frozen (like :class:`HardwareSpec`): configs act as cache identities
    via :meth:`config_hash`, so evolution goes through copies
    (:meth:`with_system` / :meth:`with_overrides` / :meth:`merged`), never
    in-place mutation.

    Attributes
    ----------
    system:
        ``"SIMD"`` or one of :data:`FLASHABACUS_SCHEDULERS`.
    spec:
        The hardware specification (Table 1 prototype by default).
    lwp_count:
        Optional override of the LWP count (used by ablations and the
        motivation sweeps); ``None`` keeps ``spec.lwp.count``.
    instances:
        Workload sizing: instances per workload (homogeneous/real-world)
        or instances per kernel (heterogeneous mixes).  ``None`` lets each
        experiment use its paper default.
    input_scale:
        Proportional shrink of the data sets; every reported ratio is
        invariant to it.
    track_power_series:
        Record the Fig. 15 power/FU time series (adds overhead).
    features:
        Free-form feature toggles for system-specific behavior, e.g.
        ``{"reserve_management_cores": False}``.
    scheduler_policy:
        Optional :class:`~repro.policy.PolicySpec` parameterizing the
        device scheduler (``None`` = the parameterless scheduler named by
        ``system``, which serializes and hashes exactly as before the
        policy layer existed).  When set, its name *is* the system: the
        ``system`` field is synced to it, and :meth:`with_system` clears
        a stale spec when retargeting.
    """

    system: str = "IntraO3"
    spec: HardwareSpec = field(default_factory=prototype_spec)
    lwp_count: Optional[int] = None
    instances: Optional[int] = None
    input_scale: float = 1.0
    track_power_series: bool = False
    features: Mapping[str, Any] = field(default_factory=dict)
    scheduler_policy: Optional[PolicySpec] = None

    def __post_init__(self) -> None:
        # The paper's four schedulers are checked statically so the common
        # path never touches the registry; the policy_names() fallback is
        # what lets a config name any *additionally* registered scheduler
        # (the registry imports its built-ins lazily on first lookup).
        if self.scheduler_policy is not None:
            policy = PolicySpec.coerce(self.scheduler_policy)
            if policy.name == BASELINE_SYSTEM or (
                    policy.name not in FLASHABACUS_SCHEDULERS
                    and policy.name not in policy_names("scheduler")):
                raise ValueError(
                    f"scheduler_policy must name a registered scheduler, "
                    f"got {policy.name!r}; choose from "
                    f"{policy_names('scheduler')}")
            object.__setattr__(self, "scheduler_policy", policy)
            # The spec names the scheduler; the system field mirrors it so
            # reports, sweeps and registry keys all agree.
            object.__setattr__(self, "system", policy.name)
        if self.system != BASELINE_SYSTEM \
                and self.system not in FLASHABACUS_SCHEDULERS \
                and self.system not in policy_names("scheduler"):
            raise ValueError(
                f"unknown system {self.system!r}; choose {BASELINE_SYSTEM} "
                f"or a registered scheduler "
                f"({policy_names('scheduler')})")
        # Deep-freeze the toggles: a config is a cache identity, so no
        # field may be mutable in place (the dataclass itself is frozen).
        object.__setattr__(self, "features",
                           MappingProxyType(dict(self.features)))

    def __hash__(self) -> int:
        # The generated hash would choke on the mapping field; the content
        # hash is consistent with field-wise __eq__.
        return hash(self.config_hash())

    # Mapping proxies do not pickle; ship the plain dict and re-freeze.
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["features"] = dict(state["features"])
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        state["features"] = MappingProxyType(dict(state["features"]))
        self.__dict__.update(state)

    # ------------------------------------------------------------------ #
    # Derived properties                                                   #
    # ------------------------------------------------------------------ #
    @property
    def is_baseline(self) -> bool:
        return self.system == BASELINE_SYSTEM

    def effective_spec(self) -> HardwareSpec:
        """The hardware spec with the ``lwp_count`` override applied."""
        if self.lwp_count is None:
            return self.spec
        return replace(self.spec, lwp=replace(self.spec.lwp,
                                              count=self.lwp_count))

    def feature(self, name: str, default: Any = None) -> Any:
        return self.features.get(name, default)

    def scheduler_spec(self) -> PolicySpec:
        """The policy spec the device scheduler is built from.

        ``scheduler_policy`` when set, else the parameterless spec named
        by ``system`` — so the accelerator has a single resolution path.
        """
        if self.scheduler_policy is not None:
            return self.scheduler_policy
        return PolicySpec(self.system)

    def with_system(self, system: str) -> "PlatformConfig":
        """Copy of this config targeting another system.

        A ``scheduler_policy`` naming a different scheduler is cleared
        (its params belong to the old scheduler); without clearing, the
        sync in ``__post_init__`` would override the requested system.
        """
        policy = self.scheduler_policy
        if policy is not None and policy.name != system:
            return replace(self, system=system, scheduler_policy=None)
        return replace(self, system=system)

    def with_overrides(self, **kwargs: Any) -> "PlatformConfig":
        """Copy of this config with dataclass fields replaced.

        Overriding ``system`` by name clears a ``scheduler_policy``
        naming a different scheduler, same as :meth:`with_system` —
        without clearing, the sync in ``__post_init__`` would override
        the requested system with the stale spec's name.
        """
        if "system" in kwargs and "scheduler_policy" not in kwargs \
                and self.scheduler_policy is not None \
                and self.scheduler_policy.name != kwargs["system"]:
            kwargs["scheduler_policy"] = None
        return replace(self, **kwargs)

    def merged(self, system: Optional[str] = None,
               spec: Optional[HardwareSpec] = None,
               lwp_count: Optional[int] = None,
               track_power_series: bool = False) -> "PlatformConfig":
        """Copy with explicit (non-default) arguments layered on top.

        The shared reconciliation used wherever a config meets individual
        keyword arguments (``run_system`` and the two system constructors):
        an explicit value wins over the config field, an omitted one keeps
        it.  Note the one-way ``track_power_series`` contract: ``False`` is
        indistinguishable from "not passed", so it cannot switch a config's
        ``True`` off.
        """
        config = self
        if system is not None and system != config.system:
            config = config.with_system(system)
        if spec is not None:
            config = replace(config, spec=spec)
        if lwp_count is not None:
            config = replace(config, lwp_count=lwp_count)
        if track_power_series and not config.track_power_series:
            config = replace(config, track_power_series=True)
        return config

    # ------------------------------------------------------------------ #
    # Serialization                                                        #
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        data = {
            "system": self.system,
            "spec": spec_to_dict(self.spec),
            "lwp_count": self.lwp_count,
            "instances": self.instances,
            "input_scale": self.input_scale,
            "track_power_series": self.track_power_series,
            "features": dict(self.features),
        }
        # Emitted only when set: configs that never touch the policy
        # layer serialize (and therefore hash / cache-key) byte-identical
        # to the pre-policy-layer format.
        if self.scheduler_policy is not None:
            data["scheduler_policy"] = self.scheduler_policy.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PlatformConfig":
        policy = data.get("scheduler_policy")
        return cls(
            system=data.get("system", "IntraO3"),
            spec=spec_from_dict(data.get("spec", {})),
            lwp_count=data.get("lwp_count"),
            instances=data.get("instances"),
            input_scale=data.get("input_scale", 1.0),
            track_power_series=data.get("track_power_series", False),
            features=dict(data.get("features", {})),
            scheduler_policy=(PolicySpec.from_dict(policy)
                              if policy is not None else None),
        )

    def config_hash(self) -> str:
        """Stable short hash of the canonical serialized form.

        Two configs hash equal iff their :meth:`to_dict` forms are equal,
        independent of process, dict ordering, or Python hash seed — which
        is what makes it usable as an on-disk cache key.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
