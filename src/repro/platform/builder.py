"""Single place the hardware substrate is assembled.

Historically ``baseline/system.py`` and ``core/accelerator.py`` each
hand-wired their own copies of the shared hardware (LWP cluster, DDR3L,
PCIe, power monitoring) plus their private parts (flash backbone and
crossbars vs. NVMe SSD and host storage stack).  :class:`PlatformBuilder`
centralizes that wiring: it turns a :class:`~repro.platform.PlatformConfig`
into a :class:`HardwareSubstrate`, and both systems build their software
layers (Flashvisor, Storengine, schedulers, OpenMP driver) on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, TYPE_CHECKING

from ..sim.engine import Environment
from ..hw.interconnect import Interconnect
from ..hw.lwp import LWPCluster
from ..hw.memory import DDR3L, Scratchpad
from ..hw.pcie import PCIeLink
from ..hw.power import EnergyAccountant, PowerMonitor
from ..hw.spec import HardwareSpec
from ..flash.backbone import FlashBackbone
from .config import BASELINE_SYSTEM, PlatformConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..baseline.host import HostCPU
    from ..baseline.ssd import NVMeSSD
    from ..baseline.storage_stack import HostStorageStack


#: Resolved hardware templates keyed by ``config.config_hash()``.
#: :class:`~repro.hw.spec.HardwareSpec` is a frozen dataclass tree, so
#: one resolved template is safely shared by every substrate built from
#: an equivalent config.  The payoff is in long-lived worker processes
#: (the orchestrator's persistent pool, the epoch-parallel cluster
#: workers): a sweep builds thousands of substrates from a handful of
#: distinct configs, and resolution work is paid once per distinct
#: config per process instead of once per substrate.
_TEMPLATE_CACHE: dict = {}


def cached_effective_spec(config: PlatformConfig) -> HardwareSpec:
    """``config.effective_spec()``, memoized by the config's stable hash."""
    key = config.config_hash()
    spec = _TEMPLATE_CACHE.get(key)
    if spec is None:
        spec = config.effective_spec()
        _TEMPLATE_CACHE[key] = spec
    return spec


def clear_template_cache() -> None:
    """Drop every cached hardware template (tests, memory pressure)."""
    _TEMPLATE_CACHE.clear()


@dataclass
class HardwareSubstrate:
    """The assembled hardware platform one system runs on.

    The common parts (environment, energy accounting, LWP cluster, DDR3L,
    PCIe) are always present; the FlashAbacus-only parts (scratchpad,
    crossbars, flash backbone) and the baseline-only parts (NVMe SSD, host
    CPU, host storage stack) are ``None`` on the other side.
    """

    config: PlatformConfig
    env: Environment
    spec: HardwareSpec
    energy: EnergyAccountant
    power_monitor: Optional[PowerMonitor]
    cluster: LWPCluster
    ddr: DDR3L
    pcie: PCIeLink
    # FlashAbacus side
    scratchpad: Optional[Scratchpad] = None
    interconnect: Optional[Interconnect] = None
    backbone: Optional[FlashBackbone] = None
    # Baseline (SIMD) side
    ssd: Optional["NVMeSSD"] = None
    host: Optional["HostCPU"] = None
    stack: Optional["HostStorageStack"] = None


class PlatformBuilder:
    """Assembles a :class:`HardwareSubstrate` from a :class:`PlatformConfig`."""

    def __init__(self, config: Optional[PlatformConfig] = None,
                 env: Optional[Environment] = None):
        self.config = config if config is not None else PlatformConfig()
        self.env = env if env is not None else Environment()

    # ------------------------------------------------------------------ #
    # Common parts                                                         #
    # ------------------------------------------------------------------ #
    def _common(self, reserve_management_cores: bool):
        spec = cached_effective_spec(self.config)
        energy = EnergyAccountant()
        monitor = (PowerMonitor(self.env)
                   if self.config.track_power_series else None)
        reserve = self.config.feature("reserve_management_cores",
                                      reserve_management_cores)
        cluster = LWPCluster(self.env, spec.lwp, energy, monitor,
                             reserve_management_cores=reserve)
        ddr = DDR3L(self.env, spec.memory, energy)
        pcie = PCIeLink(self.env, spec.pcie, energy)
        return spec, energy, monitor, cluster, ddr, pcie

    # ------------------------------------------------------------------ #
    # The two platform flavors                                             #
    # ------------------------------------------------------------------ #
    def build_flashabacus_substrate(self) -> HardwareSubstrate:
        """LWPs + DDR3L + scratchpad + crossbars + PCIe + flash backbone."""
        spec, energy, monitor, cluster, ddr, pcie = self._common(
            reserve_management_cores=True)
        return HardwareSubstrate(
            config=self.config,
            env=self.env,
            spec=spec,
            energy=energy,
            power_monitor=monitor,
            cluster=cluster,
            ddr=ddr,
            pcie=pcie,
            scratchpad=Scratchpad(self.env, spec.memory, energy),
            interconnect=Interconnect(self.env, spec.interconnect),
            backbone=FlashBackbone(self.env, spec.flash, energy,
                                   power_monitor=monitor),
        )

    def build_baseline_substrate(self) -> HardwareSubstrate:
        """LWPs + DDR3L + PCIe + NVMe SSD + host CPU + host storage stack."""
        # Imported lazily: ``repro.baseline`` imports this module to build
        # its substrate, so a top-level import would be circular.
        from ..baseline.host import HostCPU
        from ..baseline.ssd import NVMeSSD
        from ..baseline.storage_stack import HostStorageStack

        # The baseline reserves no Flashvisor/Storengine cores: every LWP
        # is an OpenMP worker.
        spec, energy, monitor, cluster, ddr, pcie = self._common(
            reserve_management_cores=False)
        return HardwareSubstrate(
            config=self.config,
            env=self.env,
            spec=spec,
            energy=energy,
            power_monitor=monitor,
            cluster=cluster,
            ddr=ddr,
            pcie=pcie,
            ssd=NVMeSSD(self.env, spec.ssd, energy),
            host=HostCPU(self.env, spec.host, energy),
            stack=HostStorageStack(self.env, spec.host, energy),
        )

    def build(self) -> HardwareSubstrate:
        """Build the substrate flavor ``config.system`` calls for."""
        if self.config.is_baseline:
            return self.build_baseline_substrate()
        return self.build_flashabacus_substrate()


def _check_flavor(config: PlatformConfig, baseline: bool) -> None:
    if baseline != config.is_baseline:
        if baseline:
            raise ValueError("BaselineSystem needs a SIMD config, got "
                             f"{config.system!r}")
        raise ValueError("FlashAbacusAccelerator needs a FlashAbacus "
                         "config, not the SIMD baseline")


def resolve_substrate(baseline: bool,
                      env: Optional[Environment] = None,
                      spec: Optional[HardwareSpec] = None,
                      track_power_series: bool = False,
                      system: Optional[str] = None,
                      lwp_count: Optional[int] = None,
                      config: Optional[PlatformConfig] = None,
                      substrate: Optional[HardwareSubstrate] = None
                      ) -> HardwareSubstrate:
    """Shared front-end of the two system constructors.

    Reconciles the legacy keyword arguments with ``config`` (explicit
    arguments override the corresponding config fields rather than being
    silently dropped), validates the config's flavor *before* paying for
    construction, and builds the substrate.  When a prebuilt ``substrate``
    is passed its config is authoritative: it is validated and returned
    as-is, and any *conflicting* argument (a different ``env``, ``config``,
    ``system``, ``spec``, ``lwp_count``, or a power-series request the
    substrate cannot honor) is an error rather than a silent ignore.
    """
    if substrate is not None:
        if env is not None and env is not substrate.env:
            raise ValueError(
                "pass either env= or substrate=, not both: a prebuilt "
                "substrate already owns its Environment")
        if config is not None and config != substrate.config:
            raise ValueError(
                "config= conflicts with the prebuilt substrate's config; "
                "rebuild the substrate or drop the argument")
        # Either the config's raw spec or the effective (lwp_count-applied)
        # spec the substrate was actually built with counts as "the same".
        if spec is not None and spec != substrate.config.spec \
                and spec != substrate.spec:
            raise ValueError(
                "spec= conflicts with the prebuilt substrate's config; "
                "rebuild the substrate or drop the argument")
        for name, given, actual in (
                ("system", system, substrate.config.system),
                ("lwp_count", lwp_count, substrate.config.lwp_count)):
            if given is not None and given != actual:
                raise ValueError(
                    f"{name}={given!r} conflicts with the prebuilt "
                    f"substrate's config; rebuild the substrate or drop "
                    f"the argument")
        if track_power_series and substrate.power_monitor is None:
            raise ValueError(
                "track_power_series=True conflicts with a prebuilt "
                "substrate built without a power monitor")
        _check_flavor(substrate.config, baseline)
        return substrate
    if config is None:
        kwargs = {
            "system": system or (BASELINE_SYSTEM if baseline else "IntraO3"),
            "track_power_series": track_power_series,
            "lwp_count": lwp_count,
        }
        if spec is not None:
            kwargs["spec"] = spec
        config = PlatformConfig(**kwargs)
    else:
        config = config.merged(system=system, spec=spec, lwp_count=lwp_count,
                               track_power_series=track_power_series)
    _check_flavor(config, baseline)
    builder = PlatformBuilder(config, env=env)
    return (builder.build_baseline_substrate() if baseline
            else builder.build_flashabacus_substrate())


def build_system(config: PlatformConfig,
                 env: Optional[Environment] = None) -> Any:
    """Instantiate the full system (hardware + software) for ``config``.

    Returns a :class:`repro.baseline.BaselineSystem` for ``SIMD`` and a
    :class:`repro.core.FlashAbacusAccelerator` for the FlashAbacus
    schedulers; both expose ``run_workload(kernels, name)``.
    """
    # Lazy imports: both system modules import this module.
    if config.is_baseline:
        from ..baseline.system import BaselineSystem
        return BaselineSystem(env=env, config=config)
    from ..core.accelerator import FlashAbacusAccelerator
    return FlashAbacusAccelerator(env=env, config=config)
