"""Platform layer: declarative platform description and substrate assembly.

This package sits between the device models (``repro.hw`` / ``repro.flash``
/ ``repro.baseline`` device files) and the two systems built on top of them
(:class:`repro.core.FlashAbacusAccelerator` and
:class:`repro.baseline.BaselineSystem`):

* :class:`PlatformConfig` — a serializable description of one platform
  configuration: which system/scheduler, the hardware spec, instance
  counts, input scale, and feature toggles.  Its stable
  :meth:`~PlatformConfig.config_hash` keys the experiment result cache.
* :class:`PlatformBuilder` — the single place the hardware substrate
  (LWP cluster, DDR3L, scratchpad, crossbars, PCIe, flash backbone or
  NVMe SSD + host storage stack) is assembled.  Both systems consume the
  :class:`HardwareSubstrate` it produces instead of hand-wiring parts.
* :class:`ClusterConfig` — a serializable fleet description for the
  scale-out layer (:mod:`repro.cluster`): one :class:`PlatformConfig` per
  device plus placement-policy knobs and an optional :class:`FaultSpec`
  health timeline, with its own stable ``config_hash``.
"""

from .config import (
    BASELINE_SYSTEM,
    FLASHABACUS_SCHEDULERS,
    PlatformConfig,
    spec_from_dict,
    spec_to_dict,
)
from .cluster import (
    HEALTH_STATES,
    PLACEMENT_POLICIES,
    ClusterConfig,
    FaultSpec,
)
from .builder import HardwareSubstrate, PlatformBuilder, build_system

__all__ = [
    "BASELINE_SYSTEM",
    "FLASHABACUS_SCHEDULERS",
    "PlatformConfig",
    "spec_from_dict",
    "spec_to_dict",
    "HEALTH_STATES",
    "PLACEMENT_POLICIES",
    "ClusterConfig",
    "FaultSpec",
    "HardwareSubstrate",
    "PlatformBuilder",
    "build_system",
]
