"""The single policy registry behind every pluggable decision point.

Five layers of the stack make a pluggable decision per unit of work —
which kernel runs next on the device (``scheduler``), whether a request
may enter a tenant queue (``admission``), which tenant queue the
front-end serves next (``dispatch``), which device shard a cluster
routes a request to (``placement``), and how many devices an elastic
fleet should hold right now (``autoscaler``).  Before this module each
family had
its own lookup idiom (a module dict, an if/elif factory, a hardcoded
loop, a name tuple); now every policy anywhere is one registered class,
addressable by ``(domain, name)`` and instantiable from a serializable
:class:`~repro.policy.spec.PolicySpec`:

    @register_policy("placement", "join_shortest_queue")
    class JoinShortestQueuePlacement(PlacementPolicy):
        ...

    policy = build_policy("placement", PolicySpec("join_shortest_queue"),
                          device_count=4)

Built-in policies register themselves when their home module is
imported; :func:`build_policy` / :func:`policy_class` import that module
lazily (:data:`DOMAIN_MODULES`), so looking a policy up never requires
the caller to know where it lives — and the registry module itself
imports nothing from the rest of ``repro``, so every layer may depend on
it without cycles.
"""

from __future__ import annotations

import importlib
import inspect
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Type

from .spec import PolicySpec

#: The five policy domains, one per pluggable decision point in the stack.
POLICY_DOMAINS = ("scheduler", "admission", "dispatch", "placement",
                  "autoscaler")

#: Where each domain's built-in policies register themselves; imported
#: lazily on first lookup so the registry stays import-cycle-free.  A
#: domain may list several home modules — the learned species
#: (:mod:`repro.policy.learned`) registers admission/dispatch/placement
#: policies alongside the static built-ins.
DOMAIN_MODULES: Dict[str, Tuple[str, ...]] = {
    "scheduler": ("repro.core.schedulers",),
    "admission": ("repro.serve.admission", "repro.policy.learned"),
    "dispatch": ("repro.serve.dispatch", "repro.policy.learned"),
    "placement": ("repro.cluster.placement", "repro.policy.learned"),
    "autoscaler": ("repro.cluster.autoscale",),
}

#: Alternate spellings accepted by lookups, kept for the legacy string
#: knobs (``make_admission("always")`` predates the registry).
DOMAIN_ALIASES: Dict[str, Dict[str, str]] = {
    "admission": {"always": "none"},
}

_REGISTRY: Dict[str, Dict[str, type]] = {d: {} for d in POLICY_DOMAINS}


def _check_domain(domain: str) -> None:
    if domain not in _REGISTRY:
        raise ValueError(f"unknown policy domain {domain!r}; "
                         f"choose from {sorted(_REGISTRY)}")


def register_policy(domain: str,
                    name: Optional[str] = None) -> Callable[[type], type]:
    """Class decorator: record the policy under ``(domain, name)``.

    ``name`` defaults to the class's ``name`` attribute.  Registering two
    different classes under one key is an error; re-registering the same
    class — same module and qualified name, e.g. on module reload, which
    creates a fresh class object — replaces the entry silently.  The
    decorator stamps ``policy_domain`` / ``policy_name`` onto the class
    so an instance can always say what registry entry produced it.
    """
    _check_domain(domain)

    def decorator(cls: type) -> type:
        policy_name = name if name is not None else getattr(cls, "name", None)
        if not policy_name or not isinstance(policy_name, str):
            raise ValueError(
                f"policy class {cls.__name__} needs a name: pass one to "
                f"register_policy() or set a class-level 'name' attribute")
        existing = _REGISTRY[domain].get(policy_name)
        if existing is not None and existing is not cls \
                and (existing.__module__, existing.__qualname__) \
                != (cls.__module__, cls.__qualname__):
            raise ValueError(
                f"{domain} policy {policy_name!r} is already registered "
                f"for {existing.__name__}")
        _REGISTRY[domain][policy_name] = cls
        cls.policy_domain = domain
        cls.policy_name = policy_name
        return cls

    return decorator


def ensure_domain_loaded(domain: str) -> None:
    """Import the modules that register ``domain``'s built-in policies."""
    _check_domain(domain)
    for module in DOMAIN_MODULES.get(domain, ()):
        importlib.import_module(module)


def policy_names(domain: str) -> List[str]:
    """Sorted names registered under ``domain`` (built-ins included)."""
    ensure_domain_loaded(domain)
    return sorted(_REGISTRY[domain])


def policy_class(domain: str, name: str) -> Type[Any]:
    """The class registered under ``(domain, name)``.

    Raises :class:`ValueError` naming the sorted valid choices when the
    name is unknown — every mistyped policy string anywhere in the stack
    funnels through here and gets the same actionable message.
    """
    ensure_domain_loaded(domain)
    canonical = DOMAIN_ALIASES.get(domain, {}).get(name, name)
    try:
        return _REGISTRY[domain][canonical]
    except KeyError:
        raise ValueError(
            f"unknown {domain} policy {name!r}; "
            f"choose from {sorted(_REGISTRY[domain])}") from None


def policy_param_names(domain: str, name: str) -> List[str]:
    """Sorted constructor parameter names of one registered policy."""
    accepted, _ = _constructor_params(policy_class(domain, name))
    return sorted(accepted)


def _constructor_params(cls: type):
    """(accepted keyword names, accepts-arbitrary-kwargs) of ``cls``."""
    if cls.__init__ is object.__init__:
        # No constructor of its own: object.__init__'s (*args, **kwargs)
        # signature is a lie — it accepts nothing.
        return set(), False
    signature = inspect.signature(cls.__init__)
    accepted = set()
    var_keyword = False
    for parameter in signature.parameters.values():
        if parameter.name == "self":
            continue
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            var_keyword = True
        elif parameter.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                                inspect.Parameter.KEYWORD_ONLY):
            accepted.add(parameter.name)
    return accepted, var_keyword


def build_policy(domain: str, spec: Any, **context: Any) -> Any:
    """Instantiate the policy ``spec`` names, merging call-site context.

    ``spec`` may be a :class:`PolicySpec`, a bare name string, or a
    ``{"name": ..., "params": ...}`` dict (:meth:`PolicySpec.coerce`).
    ``context`` carries values only the call site knows (the device count
    a placement policy routes over, a scheduler's worker count, default
    dispatch weights); each context key is passed through only when the
    policy's constructor *names* it (never smuggled through a
    ``**kwargs`` catch-all), and an explicit spec param always wins over
    context.  Unknown spec params raise with the sorted list of
    parameters the policy does accept; a constructor with ``**kwargs``
    opts out of that validation for spec params only.
    """
    spec = PolicySpec.coerce(spec)
    cls = policy_class(domain, spec.name)
    accepted, var_keyword = _constructor_params(cls)
    kwargs: Dict[str, Any] = {
        key: value for key, value in context.items() if key in accepted}
    if not var_keyword:
        unknown = sorted(set(spec.params) - accepted)
        if unknown:
            raise ValueError(
                f"unknown parameter{'s' if len(unknown) > 1 else ''} "
                f"{unknown} for {domain} policy {spec.name!r}; "
                f"valid parameters: {sorted(accepted)}")
    kwargs.update(spec.params)
    return cls(**kwargs)


def policy_is_learned(domain: str, spec: Any) -> bool:
    """Whether ``spec`` names a learned (feedback-driven) policy.

    The species flag, not a name list: any class registering with
    ``learned = True`` is recognized by the fast-forward refusal, the
    parallel-session guard and the grid's cache-key resolution.
    """
    spec = PolicySpec.coerce(spec)
    return bool(getattr(policy_class(domain, spec.name), "learned", False))


def resolved_policy_spec(domain: str, spec: Any) -> PolicySpec:
    """``spec`` with cache-relevant defaults materialized for learned cells.

    Static policies pass through untouched, so every pre-existing
    serialized form — and every cache key derived from it — stays
    byte-identical.  For the learned species (``learned = True`` on the
    class) the constructor defaults *are* behavior (warm-up length,
    exploration schedule, retrain cadence), so a bare spec is resolved to
    carry every defaulted constructor param explicitly: a retuned default
    can then never alias a result cached under the old default.  Params
    named in the class's ``context_params`` (the scenario-seed plumbing)
    are call-site context, not configuration — they stay out of the
    resolved spec unless the caller set them explicitly, since an
    explicit spec param would override the session's seed context.
    """
    spec = PolicySpec.coerce(spec)
    cls = policy_class(domain, spec.name)
    if not getattr(cls, "learned", False):
        return spec
    context = set(getattr(cls, "context_params", ()))
    params: Dict[str, Any] = {}
    for parameter in inspect.signature(cls.__init__).parameters.values():
        if parameter.name == "self" or parameter.name in context:
            continue
        if parameter.kind not in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                                  inspect.Parameter.KEYWORD_ONLY):
            continue
        if parameter.default is inspect.Parameter.empty:
            continue            # required params (device_count) are context
        params[parameter.name] = parameter.default
    params.update(spec.params)
    return PolicySpec(spec.name, params)


def registered_policies(domain: str) -> Mapping[str, type]:
    """Read-only snapshot of ``domain``'s registry (name -> class)."""
    ensure_domain_loaded(domain)
    return dict(_REGISTRY[domain])
