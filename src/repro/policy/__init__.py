"""Unified policy layer: one registry + serializable specs for all domains.

Every pluggable decision point in the stack — kernel ``scheduler`` on the
device, request ``admission`` at the front-end, tenant-queue ``dispatch``
order, and device ``placement`` in the cluster — resolves through the one
decorator-based registry in this package, and is configured by a
serializable :class:`PolicySpec` (name + params) that hashes into the
experiment cache key like any other config knob.

See ARCHITECTURE.md ("Policy layer") for the registry contract.
"""

from .registry import (
    DOMAIN_ALIASES,
    DOMAIN_MODULES,
    POLICY_DOMAINS,
    build_policy,
    ensure_domain_loaded,
    policy_class,
    policy_is_learned,
    policy_names,
    policy_param_names,
    register_policy,
    registered_policies,
    resolved_policy_spec,
)
from .spec import PolicySpec

# Imported after registry/spec: feedback is pure-Python plain data, but
# keeping it last preserves the package's no-cycle initialization order.
from .feedback import (  # noqa: E402
    FeedbackEvent,
    FeedbackHook,
    learned_snapshot,
    wire_feedback,
)

__all__ = [
    "DOMAIN_ALIASES",
    "DOMAIN_MODULES",
    "POLICY_DOMAINS",
    "FeedbackEvent",
    "FeedbackHook",
    "PolicySpec",
    "build_policy",
    "ensure_domain_loaded",
    "learned_snapshot",
    "policy_class",
    "policy_is_learned",
    "policy_names",
    "policy_param_names",
    "register_policy",
    "registered_policies",
    "resolved_policy_spec",
    "wire_feedback",
]
