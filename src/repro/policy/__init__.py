"""Unified policy layer: one registry + serializable specs for all domains.

Every pluggable decision point in the stack — kernel ``scheduler`` on the
device, request ``admission`` at the front-end, tenant-queue ``dispatch``
order, and device ``placement`` in the cluster — resolves through the one
decorator-based registry in this package, and is configured by a
serializable :class:`PolicySpec` (name + params) that hashes into the
experiment cache key like any other config knob.

See ARCHITECTURE.md ("Policy layer") for the registry contract.
"""

from .registry import (
    DOMAIN_ALIASES,
    DOMAIN_MODULES,
    POLICY_DOMAINS,
    build_policy,
    ensure_domain_loaded,
    policy_class,
    policy_names,
    policy_param_names,
    register_policy,
    registered_policies,
)
from .spec import PolicySpec

__all__ = [
    "DOMAIN_ALIASES",
    "DOMAIN_MODULES",
    "POLICY_DOMAINS",
    "PolicySpec",
    "build_policy",
    "ensure_domain_loaded",
    "policy_class",
    "policy_names",
    "policy_param_names",
    "register_policy",
    "registered_policies",
]
