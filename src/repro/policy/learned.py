"""The learned policy species: policies that adapt online from feedback.

Every static policy in the registry acts on fixed thresholds; the
policies here close the loop instead, learning from the
:class:`~repro.policy.feedback.FeedbackEvent` stream delivered on
request completion:

* :class:`AdaptiveAdmission` (``admission``/``adaptive_admission``) —
  online ridge regression from front-end backlog features to observed
  end-to-end latency; rejects requests whose *predicted* latency misses
  the SLO, with seeded epsilon exploration so the model keeps sampling
  the rejected region.
* :class:`EpsilonGreedyDispatch` (``dispatch``/``epsilon_greedy_dispatch``)
  — per-tenant bandit over SLO-hit reward: serve the non-empty tenant
  whose requests have been meeting their SLOs, with decaying seeded
  epsilon exploration.
* :class:`LinUCBPlacement` (``placement``/``linucb_placement``) — a
  LinUCB-style contextual bandit with one linear model per device arm,
  predicting completion latency from the shard's queue state; routes to
  the arm with the lowest uncertainty-charged cost estimate, so it
  discovers slow devices in heterogeneous fleets without being told
  their speed.

All three share :class:`OnlineLinearModel` (exact online ridge
regression over tiny feature vectors, refit on a periodic cadence) and
:class:`LearnedPolicyMixin`, which fixes the species-wide contract:

* ``learned = True`` — how the wiring (feedback hooks, report
  snapshots), the fast-forward refusal and the parallel-session guard
  recognize the species without name lists.
* Determinism per seed: every exploration draw comes from a
  ``random.Random`` derived from the scenario seed (plumbed through
  ``build_policy`` context, see ``context_params``) — never wall clock —
  so same-seed runs are byte-identical, snapshots included.
* ``state_snapshot()`` — JSON-safe internal state (feedback/exploration
  counters, model coefficients) serialized into the report's ``learned``
  field, so exploration-schedule drift is golden-visible.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.placement import PlacementPolicy
from ..serve.admission import AdmissionController, FrontendView
from ..serve.dispatch import DispatchPolicy
from ..serve.request import Request
from .feedback import FeedbackEvent, FeedbackHook
from .registry import register_policy


def _solve(matrix: List[List[float]], rhs: List[float]) -> List[float]:
    """Solve ``matrix @ x = rhs`` by Gaussian elimination with pivoting.

    The matrices here are tiny (d <= 4) ridge-regularized Gram matrices,
    so this is a handful of flops per call and always well-conditioned
    (the ridge term keeps every pivot away from zero).
    """
    size = len(rhs)
    a = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(size):
        pivot = max(range(col, size), key=lambda r: abs(a[r][col]))
        a[col], a[pivot] = a[pivot], a[col]
        scale = a[col][col]
        for r in range(col + 1, size):
            factor = a[r][col] / scale
            if factor:
                for c in range(col, size + 1):
                    a[r][c] -= factor * a[col][c]
    x = [0.0] * size
    for r in range(size - 1, -1, -1):
        acc = a[r][size]
        for c in range(r + 1, size):
            acc -= a[r][c] * x[c]
        x[r] = acc / a[r][r]
    return x


class OnlineLinearModel:
    """Exact online ridge regression with a periodic refit cadence.

    Maintains the Gram matrix ``A = ridge*I + sum(x xᵀ)`` and moment
    vector ``b = sum(y x)`` incrementally; the coefficient vector
    ``theta = A⁻¹ b`` is refit every ``retrain_every`` observations
    (and on the first), so prediction cost between refits is one dot
    product.  :meth:`uncertainty` is the LinUCB confidence width
    ``sqrt(xᵀ A⁻¹ x)`` — wide for feature directions the model has not
    seen, shrinking as observations accumulate.
    """

    def __init__(self, dim: int, ridge: float = 1.0,
                 retrain_every: int = 16):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if ridge <= 0:
            raise ValueError("ridge must be positive")
        if retrain_every < 1:
            raise ValueError("retrain_every must be >= 1")
        self.dim = dim
        self.ridge = ridge
        self.retrain_every = retrain_every
        self.count = 0
        self.refits = 0
        self._gram = [[ridge if r == c else 0.0 for c in range(dim)]
                      for r in range(dim)]
        self._moment = [0.0] * dim
        self._theta = [0.0] * dim

    def observe(self, features: Sequence[float], target: float) -> None:
        """Fold one (features, target) sample into the running moments."""
        gram = self._gram
        for r, xr in enumerate(features):
            if xr:
                row = gram[r]
                for c, xc in enumerate(features):
                    row[c] += xr * xc
            self._moment[r] += target * xr
        self.count += 1
        if self.count == 1 or self.count % self.retrain_every == 0:
            self.refit()

    def refit(self) -> None:
        """Recompute ``theta`` from the current moments."""
        self._theta = _solve(self._gram, self._moment)
        self.refits += 1

    def predict(self, features: Sequence[float]) -> float:
        """Model estimate for ``features`` (0.0 before any refit)."""
        return sum(t * x for t, x in zip(self._theta, features))

    def uncertainty(self, features: Sequence[float]) -> float:
        """LinUCB confidence width ``sqrt(xᵀ A⁻¹ x)`` at ``features``."""
        solved = _solve(self._gram, list(features))
        return max(0.0, sum(s * x for s, x in zip(solved, features))) ** 0.5

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe state for report serialization."""
        return {"count": self.count, "refits": self.refits,
                "theta": list(self._theta)}


class LearnedPolicyMixin(FeedbackHook):
    """Species-wide contract: seeded RNG, counters, state snapshots.

    Concrete policies call :meth:`_init_learned` from their constructor
    and implement :meth:`_learn`; the mixin owns the feedback counter
    (the reward-accounting invariant: exactly one increment per
    completed request) and the snapshot skeleton.
    """

    #: How wiring, fast-forward and the parallel guard recognize the
    #: species (never by name lists).
    learned = True
    #: Constructor params that are call-site context, not configuration:
    #: they are plumbed by the session (from the scenario seed) and must
    #: stay out of resolved cache keys (see ``resolved_policy_spec``).
    context_params = ("seed",)

    def _init_learned(self, seed: int, tag: str) -> None:
        # The RNG is derived from the scenario seed and the policy's
        # registry identity — never wall clock — and python seeds string
        # arguments via sha512, so the stream is process-stable.
        self.seed = int(seed)
        self.rng = random.Random(f"repro-learned:{tag}:{int(seed)}")
        self.feedback_events = 0
        self.reroute_events = 0
        self.explore_count = 0
        self.decisions = 0

    # ------------------------------------------------------------------ #
    # FeedbackHook                                                         #
    # ------------------------------------------------------------------ #
    def on_feedback(self, event: FeedbackEvent) -> None:
        """Count and learn from one completed request."""
        self.feedback_events += 1
        self._learn(event)

    def _learn(self, event: FeedbackEvent) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Snapshots                                                            #
    # ------------------------------------------------------------------ #
    def state_snapshot(self) -> Dict[str, object]:
        """JSON-safe internal state, serialized into report ``learned``."""
        snapshot: Dict[str, object] = {
            "policy": self.policy_name,
            "seed": self.seed,
            "decisions": self.decisions,
            "feedback_events": self.feedback_events,
            "explore_count": self.explore_count,
            "reroute_events": self.reroute_events,
        }
        snapshot.update(self._snapshot_extra())
        return snapshot

    def _snapshot_extra(self) -> Dict[str, object]:
        return {}


@register_policy("admission")
class AdaptiveAdmission(LearnedPolicyMixin, AdmissionController):
    """Admission that learns a latency model of the front-end it guards.

    Each arrival is scored by an online ridge regression from backlog
    features — (1, backlog waves, in-flight fill) — to observed
    end-to-end latency; requests whose predicted latency exceeds
    ``slo_s * slack_factor`` are rejected.  The model predicts the
    *mean* latency at the observed backlog while the SLO is a bar every
    request must clear, so the default ``slack_factor`` leaves tail
    headroom below the objective.  During the seeded warm-up (the first
    ``warmup`` feedback events) everything under the backstop is
    admitted so the model sees data; afterwards an epsilon draw
    occasionally admits a would-be-reject so the model keeps observing
    the region it is fencing off.  ``backstop_waves`` bounds the backlog
    in dispatch waves regardless of the model — a safety net while the
    model is young or wrong.
    """

    name = "adaptive_admission"

    def __init__(self, seed: int = 0, warmup: int = 32,
                 epsilon: float = 0.05, slack_factor: float = 0.7,
                 ridge: float = 1.0, retrain_every: int = 16,
                 backstop_waves: float = 8.0):
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        if not 0.0 <= epsilon < 1.0:
            raise ValueError("epsilon must be in [0, 1)")
        if slack_factor <= 0:
            raise ValueError("slack_factor must be positive")
        if backstop_waves <= 0:
            raise ValueError("backstop_waves must be positive")
        self._init_learned(seed, f"admission:{self.name}")
        self.warmup = warmup
        self.epsilon = epsilon
        self.slack_factor = slack_factor
        self.backstop_waves = backstop_waves
        self.model = OnlineLinearModel(3, ridge=ridge,
                                       retrain_every=retrain_every)
        # Features of admitted requests, keyed by request id until the
        # completion feedback pops them (rejected requests never enter).
        self._pending: Dict[int, Tuple[float, float, float]] = {}

    def _features(self, frontend: FrontendView
                  ) -> Tuple[float, float, float]:
        backlog = frontend.total_queued + frontend.in_flight
        capacity = max(1, frontend.dispatch_capacity)
        return (1.0, backlog / capacity, frontend.in_flight / capacity)

    def admit(self, request: Request, frontend: FrontendView) -> bool:
        """Admit unless the learned latency estimate misses the SLO."""
        self.decisions += 1
        backlog = frontend.total_queued + frontend.in_flight
        capacity = max(1, frontend.dispatch_capacity)
        if backlog >= capacity * self.backstop_waves:
            return False
        features = self._features(frontend)
        if request.slo_s is None:
            admit = True
        elif self.feedback_events < self.warmup:
            # Warm-up: gather observations across the whole (backstopped)
            # feature range before trusting the model.
            self.explore_count += 1
            admit = True
        else:
            predicted = self.model.predict(features)
            admit = predicted <= request.slo_s * self.slack_factor
            if not admit and self.rng.random() < self.epsilon:
                # Exploration: admit a would-be-reject so feedback keeps
                # covering the region the model currently fences off.
                self.explore_count += 1
                admit = True
        if admit:
            self._pending[request.request_id] = features
        return admit

    def _learn(self, event: FeedbackEvent) -> None:
        features = self._pending.pop(event.request_id, None)
        if features is not None:
            self.model.observe(features, event.latency_s)

    def _snapshot_extra(self) -> Dict[str, object]:
        return {"model": self.model.snapshot(),
                "pending": len(self._pending)}


@register_policy("dispatch")
class EpsilonGreedyDispatch(LearnedPolicyMixin, DispatchPolicy):
    """Serve the tenant queue where prompt dispatch decides the outcome.

    One bandit arm per tenant accumulates *realized-urgency* reward: a
    completion inside its SLO earns its ``latency / slo`` ratio (capped
    at 1), a miss or an SLO-less completion earns 0.  Tenants whose
    requests barely clear a tight objective therefore out-reward both
    loose-SLO tenants (met long before the bar — dispatch order never
    decided anything) and hopeless ones (missed regardless), which is
    exactly the priority a deadline scheduler wants.  Dispatch exploits
    the best non-empty arm by mean reward (unpulled arms count as 1, so
    a freshly onboarded tenant is tried immediately; ties to declaration
    order).  Exploration is a seeded epsilon draw decaying
    multiplicatively per decision from ``epsilon`` down to
    ``min_epsilon``; the first ``warmup`` feedback events always
    explore, so every arm gets samples before any is trusted.
    """

    name = "epsilon_greedy_dispatch"

    def __init__(self, seed: int = 0, warmup: int = 16,
                 epsilon: float = 0.1, epsilon_decay: float = 0.998,
                 min_epsilon: float = 0.01):
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if not 0.0 < epsilon_decay <= 1.0:
            raise ValueError("epsilon_decay must be in (0, 1]")
        if not 0.0 <= min_epsilon <= epsilon:
            raise ValueError("min_epsilon must be in [0, epsilon]")
        self._init_learned(seed, f"dispatch:{self.name}")
        self.warmup = warmup
        self.epsilon = epsilon
        self.epsilon_decay = epsilon_decay
        self.min_epsilon = min_epsilon
        self._order: Sequence[str] = ()
        self._pulls: Dict[str, int] = {}
        self._reward: Dict[str, float] = {}

    def bind(self, tenants: Sequence[str]) -> None:
        self._order = list(tenants)
        self._pulls = {t: 0 for t in tenants}
        self._reward = {t: 0.0 for t in tenants}

    def current_epsilon(self) -> float:
        """The decayed exploration rate at the current decision count."""
        return max(self.min_epsilon,
                   self.epsilon * self.epsilon_decay ** self.decisions)

    def select(self, queues) -> Optional[str]:
        nonempty = [t for t in self._order if queues[t]]
        if not nonempty:
            return None
        self.decisions += 1
        if self.feedback_events < self.warmup \
                or self.rng.random() < self.current_epsilon():
            self.explore_count += 1
            return nonempty[self.rng.randrange(len(nonempty))]
        def mean_reward(tenant: str) -> float:
            pulls = self._pulls[tenant]
            return self._reward[tenant] / pulls if pulls else 1.0
        best = nonempty[0]
        best_mean = mean_reward(best)
        for tenant in nonempty[1:]:
            mean = mean_reward(tenant)
            if mean > best_mean:
                best, best_mean = tenant, mean
        return best

    def _learn(self, event: FeedbackEvent) -> None:
        if event.tenant in self._pulls:
            self._pulls[event.tenant] += 1
            if event.slo_met and event.slo_s:
                self._reward[event.tenant] += min(
                    1.0, event.latency_s / event.slo_s)

    def _snapshot_extra(self) -> Dict[str, object]:
        return {"arms": {tenant: {"pulls": self._pulls[tenant],
                                  "reward": self._reward[tenant]}
                         for tenant in self._order}}


@register_policy("placement")
class LinUCBPlacement(LearnedPolicyMixin, PlacementPolicy):
    """LinUCB contextual bandit over device shards.

    One :class:`OnlineLinearModel` per device arm predicts completion
    latency from the shard's visible load — features (1,
    outstanding/capacity) — so each arm's fitted slope is its effective
    drain cost per outstanding request: the generalization of
    least-outstanding placement with the per-device service speed
    *learned* instead of assumed equal.  Each arrival routes to the arm
    minimizing the *conservative* cost estimate
    ``predict + alpha * uncertainty`` — pessimism, not optimism, because
    the failure mode of a latency-blind router is the dogpile: a linear
    model extrapolating flat beyond an arm's observed load range would
    under-price a slow device faster than its completion feedback can
    correct, and every misrouted arrival compounds the backlog.
    Charging for uncertainty makes an arm's unobserved load region look
    expensive, so exploitation stays inside what feedback has covered;
    exploration belongs to the seeded warm-up and epsilon, and arms the
    model has never observed are never exploited blind.  The first
    ``warmup`` decisions route by capacity-normalized least-outstanding
    — a sane static policy that still sends every arm samples, so the
    warm-up costs nothing — and a seeded epsilon that decays
    multiplicatively per decision keeps brief exploration alive
    afterwards.  Arms are created on demand, so elastic scale-up devices
    join the bandit seamlessly.

    Unlike the static placement policies this one is *stateful across
    the fleet*, which is exactly why the epoch-parallel cluster runner
    refuses learned placement: per-worker copies of the bandit would
    diverge from the serial model (see
    :class:`~repro.cluster.parallel.ParallelClusterSession`).
    """

    name = "linucb_placement"

    def __init__(self, device_count: int, seed: int = 0, warmup: int = 24,
                 alpha: float = 0.1, epsilon: float = 0.05,
                 epsilon_decay: float = 0.99, min_epsilon: float = 0.0,
                 ridge: float = 1.0, retrain_every: int = 8):
        if device_count < 1:
            raise ValueError("device_count must be >= 1")
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if not 0.0 <= epsilon < 1.0:
            raise ValueError("epsilon must be in [0, 1)")
        if not 0.0 < epsilon_decay <= 1.0:
            raise ValueError("epsilon_decay must be in (0, 1]")
        if not 0.0 <= min_epsilon <= max(epsilon, 0.0):
            raise ValueError("min_epsilon must be in [0, epsilon]")
        self._init_learned(seed, f"placement:{self.name}")
        self.device_count = device_count
        self.warmup = warmup
        self.alpha = alpha
        self.epsilon = epsilon
        self.epsilon_decay = epsilon_decay
        self.min_epsilon = min_epsilon
        self.ridge = ridge
        self.retrain_every = retrain_every
        self._arms: Dict[int, OnlineLinearModel] = {}
        # Chosen (device, features) per routed request id; the completion
        # feedback pops it.  A reroute re-selects and overwrites, so the
        # observed latency credits the device that actually served.
        self._pending: Dict[int, Tuple[int, Tuple[float, float]]] = {}

    def _arm(self, index: int) -> OnlineLinearModel:
        arm = self._arms.get(index)
        if arm is None:
            arm = OnlineLinearModel(2, ridge=self.ridge,
                                    retrain_every=self.retrain_every)
            self._arms[index] = arm
        return arm

    @staticmethod
    def _features(shard) -> Tuple[float, float]:
        capacity = max(1, shard.capacity)
        return (1.0, (shard.queued + shard.in_flight) / capacity)

    @staticmethod
    def _least_outstanding(shards):
        """Capacity-normalized least-outstanding, ties to lowest index."""
        return min(shards, key=lambda s: (
            (s.queued + s.in_flight) / max(1, s.capacity), s.index))

    def current_epsilon(self) -> float:
        """The decayed exploration rate at the current decision count."""
        return max(self.min_epsilon,
                   self.epsilon * self.epsilon_decay ** self.decisions)

    def select(self, request: Request, shards):
        """Route to the arm with the best optimistic latency estimate."""
        self.decisions += 1
        if self.decisions <= self.warmup:
            # Warm-up routes like the static least-outstanding policy:
            # no exploration tax, and busy periods still push overflow
            # onto every arm, which is all the model needs to calibrate.
            choice = self._least_outstanding(shards)
        elif self.rng.random() < self.current_epsilon():
            choice = shards[self.rng.randrange(len(shards))]
            self.explore_count += 1
        else:
            choice = None
            best = None
            for shard in shards:
                arm = self._arm(shard.index)
                if arm.count == 0:
                    # Never exploit an arm the model has not observed —
                    # a zero-data prediction of 0.0 latency would
                    # dogpile every arrival onto the unknown device.
                    continue
                features = self._features(shard)
                score = (arm.predict(features)
                         + self.alpha * arm.uncertainty(features))
                if best is None or score < best:
                    choice, best = shard, score
            if choice is None:
                choice = self._least_outstanding(shards)
        self._pending[request.request_id] = (
            choice.index, self._features(choice))
        return choice

    def on_reroute(self, record, from_device: int, to_device: int) -> None:
        """A queued request was moved (device failure or scale-down)."""
        self.reroute_events += 1

    def _learn(self, event: FeedbackEvent) -> None:
        pending = self._pending.pop(event.request_id, None)
        if pending is not None:
            device, features = pending
            self._arm(device).observe(features, event.latency_s)

    def _snapshot_extra(self) -> Dict[str, object]:
        return {"arms": {str(index): self._arms[index].snapshot()
                         for index in sorted(self._arms)},
                "pending": len(self._pending)}


__all__ = [
    "AdaptiveAdmission",
    "EpsilonGreedyDispatch",
    "LearnedPolicyMixin",
    "LinUCBPlacement",
    "OnlineLinearModel",
]
