"""Serializable policy selection: a name plus a params dict.

A :class:`PolicySpec` is how configurations *refer to* a policy without
holding the (stateful, unserializable) policy object itself: the registry
name plus the constructor parameters.  Like every config object in the
repo it round-trips losslessly through plain dicts, so the specs folded
into :meth:`~repro.platform.PlatformConfig.config_hash` and the scenario
dicts key the experiment result cache exactly like any other knob.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Dict, Mapping, Union


@dataclass(frozen=True)
class PolicySpec:
    """One policy selection: registry ``name`` + constructor ``params``.

    Frozen and deep-frozen (the params mapping is wrapped read-only):
    specs are embedded in cache-identity configs, so no field may be
    mutable in place.  Params must be JSON-serializable plain data —
    :meth:`canonical` is the content identity the experiment cache keys
    on, and it is computed eagerly so a non-serializable param fails at
    construction, not deep inside a sweep.  Equality and hashing both
    use the canonical form, so the eq/hash contract holds by
    construction (two specs are equal iff they serialize identically).
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("a policy spec needs a non-empty name string")
        object.__setattr__(self, "params",
                           MappingProxyType(dict(self.params)))
        try:
            canonical = json.dumps(self.to_dict(), sort_keys=True,
                                   separators=(",", ":"))
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"policy spec params must be JSON-serializable plain "
                f"data (they key the experiment cache): {exc}") from None
        object.__setattr__(self, "_canonical", canonical)

    # Mapping proxies do not pickle; ship the plain dict and re-freeze
    # (specs cross the orchestrator's multiprocessing pool inside
    # configs and scenarios).
    def __getstate__(self) -> Dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(name=state["name"], params=state["params"])

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, PolicySpec):
            return NotImplemented
        return self._canonical == other._canonical

    def __hash__(self) -> int:
        return hash(self._canonical)

    # ------------------------------------------------------------------ #
    # Evolution                                                           #
    # ------------------------------------------------------------------ #
    def with_params(self, **params: Any) -> "PolicySpec":
        """Copy of this spec with ``params`` layered on top."""
        return PolicySpec(self.name, {**self.params, **params})

    # ------------------------------------------------------------------ #
    # Serialization                                                       #
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicySpec":
        if "name" not in data:
            raise ValueError(
                f"a policy spec dict needs a 'name' key (and optional "
                f"'params'), got keys {sorted(data)}")
        return cls(name=str(data["name"]),
                   params=dict(data.get("params", {})))

    @classmethod
    def coerce(cls, value: Union["PolicySpec", str, Mapping[str, Any]]
               ) -> "PolicySpec":
        """Accept the three spellings a policy selection arrives in.

        A :class:`PolicySpec` passes through, a bare string becomes a
        parameterless spec, and a ``{"name": ..., "params": ...}`` dict
        is deserialized — so every API taking a policy accepts all three.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(name=value)
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        raise TypeError(f"cannot interpret {value!r} as a policy spec; "
                        f"pass a PolicySpec, a name string, or a "
                        f"{{'name': ..., 'params': ...}} dict")

    def canonical(self) -> str:
        """Canonical JSON form (sorted keys, no whitespace)."""
        return self._canonical

    def config_hash(self) -> str:
        """Stable short hash of the canonical form (cache-key style)."""
        return hashlib.sha256(self._canonical.encode("utf-8")) \
            .hexdigest()[:16]
