"""Completion feedback for learned policies.

The learned policy species (:mod:`repro.policy.learned`) closes the loop
between decisions and observed outcomes: every request completion is
folded into one :class:`FeedbackEvent` — observed latency, SLO hit/miss,
how often a failure or scale-down rerouted the request — and delivered to
every learned policy attached to the run through the
:class:`FeedbackHook` interface.

The delivery path rides the completion callback the obs layer already
taps (:meth:`~repro.serve.frontend.ServingFrontend._on_complete`): a
front-end holds a (normally empty) ``feedback_hooks`` list, and the
session wiring registers exactly the policies that declare
``learned = True`` — its own admission controller and dispatch policy,
plus the fleet-level placement policy in cluster runs (registered on
*every* shard front-end, scale-up shards included, since a placement
decision's outcome surfaces wherever the request completes).  Runs
without learned policies keep an empty hook list and pay one length
check per completion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional


@dataclass(frozen=True)
class FeedbackEvent:
    """One completed request, as a learned policy observes it.

    ``device`` is the shard index the request *completed* on (0 for
    single-device serving); after a reroute it differs from the device
    the placement policy originally chose, and ``reroutes`` counts how
    many times the request was moved.  ``slo_met`` is ``True`` for
    requests without an SLO, matching the tracker's accounting.
    """

    request_id: int
    tenant: str
    workload: str
    device: int
    latency_s: float
    queue_delay_s: float
    service_s: float
    slo_s: Optional[float]
    slo_met: bool
    reroutes: int

    @classmethod
    def from_record(cls, record: "Any",
                    device: int) -> "FeedbackEvent":
        """Fold one completed :class:`~repro.serve.request.RequestRecord`
        into an event.  (Duck-typed: this module must not import the
        serve package, which imports the policy package at init.)"""
        request = record.request
        return cls(
            request_id=request.request_id,
            tenant=request.tenant,
            workload=request.workload,
            device=device,
            latency_s=record.latency_s,
            queue_delay_s=record.queue_delay_s,
            service_s=record.service_s,
            slo_s=request.slo_s,
            slo_met=record.slo_met,
            reroutes=record.reroutes,
        )


class FeedbackHook:
    """Interface of anything that learns from request completions.

    The learned policy mixin implements this; the front-end calls
    :meth:`on_feedback` exactly once per completed request, in
    completion order (the same order the SLO tracker ingests), so two
    same-seed runs deliver byte-identical feedback streams.
    """

    def on_feedback(self, event: FeedbackEvent) -> None:
        """Observe one completed request."""
        raise NotImplementedError


def wire_feedback(frontend, extra: Iterable[Any] = ()) -> None:
    """Attach every learned policy of ``frontend`` (+ ``extra``) as a hook.

    Policies are recognized by the ``learned = True`` class flag the
    learned mixin sets; static policies are left alone, so a run without
    learned policies keeps an empty hook list (and its byte-identical
    completion path).  ``extra`` carries policies living outside the
    front-end — the cluster's fleet-level placement policy.
    """
    for policy in (frontend.admission, frontend.dispatch_policy, *extra):
        if getattr(policy, "learned", False):
            frontend.feedback_hooks.append(policy)


def learned_snapshot(policies: Mapping[str, Any]
                     ) -> Optional[Dict[str, Any]]:
    """Per-domain state snapshots of the learned policies in ``policies``.

    Returns ``None`` when no policy is learned, so report fields
    following the emit-only-when-set discipline stay unset on static
    runs (legacy goldens byte-identical).
    """
    snapshot = {domain: policy.state_snapshot()
                for domain, policy in policies.items()
                if getattr(policy, "learned", False)}
    return snapshot or None


__all__ = [
    "FeedbackEvent",
    "FeedbackHook",
    "learned_snapshot",
    "wire_feedback",
]
