"""Time-series metrics bus: named instruments sampled on a sim-time cadence.

A :class:`MetricsBus` owns a set of named instruments — pull
:class:`Gauge` s, cumulative-counter :class:`Rate` s, push
:class:`Counter` s and windowed :class:`Histogram` s — and a sampler
process that reads every instrument on a fixed simulated cadence into a
compact :class:`MetricsTimeline`.  The timeline serializes alongside
:class:`~repro.serve.report.ServingReport` /
:class:`~repro.cluster.report.ClusterReport` (the report's optional
``metrics`` field) and is the feedback substrate the autoscaler and
learned-policy roadmap items consume: queue depth per tenant, per-shard
outstanding work, admission rate, rolling p99, flash GC activity, LWP
utilization and energy rate, all on one shared time base.

Instruments only *read* simulation state; the sampler's timeout events
shift internal event sequence numbers but cannot reorder the simulation,
so a run with a bus attached produces the exact same report as one
without (covered by tests/test_obs.py).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

ValueFn = Callable[[], Optional[float]]


class Instrument:
    """Base: one named signal the bus samples each tick."""

    def __init__(self, name: str):
        if not name:
            raise ValueError("instrument name must be non-empty")
        self.name = name

    def sample(self, now: float) -> Optional[Dict[str, float]]:
        """Values to record at ``now`` as {series-suffix: value}.

        An empty-string key records under the bare instrument name.
        ``None`` (or ``None`` values) skip this tick — a gauge with
        nothing to report yet (e.g. a p99 before the first completion)
        leaves a gap instead of fabricating a zero.
        """
        raise NotImplementedError


class Gauge(Instrument):
    """Pull gauge: calls ``fn()`` each tick and records the result."""

    def __init__(self, name: str, fn: ValueFn):
        super().__init__(name)
        self._fn = fn

    def sample(self, now: float) -> Optional[Dict[str, float]]:
        value = self._fn()
        if value is None:
            return None
        return {"": float(value)}


class Rate(Instrument):
    """Per-second rate of a cumulative counter read through ``fn()``.

    The first tick establishes the baseline (no sample is recorded);
    every later tick records ``(value - previous) / (now - previous
    time)``, so the series is the instantaneous rate over each cadence
    window, not a since-start average.
    """

    def __init__(self, name: str, fn: ValueFn):
        super().__init__(name)
        self._fn = fn
        self._prev: Optional[Tuple[float, float]] = None

    def sample(self, now: float) -> Optional[Dict[str, float]]:
        value = self._fn()
        if value is None:
            return None
        value = float(value)
        prev = self._prev
        self._prev = (now, value)
        if prev is None or now <= prev[0]:
            return None
        return {"": (value - prev[1]) / (now - prev[0])}


class Counter(Instrument):
    """Push counter: instrumented code calls :meth:`add`; each tick
    records the cumulative total."""

    def __init__(self, name: str):
        super().__init__(name)
        self.total = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increment the counter by ``amount``."""
        self.total += amount

    def sample(self, now: float) -> Optional[Dict[str, float]]:
        return {"": self.total}


class Histogram(Instrument):
    """Windowed distribution: observations since the last tick flush to
    ``.count`` / ``.mean`` / ``.p50`` / ``.p99`` sub-series.

    Ticks with an empty window record nothing (a gap, not a zero), so
    quiet periods are visible in the timeline.
    """

    def __init__(self, name: str):
        super().__init__(name)
        self._window: List[float] = []

    def observe(self, value: float) -> None:
        """Add one observation to the current window."""
        self._window.append(value)

    def sample(self, now: float) -> Optional[Dict[str, float]]:
        window = self._window
        if not window:
            return None
        self._window = []
        window.sort()
        count = len(window)
        return {
            ".count": float(count),
            ".mean": sum(window) / count,
            ".p50": window[(count - 1) // 2],
            ".p99": window[min(count - 1, (99 * count) // 100)],
        }


class MetricsTimeline:
    """The sampled series of one run: {name: [(t, value), ...]}."""

    def __init__(self, cadence_s: float):
        if cadence_s <= 0:
            raise ValueError("cadence_s must be positive")
        self.cadence_s = cadence_s
        self.series: Dict[str, List[Tuple[float, float]]] = {}

    def append(self, name: str, time: float, value: float) -> None:
        """Record one point of series ``name``."""
        self.series.setdefault(name, []).append((time, value))

    # -- inspection --------------------------------------------------------
    def names(self) -> List[str]:
        """All series names, sorted."""
        return sorted(self.series)

    def values(self, name: str) -> List[Tuple[float, float]]:
        """The (time, value) points of one series ([] if absent)."""
        return list(self.series.get(name, []))

    def latest(self, name: str) -> Optional[float]:
        """Last recorded value of ``name``, or None."""
        points = self.series.get(name)
        return points[-1][1] if points else None

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-dict (JSON-safe) form carried by report ``metrics``."""
        return {
            "cadence_s": self.cadence_s,
            "series": {name: [[t, v] for t, v in points]
                       for name, points in sorted(self.series.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MetricsTimeline":
        """Rebuild a timeline from :meth:`to_dict` output."""
        timeline = cls(float(data.get("cadence_s", 1.0)))
        for name, points in dict(data.get("series", {})).items():
            timeline.series[name] = [(float(t), float(v))
                                     for t, v in points]
        return timeline


class MetricsBus:
    """Instrument registry + cadence sampler for one run."""

    def __init__(self, cadence_s: float):
        self.timeline = MetricsTimeline(cadence_s)
        self._instruments: List[Instrument] = []
        self._names: Dict[str, Instrument] = {}
        self._stopped = False
        self._last_sample_t: Optional[float] = None
        self._pending = None

    # -- registration ------------------------------------------------------
    def register(self, instrument: Instrument) -> Instrument:
        """Add ``instrument``; names must be unique per bus."""
        if instrument.name in self._names:
            raise ValueError(
                f"instrument {instrument.name!r} already registered")
        self._names[instrument.name] = instrument
        self._instruments.append(instrument)
        return instrument

    def gauge(self, name: str, fn: ValueFn) -> Gauge:
        """Register a pull gauge."""
        gauge = Gauge(name, fn)
        self.register(gauge)
        return gauge

    def rate(self, name: str, fn: ValueFn) -> Rate:
        """Register a cumulative-counter rate."""
        rate = Rate(name, fn)
        self.register(rate)
        return rate

    def counter(self, name: str) -> Counter:
        """Register a push counter."""
        counter = Counter(name)
        self.register(counter)
        return counter

    def histogram(self, name: str) -> Histogram:
        """Register a windowed histogram."""
        histogram = Histogram(name)
        self.register(histogram)
        return histogram

    def get(self, name: str) -> Optional[Instrument]:
        """Look an instrument up by name."""
        return self._names.get(name)

    # -- sampling ----------------------------------------------------------
    def sample(self, now: float) -> None:
        """Read every instrument once at time ``now``.

        Idempotent per timestamp: a second call at the same ``now`` (the
        final :meth:`stop` sample landing on a cadence tick) is a no-op,
        so series never carry duplicate points.
        """
        if self._last_sample_t is not None and now <= self._last_sample_t:
            return
        self._last_sample_t = now
        append = self.timeline.append
        for instrument in self._instruments:
            values = instrument.sample(now)
            if not values:
                continue
            for suffix, value in values.items():
                append(instrument.name + suffix, now, value)

    def install(self, env) -> None:
        """Start the sampler process on ``env`` (first tick immediately)."""
        env.process(self._sampler(env))

    def _sampler(self, env):
        cadence = self.timeline.cadence_s
        while not self._stopped:
            self.sample(env.now)
            self._pending = env.timeout(cadence)
            yield self._pending

    def stop(self, env) -> None:
        """Take one final sample (at ``env.now``) and retire the sampler.

        Must be called before the session's post-run drain loop, for two
        reasons: a live sampler re-arms its timeout forever so the drain
        (step until the queue is empty) would never terminate, and even
        one pending re-arm tick would advance the drained clock past the
        run's real makespan — so the tick is *de-scheduled*
        (:meth:`~repro.sim.engine.Environment.cancel`), never fired,
        leaving the report byte-identical to an unobserved run.
        """
        if self._stopped:
            return
        self.sample(env.now)
        self._stopped = True
        pending, self._pending = self._pending, None
        if pending is not None:
            env.cancel(pending)
