"""Standard instrument sets for serving and cluster runs.

These wiring helpers connect a :class:`~repro.obs.metrics.MetricsBus` to
the live objects of one run (tracker, front-end, backend, shards) using
only their public read surface — the bus layer stays import-free of
:mod:`repro.serve` / :mod:`repro.cluster` and everything is duck-typed.
Closures are only allocated here, i.e. only when a bus exists: a run
without observability never reaches this module (the zero-cost-when-
disabled contract).

Series naming: flat dotted names (``queue_depth.web``,
``device0.outstanding``, ``latency_window_s.p99``); the fleet-level
cluster instruments reuse the serving names so downstream consumers
(autoscalers, learned policies) read one vocabulary at either scope.
"""

from __future__ import annotations

from .metrics import MetricsBus


def _account_rates(bus: MetricsBus, tracker, prefix: str = "") -> None:
    """offered/admitted/rejected/completed rates + admission share."""
    aggregate = tracker.aggregate
    bus.rate(prefix + "offered_rps",
             lambda: float(aggregate.offered))
    bus.rate(prefix + "admitted_rps",
             lambda: float(aggregate.admitted))
    bus.rate(prefix + "rejected_rps",
             lambda: float(aggregate.rejected))
    bus.rate(prefix + "completed_rps",
             lambda: float(aggregate.completed))
    bus.gauge(prefix + "admission_rate",
              lambda: (aggregate.admitted / aggregate.offered
                       if aggregate.offered else None))
    bus.gauge(prefix + "rolling_p99_s",
              lambda: tracker.rolling_percentile(99.0))


def _backend_instruments(bus: MetricsBus, backend,
                         prefix: str = "") -> None:
    """Energy rate plus accelerator-only device signals."""
    bus.rate(prefix + "energy_w", lambda: float(backend.energy_j))
    accelerator = getattr(backend, "accelerator", None)
    if accelerator is None:
        return
    env = accelerator.env
    cluster = accelerator.cluster
    bus.gauge(prefix + "lwp_utilization",
              lambda: (cluster.worker_utilization(env.now)
                       if env.now > 0 else None))
    stats = accelerator.storengine.stats
    bus.rate(prefix + "gc_invocations_per_s",
             lambda: float(stats.gc_invocations))
    bus.rate(prefix + "gc_erased_rows_per_s",
             lambda: float(stats.erased_rows))
    bus.rate(prefix + "flash_flush_bytes_per_s",
             lambda: float(stats.flushed_bytes))


def wire_serving_metrics(bus: MetricsBus, tracker, frontend,
                         backend) -> None:
    """Register the standard single-device serving instrument set.

    The front-end's ``obs_latency`` hook is pointed at a windowed
    histogram, so every completion feeds ``latency_window_s.{count,mean,
    p50,p99}`` — the *windowed* tail per cadence tick, next to the
    run-cumulative ``rolling_p99_s`` from the SLO reservoir.
    """
    for tenant in sorted(frontend.queues):
        queue = frontend.queues[tenant]
        bus.gauge(f"queue_depth.{tenant}",
                  lambda q=queue: float(len(q)))
    bus.gauge("queue_depth.total", lambda: float(frontend.total_queued))
    bus.gauge("in_flight", lambda: float(backend.in_flight))
    _account_rates(bus, tracker)
    frontend.obs_latency = bus.histogram("latency_window_s")
    _backend_instruments(bus, backend)


def wire_cluster_metrics(bus: MetricsBus, fleet, shards,
                         dispatcher) -> None:
    """Register the fleet instrument set: fleet rates + per-shard depth.

    Fleet-level names mirror :func:`wire_serving_metrics`; per-shard
    signals live under ``device{index}.`` so a bottleneck hunt can see
    *which* shard's outstanding work grew when the fleet p99 drifted.
    """
    _account_rates(bus, fleet)
    bus.gauge("routable_devices",
              lambda: float(len(dispatcher.routable_shards())))
    bus.rate("reroutes_per_s", lambda: float(dispatcher.reroutes))
    bus.gauge("queue_depth.total",
              lambda: float(sum(s.frontend.total_queued for s in shards)))
    bus.gauge("in_flight",
              lambda: float(sum(s.backend.in_flight for s in shards)))
    tenants = sorted(shards[0].frontend.queues) if shards else []
    for tenant in tenants:
        bus.gauge(f"queue_depth.{tenant}",
                  lambda t=tenant: float(sum(
                      len(s.frontend.queues[t]) for s in shards)))
    for shard in shards:
        prefix = f"device{shard.index}."
        bus.gauge(prefix + "outstanding",
                  lambda s=shard: float(s.queued + s.in_flight))
        bus.gauge(prefix + "queue_depth",
                  lambda s=shard: float(s.queued))
        bus.rate(prefix + "energy_w",
                 lambda s=shard: float(s.backend.energy_j))
    bus.rate("energy_w",
             lambda: float(sum(s.backend.energy_j for s in shards)))
