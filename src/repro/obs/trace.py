"""Ring-buffered request-lifecycle tracer.

A :class:`Tracer` hangs off the simulation environment (``env.tracer``,
``None`` by default) and records one compact tuple per lifecycle event —
a *span event*.  Instrumented call sites across the serving and cluster
layers guard every record with a single ``if tracer is not None`` check,
so a run without a tracer pays one attribute load per site and allocates
nothing.

Span events are plain tuples ``(time, phase, request_id, tenant, device,
aux)`` appended in simulation order, which makes the trace byte-
deterministic for a fixed scenario seed.  The buffer is a bounded
``deque``: when a run outgrows ``capacity`` the *oldest* events drop
first (the tail of a long run is usually what a bottleneck hunt needs)
and :attr:`dropped` counts the loss instead of hiding it.

Span taxonomy (phase strings, in lifecycle order)
-------------------------------------------------
``arrival``        request reached a front-end (aux = workload name)
``admit``          admission controller accepted it; queued from here
``reject``         admission controller (or the cluster edge, device
                   ``CLUSTER_EDGE``) turned it away
``dispatch``       popped from its tenant queue and handed to the backend
``service_begin``  backend accepted the dispatch (aux = kernel tag)
``kernel_begin``   kernel entered the on-device scheduler after the PCIe
                   offload sequence (aux = kernel tag)
``kernel_end``     kernel's final screen finished (aux = kernel tag)
``complete``       front-end recorded the completion
``evict``          queued record evicted from a failing device
``reroute``        evicted record re-queued on ``device`` (aux = the
                   failed source device)
``screen``         one screen execution: request_id carries the kernel
                   tag, tenant the kernel name, aux =
                   ``(lwp_id, begin_time)``; ``time`` is the end time

The *kernel tag* is ``Kernel.instance`` — the request id the serving
kernel factory stamped — not ``Kernel.kernel_id``, which counts up
process-globally and would make two same-seed runs in one process
produce different traces.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Tuple

from .config import DEFAULT_TRACE_CAPACITY

#: One recorded span event.
SpanEvent = Tuple[float, str, int, str, int, Any]

#: All phases a tracer may record, in lifecycle order.
SPAN_PHASES = (
    "arrival", "admit", "reject", "dispatch", "service_begin",
    "kernel_begin", "kernel_end", "complete", "evict", "reroute",
    "screen",
)

#: Pseudo-device for events recorded before routing picked a device
#: (cluster-edge rejections when the whole fleet is out of rotation).
CLUSTER_EDGE = -1


class Tracer:
    """Bounded, append-only span buffer attached to an Environment."""

    __slots__ = ("events", "capacity", "recorded")

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.events: Deque[SpanEvent] = deque(maxlen=capacity)
        self.recorded = 0

    # -- recording (the hot path) -----------------------------------------
    def span(self, time: float, phase: str, request_id: int, tenant: str,
             device: int = 0, aux: Any = None) -> None:
        """Record one span event at simulation time ``time``."""
        self.recorded += 1
        self.events.append((time, phase, request_id, tenant, device, aux))

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[SpanEvent]:
        return iter(self.events)

    @property
    def dropped(self) -> int:
        """Events lost to ring-buffer wraparound."""
        return self.recorded - len(self.events)

    def phase_counts(self) -> Dict[str, int]:
        """Histogram of retained events by phase."""
        counts: Dict[str, int] = {}
        for event in self.events:
            phase = event[1]
            counts[phase] = counts.get(phase, 0) + 1
        return counts

    def spans_for(self, request_id: int) -> List[SpanEvent]:
        """All retained events of one request, in recording order.

        Note that ``screen`` events carry a *kernel* id in the
        request-id slot and are therefore keyed separately.
        """
        return [e for e in self.events
                if e[2] == request_id and e[1] != "screen"]
