"""Chrome ``trace_event`` export of a recorded span trace.

:func:`to_chrome_trace` folds the flat span-event stream of a
:class:`~repro.obs.trace.Tracer` into the JSON object format Perfetto
and ``chrome://tracing`` load directly:

* one *process* track per tenant, carrying the per-request async
  lifecycle (``b``/``e`` pairs keyed by request id) and a ``queued``
  slice thread (admit → dispatch);
* one *process* track per device, carrying ``service`` slices
  (dispatch → complete), ``scheduler`` slices (kernel enters the
  on-device scheduler → final screen) and one thread per LWP with the
  individual screen executions;
* instant events for evictions and reroutes on the device that fails /
  adopts the backlog.

Timestamps convert to microseconds (the trace_event unit).  Event
construction order is a pure function of the recorded span order, so the
export is byte-deterministic for a deterministic trace
(``json.dumps(..., sort_keys=True)`` of two same-seed runs compares
equal).  :func:`validate_chrome_trace` is the schema check the CI trace
artifact gates on.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Union

from .trace import CLUSTER_EDGE, SpanEvent, Tracer

#: pid layout: tenants count up from 1, devices from 1000 (the cluster
#: edge pseudo-device sits at 999).
_TENANT_PID_BASE = 1
_DEVICE_PID_BASE = 1000

_US = 1e6   # seconds -> trace_event microseconds


def _device_pid(device: int) -> int:
    return _DEVICE_PID_BASE + device


def _device_name(device: int) -> str:
    return "cluster-edge" if device == CLUSTER_EDGE else f"device{device}"


def to_chrome_trace(trace: Union[Tracer, Iterable[SpanEvent]],
                    label: str = "repro") -> Dict[str, Any]:
    """Build the Chrome trace_event JSON object for one recorded trace."""
    events = list(trace.events if isinstance(trace, Tracer) else trace)
    out: List[Dict[str, Any]] = []

    # -- fold the flat stream per request / per kernel --------------------
    requests: Dict[int, Dict[str, Any]] = {}
    kernels: Dict[int, Dict[str, Any]] = {}
    tenants: Dict[str, None] = {}      # insertion-ordered set
    devices: Dict[int, None] = {}
    for t, phase, rid, tenant, device, aux in events:
        if phase == "screen":
            devices.setdefault(device, None)
            continue
        tenants.setdefault(tenant, None)
        devices.setdefault(device, None)
        req = requests.setdefault(rid, {"tenant": tenant})
        if phase == "arrival":
            req["arrival"] = t
            req["workload"] = aux
        elif phase == "admit":
            req["admit"] = t
        elif phase == "reject":
            req["reject"] = t
            req["reject_device"] = device
        elif phase == "dispatch":
            req["dispatch"] = t
            req["device"] = device
        elif phase in ("service_begin", "kernel_begin", "kernel_end"):
            kernel = kernels.setdefault(aux, {"rid": rid, "tenant": tenant,
                                              "device": device})
            kernel[phase] = t
        elif phase == "complete":
            req["complete"] = t
            req["device"] = device
        elif phase == "evict":
            req.setdefault("evicts", []).append((t, device))
        elif phase == "reroute":
            req.setdefault("reroutes", []).append((t, device, aux))

    tenant_pid = {tenant: _TENANT_PID_BASE + index
                  for index, tenant in enumerate(sorted(tenants))}

    # -- metadata: named tracks -------------------------------------------
    for tenant in sorted(tenants):
        pid = tenant_pid[tenant]
        out.append({"ph": "M", "name": "process_name", "pid": pid,
                    "tid": 0, "args": {"name": f"tenant:{tenant}"}})
        out.append({"ph": "M", "name": "thread_name", "pid": pid,
                    "tid": 0, "args": {"name": "lifecycle"}})
        out.append({"ph": "M", "name": "thread_name", "pid": pid,
                    "tid": 1, "args": {"name": "queued"}})
    lwp_tids: Dict[int, Dict[int, None]] = {}
    for t, phase, rid, tenant, device, aux in events:
        if phase == "screen":
            lwp_tids.setdefault(device, {}).setdefault(aux[0], None)
    for device in sorted(devices):
        pid = _device_pid(device)
        out.append({"ph": "M", "name": "process_name", "pid": pid,
                    "tid": 0, "args": {"name": _device_name(device)}})
        out.append({"ph": "M", "name": "thread_name", "pid": pid,
                    "tid": 0, "args": {"name": "service"}})
        out.append({"ph": "M", "name": "thread_name", "pid": pid,
                    "tid": 1, "args": {"name": "scheduler"}})
        for lwp in sorted(lwp_tids.get(device, ())):
            out.append({"ph": "M", "name": "thread_name", "pid": pid,
                        "tid": 100 + lwp,
                        "args": {"name": f"lwp{lwp}"}})

    # -- per-request lifecycle + slices -----------------------------------
    for rid in sorted(requests):
        req = requests[rid]
        tenant = req["tenant"]
        pid = tenant_pid[tenant]
        name = req.get("workload") or "request"
        arrival = req.get("arrival")
        terminal: Optional[float] = req.get("complete", req.get("reject"))
        if arrival is not None and terminal is not None:
            outcome = "complete" if "complete" in req else "reject"
            out.append({"ph": "b", "cat": "request", "id": rid,
                        "name": name, "pid": pid, "tid": 0,
                        "ts": arrival * _US})
            out.append({"ph": "e", "cat": "request", "id": rid,
                        "name": name, "pid": pid, "tid": 0,
                        "ts": terminal * _US,
                        "args": {"outcome": outcome}})
        admit = req.get("admit")
        dispatch = req.get("dispatch")
        if admit is not None and dispatch is not None:
            out.append({"ph": "X", "cat": "queue", "name": name,
                        "pid": pid, "tid": 1, "ts": admit * _US,
                        "dur": max(0.0, (dispatch - admit) * _US),
                        "args": {"request_id": rid}})
        complete = req.get("complete")
        if dispatch is not None and complete is not None:
            out.append({"ph": "X", "cat": "service", "name": name,
                        "pid": _device_pid(req["device"]), "tid": 0,
                        "ts": dispatch * _US,
                        "dur": max(0.0, (complete - dispatch) * _US),
                        "args": {"request_id": rid, "tenant": tenant}})
        for t, device in req.get("evicts", ()):
            out.append({"ph": "i", "cat": "health", "name": "evict",
                        "pid": _device_pid(device), "tid": 0,
                        "ts": t * _US, "s": "t",
                        "args": {"request_id": rid}})
        for t, device, source in req.get("reroutes", ()):
            out.append({"ph": "i", "cat": "health", "name": "reroute",
                        "pid": _device_pid(device), "tid": 0,
                        "ts": t * _US, "s": "t",
                        "args": {"request_id": rid, "from": source}})

    # -- per-kernel scheduler slices --------------------------------------
    for kernel_id in sorted(kernels):
        kernel = kernels[kernel_id]
        begin = kernel.get("kernel_begin")
        end = kernel.get("kernel_end")
        if begin is None or end is None:
            continue
        out.append({"ph": "X", "cat": "kernel", "name": f"k{kernel_id}",
                    "pid": _device_pid(kernel["device"]), "tid": 1,
                    "ts": begin * _US,
                    "dur": max(0.0, (end - begin) * _US),
                    "args": {"request_id": kernel["rid"],
                             "tenant": kernel["tenant"]}})

    # -- screen executions, one thread per LWP ----------------------------
    for t, phase, rid, tenant, device, aux in events:
        if phase != "screen":
            continue
        lwp, begin = aux
        out.append({"ph": "X", "cat": "screen", "name": tenant,
                    "pid": _device_pid(device), "tid": 100 + lwp,
                    "ts": begin * _US,
                    "dur": max(0.0, (t - begin) * _US),
                    "args": {"kernel_id": rid}})

    data: Dict[str, Any] = {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {"label": label},
    }
    if isinstance(trace, Tracer):
        data["otherData"]["recorded"] = trace.recorded
        data["otherData"]["dropped"] = trace.dropped
    return data


_ALLOWED_PHASES = frozenset("XbeiM")


def validate_chrome_trace(data: Any) -> List[str]:
    """Schema-check one exported trace; returns problems ([] = valid).

    Checks the subset of the trace_event format this exporter emits:
    the top-level object shape, per-event required keys by phase,
    non-negative durations and balanced async begin/end pairs.
    """
    problems: List[str] = []
    if not isinstance(data, dict) or "traceEvents" not in data:
        return ["top level must be an object with a 'traceEvents' list"]
    events = data["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    open_async: Dict[Any, int] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _ALLOWED_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        if ph == "M":
            if "name" not in (event.get("args") or {}):
                problems.append(f"{where}: metadata without args.name")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: missing numeric 'ts'")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'X' needs non-negative 'dur'")
        if ph in "be":
            if "id" not in event or "cat" not in event:
                problems.append(f"{where}: async event needs 'id'+'cat'")
                continue
            key = (event["cat"], event["id"])
            open_async[key] = open_async.get(key, 0) \
                + (1 if ph == "b" else -1)
    for (cat, async_id), balance in sorted(open_async.items()):
        if balance != 0:
            problems.append(
                f"async {cat}:{async_id} begin/end unbalanced "
                f"({balance:+d})")
    return problems


def write_chrome_trace(path, data: Dict[str, Any]) -> None:
    """Write an exported trace as canonical (byte-stable) JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
