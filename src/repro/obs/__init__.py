"""repro.obs: request-lifecycle tracing and the time-series metrics bus.

The observability layer of the reproduction (see ARCHITECTURE.md,
"Observability"): a ring-buffered :class:`Tracer` attached to the
simulation environment records per-request span events across the
serving and cluster layers, a :class:`MetricsBus` samples registered
instruments on a fixed sim-time cadence into a serializable
:class:`MetricsTimeline`, and :func:`to_chrome_trace` exports recorded
traces as Perfetto-loadable Chrome ``trace_event`` JSON.

Everything here is strictly opt-in via :class:`ObsConfig`
(``ServingSession(..., obs=...)`` / ``ClusterSession(..., obs=...)``):
without it no tracer exists, no closures are allocated, and runs are
byte-identical to pre-observability behavior.
"""

from .config import (
    DEFAULT_CADENCE_S,
    DEFAULT_TRACE_CAPACITY,
    ObsConfig,
)
from .export import to_chrome_trace, validate_chrome_trace, write_chrome_trace
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Instrument,
    MetricsBus,
    MetricsTimeline,
    Rate,
)
from .trace import CLUSTER_EDGE, SPAN_PHASES, SpanEvent, Tracer
from .wire import wire_cluster_metrics, wire_serving_metrics

__all__ = [
    "CLUSTER_EDGE",
    "Counter",
    "DEFAULT_CADENCE_S",
    "DEFAULT_TRACE_CAPACITY",
    "Gauge",
    "Histogram",
    "Instrument",
    "MetricsBus",
    "MetricsTimeline",
    "ObsConfig",
    "Rate",
    "SPAN_PHASES",
    "SpanEvent",
    "Tracer",
    "to_chrome_trace",
    "validate_chrome_trace",
    "wire_cluster_metrics",
    "wire_serving_metrics",
    "write_chrome_trace",
]
