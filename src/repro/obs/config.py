"""Observability configuration: what to record and how often.

An :class:`ObsConfig` is the single opt-in knob for the observability
layer (:mod:`repro.obs`): request-lifecycle tracing into a ring-buffered
:class:`~repro.obs.trace.Tracer` and/or periodic sampling of registered
instruments into a :class:`~repro.obs.metrics.MetricsTimeline`.  Like
every other behavioral knob in this repository it round-trips losslessly
through plain dicts, so experiment specs can fold it into their cache
keys — a run with observability attached carries extra report payload
(the ``metrics`` field) and must never alias a cache entry written
without it.

The contract (see ARCHITECTURE.md, "Observability"):

* **Zero cost when absent.**  No ``ObsConfig`` → no tracer on the
  environment, no instruments, no sampler process; every instrumented
  call site is a single ``is None`` check and reports are byte-identical
  to pre-observability runs.
* **Deterministic when present.**  Tracing and sampling only *read*
  simulation state (the sampler's timeout events shift internal event
  sequence numbers but never reorder the simulation), so the same seed
  produces the same report — and the same byte-identical trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

#: Default ring capacity: ~260k span events (a handful of spans per
#: request, so tens of thousands of requests before the ring wraps).
DEFAULT_TRACE_CAPACITY = 1 << 18

#: Default sampling cadence in simulated seconds.
DEFAULT_CADENCE_S = 0.25


@dataclass(frozen=True)
class ObsConfig:
    """Opt-in observability for one serving or cluster run."""

    tracing: bool = True
    trace_capacity: int = DEFAULT_TRACE_CAPACITY
    metrics: bool = True
    cadence_s: float = DEFAULT_CADENCE_S

    def __post_init__(self) -> None:
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")
        if self.cadence_s <= 0:
            raise ValueError("cadence_s must be positive")

    @property
    def enabled(self) -> bool:
        """True when at least one subsystem is switched on."""
        return self.tracing or self.metrics

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-safe) form; folds into experiment cache keys."""
        return {
            "tracing": self.tracing,
            "trace_capacity": self.trace_capacity,
            "metrics": self.metrics,
            "cadence_s": self.cadence_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ObsConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(
            tracing=bool(data.get("tracing", True)),
            trace_capacity=int(data.get("trace_capacity",
                                        DEFAULT_TRACE_CAPACITY)),
            metrics=bool(data.get("metrics", True)),
            cadence_s=float(data.get("cadence_s", DEFAULT_CADENCE_S)),
        )
