"""FlashAbacus reproduction.

A behavioral, discrete-event reproduction of *FlashAbacus: A Self-Governing
Flash-Based Accelerator for Low-Power Systems* (Zhang & Jung, EuroSys 2018):
the self-governing accelerator (multi-kernel execution, Flashvisor,
Storengine, the four scheduling policies), the conventional SIMD baseline it
is compared against, the Table 2 workloads, and the full evaluation harness
regenerating every table and figure of the paper's Section 5.

Quick start::

    from repro import run_flashabacus, run_baseline, homogeneous_workload

    kernels = homogeneous_workload("ATAX", instances=6)
    flashabacus = run_flashabacus(kernels, scheduler="IntraO3")
    simd = run_baseline(homogeneous_workload("ATAX", instances=6))
    print(flashabacus.throughput_mb_per_s / simd.throughput_mb_per_s)
"""

from .core import (
    ExecutionReport,
    FlashAbacusAccelerator,
    Kernel,
    Microblock,
    Screen,
    build_kernel,
    make_scheduler,
    run_flashabacus,
)
from .baseline import BaselineSystem, run_baseline
from .hw import HardwareSpec, prototype_spec
from .policy import (
    POLICY_DOMAINS,
    PolicySpec,
    build_policy,
    policy_names,
    register_policy,
)
from .platform import (
    ClusterConfig,
    FaultSpec,
    PlatformBuilder,
    PlatformConfig,
    build_system,
)
from .workloads import (
    heterogeneous_workload,
    homogeneous_workload,
    realworld_workload,
    synthetic_kernel,
)
from .serve import (
    ServingReport,
    ServingScenario,
    ServingSession,
    TenantSpec,
    run_serving,
)
from .cluster import ClusterReport, ClusterSession, run_cluster
from .obs import (
    MetricsBus,
    MetricsTimeline,
    ObsConfig,
    Tracer,
    to_chrome_trace,
    write_chrome_trace,
)

__version__ = "1.0.0"

__all__ = [
    "ExecutionReport",
    "FlashAbacusAccelerator",
    "Kernel",
    "Microblock",
    "Screen",
    "build_kernel",
    "make_scheduler",
    "run_flashabacus",
    "BaselineSystem",
    "run_baseline",
    "HardwareSpec",
    "prototype_spec",
    "POLICY_DOMAINS",
    "PolicySpec",
    "build_policy",
    "policy_names",
    "register_policy",
    "ClusterConfig",
    "FaultSpec",
    "PlatformBuilder",
    "PlatformConfig",
    "build_system",
    "heterogeneous_workload",
    "homogeneous_workload",
    "realworld_workload",
    "synthetic_kernel",
    "ServingReport",
    "ServingScenario",
    "ServingSession",
    "TenantSpec",
    "run_serving",
    "ClusterReport",
    "ClusterSession",
    "run_cluster",
    "MetricsBus",
    "MetricsTimeline",
    "ObsConfig",
    "Tracer",
    "to_chrome_trace",
    "write_chrome_trace",
    "__version__",
]
