"""Flash die timing model.

Each TLC package contains two dies; a die executes one array operation at
a time (read sense, program, or erase) while its channel bus is free for
other dies — this die-level parallelism is what lets a channel sustain its
NV-DDR2 bandwidth despite the 81 µs sense time.
"""

from __future__ import annotations


from ..sim.engine import Environment
from ..sim.resources import Resource
from ..hw.spec import FlashSpec


class FlashDie:
    """One flash die: serial array operations, tracked wear."""

    def __init__(self, env: Environment, spec: FlashSpec, channel: int,
                 package: int, die: int):
        self.env = env
        self.spec = spec
        self.channel = channel
        self.package = package
        self.die = die
        self._array = Resource(env, capacity=1,
                               name=f"die[{channel}.{package}.{die}]")
        self.reads = 0
        self.programs = 0
        self.erases = 0

    def read_page(self):
        """Process generator: sense one page out of the array."""
        with self._array.request() as req:
            yield req
            yield self.env.timeout(self.spec.page_read_latency_s)
        self.reads += 1

    def program_page(self):
        """Process generator: program one page into the array."""
        with self._array.request() as req:
            yield req
            yield self.env.timeout(self.spec.page_program_latency_s)
        self.programs += 1

    def erase_block(self):
        """Process generator: erase one block."""
        with self._array.request() as req:
            yield req
            yield self.env.timeout(self.spec.block_erase_latency_s)
        self.erases += 1

    def utilization(self) -> float:
        return self._array.utilization()


class FlashPackage:
    """A package grouping ``dies_per_package`` dies on one channel."""

    def __init__(self, env: Environment, spec: FlashSpec, channel: int,
                 package: int):
        self.env = env
        self.spec = spec
        self.channel = channel
        self.package = package
        self.dies = [FlashDie(env, spec, channel, package, d)
                     for d in range(spec.dies_per_package)]

    def die(self, index: int) -> FlashDie:
        return self.dies[index % len(self.dies)]

    @property
    def total_operations(self) -> int:
        return sum(d.reads + d.programs + d.erases for d in self.dies)
