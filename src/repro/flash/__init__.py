"""Flash backbone substrate: geometry, timing models, controllers, FTL."""

from .geometry import FlashGeometry, PhysicalPageAddress
from .package import FlashDie, FlashPackage
from .channel import FlashChannel
from .controller import FlashController, FlashTransaction
from .ftl import (
    BlockAllocator,
    BlockRowState,
    OutOfSpaceError,
    PageGroupMappingTable,
)
from .backbone import FlashBackbone

__all__ = [
    "FlashGeometry",
    "PhysicalPageAddress",
    "FlashDie",
    "FlashPackage",
    "FlashChannel",
    "FlashController",
    "FlashTransaction",
    "BlockAllocator",
    "BlockRowState",
    "OutOfSpaceError",
    "PageGroupMappingTable",
    "FlashBackbone",
]
