"""Flash translation structures shared by Flashvisor and Storengine.

Flashvisor performs log-structured, page-group-granularity mapping
(Section 4.3): logical page-group numbers map to physical page-group
numbers through a table kept in the scratchpad; writes always allocate the
next free physical group; exhausted blocks go to a used-block pool from
which Storengine reclaims them round-robin.

This module holds the pure data structures (no timing): the mapping table,
the block/group allocator, and validity tracking needed by garbage
collection.  Timing is applied by the components that use them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set

from .geometry import FlashGeometry


class OutOfSpaceError(RuntimeError):
    """Raised when no free physical page group can be allocated."""


@dataclass
class BlockRowState:
    """State of one block row (a block stripe across channels/planes).

    A block row contains ``pages_per_block`` physical page groups.  The
    allocator writes rows sequentially; garbage collection erases them and
    returns them to the free pool.
    """

    row_id: int
    erase_count: int = 0
    valid_groups: Set[int] = field(default_factory=set)
    next_free_offset: int = 0

    def is_full(self, groups_per_row: int) -> bool:
        return self.next_free_offset >= groups_per_row

    @property
    def valid_count(self) -> int:
        return len(self.valid_groups)


class PageGroupMappingTable:
    """Logical page group -> physical page group mapping.

    The paper sizes this table at 2 MB for 32 GB with 64 KB page groups;
    :meth:`size_bytes` reproduces that arithmetic so tests can check the
    scratchpad budget claim.
    """

    ENTRY_BYTES = 4

    def __init__(self, geometry: FlashGeometry):
        self.geometry = geometry
        self._map: Dict[int, int] = {}
        # Maintained inverse of _map.  Storengine's GC resolves the
        # logical owner of every valid group it migrates, so the reverse
        # direction must be O(1) rather than a table scan.
        self._reverse: Dict[int, int] = {}

    def lookup(self, logical_group: int) -> Optional[int]:
        """Physical group currently backing ``logical_group`` (or None)."""
        return self._map.get(logical_group)

    def update(self, logical_group: int, physical_group: int) -> Optional[int]:
        """Bind ``logical_group`` to ``physical_group``; returns the old one."""
        if logical_group < 0:
            raise ValueError("logical_group must be non-negative")
        old = self._map.get(logical_group)
        if old is not None and self._reverse.get(old) == logical_group:
            del self._reverse[old]
        self._map[logical_group] = physical_group
        self._reverse[physical_group] = logical_group
        return old

    def invalidate(self, logical_group: int) -> Optional[int]:
        old = self._map.pop(logical_group, None)
        if old is not None and self._reverse.get(old) == logical_group:
            del self._reverse[old]
        return old

    def reverse_lookup(self, physical_group: int) -> Optional[int]:
        return self._reverse.get(physical_group)

    def __len__(self) -> int:
        return len(self._map)

    def size_bytes(self) -> int:
        """Scratchpad bytes needed to map the whole backbone."""
        return self.geometry.page_groups_total * self.ENTRY_BYTES

    def mapped_groups(self) -> List[int]:
        return sorted(self._map)


class BlockAllocator:
    """Log-structured allocator over block rows with free/used pools."""

    def __init__(self, geometry: FlashGeometry, overprovision: float = 0.07):
        if not 0.0 <= overprovision < 1.0:
            raise ValueError("overprovision must be in [0, 1)")
        self.geometry = geometry
        self.groups_per_row = geometry.groups_per_block_row
        total_rows = geometry.page_groups_total // self.groups_per_row
        self.total_rows = total_rows
        self.reserved_rows = max(1, int(total_rows * overprovision))
        self.rows: Dict[int, BlockRowState] = {
            r: BlockRowState(r) for r in range(total_rows)
        }
        # Both pools are popped from the left on every allocation / GC
        # cycle; deques make those O(1) where lists would shift the whole
        # pool (the Storengine GC hot path under sustained writes).
        self.free_rows: Deque[int] = deque(range(total_rows))
        self.used_rows: Deque[int] = deque()
        self._active_row: Optional[int] = None
        self.groups_written = 0

    # -- allocation ---------------------------------------------------------
    def allocate_group(self) -> int:
        """Return the next free physical page-group number."""
        if self._active_row is None or self.rows[self._active_row].is_full(
                self.groups_per_row):
            self._open_new_row()
        row = self.rows[self._active_row]
        physical_group = (row.row_id * self.groups_per_row
                          + row.next_free_offset)
        row.next_free_offset += 1
        row.valid_groups.add(physical_group)
        self.groups_written += 1
        if row.is_full(self.groups_per_row):
            self.used_rows.append(row.row_id)
            self._active_row = None
        return physical_group

    def _open_new_row(self) -> None:
        if not self.free_rows:
            raise OutOfSpaceError("no free block rows; GC required")
        self._active_row = self.free_rows.popleft()
        row = self.rows[self._active_row]
        row.next_free_offset = 0
        row.valid_groups.clear()

    # -- validity / GC support -----------------------------------------------
    def invalidate_group(self, physical_group: int) -> None:
        """Mark a physical group as stale (its row may later be reclaimed)."""
        row_id = physical_group // self.groups_per_row
        if row_id in self.rows:
            self.rows[row_id].valid_groups.discard(physical_group)

    def row_of(self, physical_group: int) -> BlockRowState:
        return self.rows[physical_group // self.groups_per_row]

    def pick_victim_round_robin(self) -> Optional[int]:
        """Pop the oldest used row (the paper's Storengine victim policy)."""
        if not self.used_rows:
            return None
        return self.used_rows.popleft()

    def pick_victim_greedy(self) -> Optional[int]:
        """Pick the used row with the fewest valid groups (ablation policy)."""
        if not self.used_rows:
            return None
        victim = min(self.used_rows, key=lambda r: self.rows[r].valid_count)
        self.used_rows.remove(victim)
        return victim

    def reclaim_row(self, row_id: int) -> None:
        """Return an erased row to the free pool."""
        row = self.rows[row_id]
        row.valid_groups.clear()
        row.next_free_offset = 0
        row.erase_count += 1
        self.free_rows.append(row_id)

    # -- metrics -----------------------------------------------------------
    @property
    def free_group_count(self) -> int:
        free = len(self.free_rows) * self.groups_per_row
        if self._active_row is not None:
            row = self.rows[self._active_row]
            free += self.groups_per_row - row.next_free_offset
        return free

    def needs_gc(self) -> bool:
        """True when the free pool has shrunk into the reserved region."""
        return len(self.free_rows) <= self.reserved_rows

    def wear_spread(self) -> int:
        """Difference between the most- and least-erased rows."""
        counts = [row.erase_count for row in self.rows.values()]
        return max(counts) - min(counts)
