"""The flash backbone: four channels of TLC flash behind FPGA controllers.

The backbone is the "self-existent module" of Section 2.2 — reachable from
the processor complex over the tier-2 network / SRIO lanes.  It exposes
page-group granularity operations used by Flashvisor: read a physical page
group into DDR3L, program a page group from DDR3L, and erase a block row.
All timing comes from the per-channel models; energy is charged to the
``storage_access`` bucket.
"""

from __future__ import annotations

from typing import Optional

from ..sim.engine import Environment
from ..sim.resources import Resource
from ..hw.power import EnergyAccountant, PowerMonitor, STORAGE_ACCESS
from ..hw.spec import FlashSpec
from .channel import FlashChannel
from .controller import FlashController
from .geometry import FlashGeometry, PhysicalPageAddress


class FlashBackbone:
    """Aggregates the flash channels and their controllers."""

    def __init__(self, env: Environment, spec: FlashSpec,
                 energy: Optional[EnergyAccountant] = None,
                 controller_queue_depth: int = 16,
                 power_monitor: Optional[PowerMonitor] = None):
        self.env = env
        self.spec = spec
        self.energy = energy
        self.power_monitor = power_monitor
        self._active_streams = 0
        self.geometry = FlashGeometry(spec)
        self.channels = [FlashChannel(env, spec, c)
                         for c in range(spec.channels)]
        self.controllers = [FlashController(env, spec, ch,
                                            controller_queue_depth)
                            for ch in self.channels]
        self.page_group_reads = 0
        self.page_group_writes = 0
        self.block_erases = 0
        # Bulk data-section transfers share the backbone's aggregate
        # bandwidth; a single lane per direction serializes concurrent bulk
        # streams, which is equivalent to fair bandwidth sharing for
        # makespan purposes.  Reads are bus-limited while programs are
        # die-limited (the 2.6 ms TLC program dominates), so background
        # write-buffer flushes barely disturb the read path — they are kept
        # on a separate lane.
        self._bulk_read_lane = Resource(env, capacity=1,
                                        name="backbone.bulk_read")
        self._bulk_program_lane = Resource(env, capacity=1,
                                           name="backbone.bulk_program")
        self.bulk_bytes_read = 0
        self.bulk_bytes_written = 0

    # -- page-group operations -----------------------------------------------
    def read_page_group(self, physical_group: int):
        """Process generator: read every page of a physical page group.

        The group's pages live on different channels and planes, so the
        reads proceed in parallel; the call completes when all pages have
        been transferred.
        """
        pages = self.geometry.group_to_physical_pages(physical_group)
        start = self.env.now
        done_events = []
        for page in pages:
            txn = yield from self.controllers[page.channel].submit("read", page)
            done_events.append(txn.done)
        yield self.env.all_of(done_events)
        self.page_group_reads += 1
        self._charge(start)

    def program_page_group(self, physical_group: int):
        """Process generator: program every page of a physical page group."""
        pages = self.geometry.group_to_physical_pages(physical_group)
        start = self.env.now
        done_events = []
        for page in pages:
            txn = yield from self.controllers[page.channel].submit(
                "program", page)
            done_events.append(txn.done)
        yield self.env.all_of(done_events)
        self.page_group_writes += 1
        self._charge(start, self.spec.program_power_w)

    def erase_block_row(self, row_id: int):
        """Process generator: erase the block stripe backing ``row_id``."""
        start = self.env.now
        done_events = []
        groups_per_row = self.geometry.groups_per_block_row
        sample_group = row_id * groups_per_row
        pages = self.geometry.group_to_physical_pages(
            min(sample_group, self.geometry.page_groups_total - 1))
        seen = set()
        for page in pages:
            key = (page.channel, page.package, page.die)
            if key in seen:
                continue
            seen.add(key)
            erase_addr = PhysicalPageAddress(
                channel=page.channel, package=page.package, die=page.die,
                plane=0, block=page.block, page=0)
            txn = yield from self.controllers[page.channel].submit(
                "erase", erase_addr)
            done_events.append(txn.done)
        yield self.env.all_of(done_events)
        self.block_erases += 1
        self._charge(start)

    # -- bulk (data-section) transfers -----------------------------------------
    @property
    def aggregate_read_bandwidth(self) -> float:
        """Sustained read bandwidth with die-level parallelism (Table 1)."""
        return self.spec.channels * self.spec.channel_bus_bandwidth

    @property
    def aggregate_program_bandwidth(self) -> float:
        """Sustained program bandwidth limited by the 2.6 ms TLC program."""
        array_rate = (self.geometry.dies_total * self.spec.page_bytes
                      / self.spec.page_program_latency_s)
        return min(array_rate, self.aggregate_read_bandwidth)

    def bulk_read_time(self, num_bytes: int) -> float:
        """Unloaded time to stream ``num_bytes`` out of the backbone."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return (self.spec.page_read_latency_s
                + num_bytes / self.aggregate_read_bandwidth)

    def bulk_program_time(self, num_bytes: int) -> float:
        """Unloaded time to stream ``num_bytes`` into the backbone."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return (self.spec.page_program_latency_s
                + num_bytes / self.aggregate_program_bandwidth)

    def bulk_read(self, num_bytes: int):
        """Process generator: stream ``num_bytes`` from flash (data section).

        Used by Flashvisor when a kernel maps a data section for reads;
        page-group fan-out is folded into an aggregate bandwidth model so a
        multi-hundred-megabyte data section does not expand into hundreds
        of thousands of per-page events.
        """
        if num_bytes == 0:
            return 0.0
        start = self.env.now
        self._stream_begin(self.spec.power_w)
        with self._bulk_read_lane.request() as req:
            yield req
            yield self.env.timeout(self.bulk_read_time(num_bytes))
        self._stream_end()
        self.bulk_bytes_read += num_bytes
        self._charge(start)
        return self.env.now - start

    def bulk_program(self, num_bytes: int):
        """Process generator: stream ``num_bytes`` into flash (write-back)."""
        if num_bytes == 0:
            return 0.0
        start = self.env.now
        self._stream_begin(self.spec.program_power_w)
        with self._bulk_program_lane.request() as req:
            yield req
            yield self.env.timeout(self.bulk_program_time(num_bytes))
        self._stream_end()
        self.bulk_bytes_written += num_bytes
        self._charge(start, self.spec.program_power_w)
        return self.env.now - start

    # -- helpers ---------------------------------------------------------------
    def _stream_begin(self, power_w: float) -> None:
        self._active_streams += 1
        if self.power_monitor is not None:
            self.power_monitor.set_draw("flash_backbone", power_w)

    def _stream_end(self) -> None:
        self._active_streams = max(0, self._active_streams - 1)
        if self.power_monitor is not None and self._active_streams == 0:
            self.power_monitor.set_draw("flash_backbone", 0.0)

    def _charge(self, start: float, power_w: Optional[float] = None) -> None:
        if self.energy is not None:
            watts = self.spec.power_w if power_w is None else power_w
            self.energy.charge_power("flash_backbone", STORAGE_ACCESS,
                                     watts, self.env.now - start)

    def unloaded_group_read_time(self) -> float:
        """Lower bound on reading one page group (sense + striped transfer)."""
        per_channel_pages = self.spec.planes_per_die
        bus = per_channel_pages * self.spec.page_bytes \
            / self.spec.channel_bus_bandwidth
        return self.spec.page_read_latency_s + bus

    def unloaded_group_program_time(self) -> float:
        per_channel_pages = self.spec.planes_per_die
        bus = per_channel_pages * self.spec.page_bytes \
            / self.spec.channel_bus_bandwidth
        return self.spec.page_program_latency_s + bus

    # -- metrics ----------------------------------------------------------------
    def bytes_read(self) -> int:
        return sum(c.bytes_read for c in self.channels) + self.bulk_bytes_read

    def bytes_written(self) -> int:
        return (sum(c.bytes_written for c in self.channels)
                + self.bulk_bytes_written)

    def mean_channel_utilization(self) -> float:
        if not self.channels:
            return 0.0
        return sum(c.bus_utilization() for c in self.channels) / len(self.channels)
