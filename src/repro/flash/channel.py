"""NV-DDR2 flash channel model.

A channel serializes bus transfers (command/address/data cycles) while its
four packages perform array operations in parallel.  Reads therefore cost
``sense_time`` on the die plus ``page / bus_bandwidth`` on the bus; with
enough outstanding requests the channel is transfer-limited, matching the
3.2 GB/s aggregate estimate in Table 1.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.engine import Environment
from ..sim.resources import Resource
from ..hw.spec import FlashSpec
from .package import FlashDie, FlashPackage


class FlashChannel:
    """One ONFi channel: a shared bus in front of several packages."""

    def __init__(self, env: Environment, spec: FlashSpec, channel_id: int):
        self.env = env
        self.spec = spec
        self.channel_id = channel_id
        self.packages = [FlashPackage(env, spec, channel_id, p)
                         for p in range(spec.packages_per_channel)]
        self._bus = Resource(env, capacity=1, name=f"ch{channel_id}.bus")
        self.bytes_read = 0
        self.bytes_written = 0

    # -- helpers -------------------------------------------------------------
    def die_at(self, package: int, die: int) -> FlashDie:
        return self.packages[package % len(self.packages)].die(die)

    def _bus_time(self, num_bytes: int) -> float:
        return num_bytes / self.spec.channel_bus_bandwidth

    # -- timed operations ------------------------------------------------------
    def read_page(self, package: int = 0, die: int = 0,
                  num_bytes: Optional[int] = None):
        """Process generator: read one page (array sense + bus transfer)."""
        num_bytes = self.spec.page_bytes if num_bytes is None else num_bytes
        target = self.die_at(package, die)
        yield from target.read_page()
        with self._bus.request() as req:
            yield req
            yield self.env.timeout(self._bus_time(num_bytes))
        self.bytes_read += num_bytes

    def program_page(self, package: int = 0, die: int = 0,
                     num_bytes: Optional[int] = None):
        """Process generator: program one page (bus transfer + array program)."""
        num_bytes = self.spec.page_bytes if num_bytes is None else num_bytes
        target = self.die_at(package, die)
        with self._bus.request() as req:
            yield req
            yield self.env.timeout(self._bus_time(num_bytes))
        yield from target.program_page()
        self.bytes_written += num_bytes

    def erase_block(self, package: int = 0, die: int = 0):
        """Process generator: erase one block on a die (no bus data)."""
        target = self.die_at(package, die)
        yield from target.erase_block()

    # -- metrics -------------------------------------------------------------
    def bus_utilization(self) -> float:
        return self._bus.utilization()

    def die_utilization(self) -> float:
        dies: List[FlashDie] = [d for p in self.packages for d in p.dies]
        if not dies:
            return 0.0
        return sum(d.utilization() for d in dies) / len(dies)
