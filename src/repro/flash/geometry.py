"""Flash backbone geometry and address arithmetic.

The backbone has 4 channels, each with 4 packages of 2 dies (Section 2.2).
Flashvisor virtualizes this as *page groups*: one page from every channel
and plane striped together (Section 4.3 — "64KB page group (4 channels * 2
planes per die * 8KB page)").  This module provides the address math used
by the FTL, Flashvisor and the controllers: logical word addresses ->
page-group numbers -> per-channel physical page addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..hw.spec import FlashSpec


@dataclass(frozen=True)
class PhysicalPageAddress:
    """One physical flash page (channel, package, die, plane, block, page)."""

    channel: int
    package: int
    die: int
    plane: int
    block: int
    page: int

    def as_tuple(self):
        return (self.channel, self.package, self.die, self.plane,
                self.block, self.page)


class FlashGeometry:
    """Derived sizes and address conversion helpers for a :class:`FlashSpec`."""

    def __init__(self, spec: FlashSpec):
        self.spec = spec
        self.page_bytes = spec.page_bytes
        self.pages_per_block = spec.pages_per_block
        self.channels = spec.channels
        self.packages_per_channel = spec.packages_per_channel
        self.dies_per_package = spec.dies_per_package
        self.planes_per_die = spec.planes_per_die
        self.blocks_per_die = spec.blocks_per_die

    # -- capacity -----------------------------------------------------------
    @property
    def dies_total(self) -> int:
        return (self.channels * self.packages_per_channel
                * self.dies_per_package)

    @property
    def blocks_total(self) -> int:
        return self.dies_total * self.blocks_per_die

    @property
    def pages_total(self) -> int:
        return self.blocks_total * self.pages_per_block

    @property
    def capacity_bytes(self) -> int:
        return self.pages_total * self.page_bytes

    # -- page groups ----------------------------------------------------------
    @property
    def pages_per_group(self) -> int:
        """Pages striped into one page group (channels x planes)."""
        return self.channels * self.planes_per_die

    @property
    def page_group_bytes(self) -> int:
        return self.pages_per_group * self.page_bytes

    @property
    def page_groups_total(self) -> int:
        return self.pages_total // self.pages_per_group

    @property
    def groups_per_block_row(self) -> int:
        """Page groups that fit in one block stripe across all dies."""
        return self.pages_per_block

    # -- address conversion --------------------------------------------------
    def bytes_to_page_groups(self, num_bytes: int) -> int:
        """Number of page groups needed to hold ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0
        return -(-num_bytes // self.page_group_bytes)

    def bytes_to_pages(self, num_bytes: int) -> int:
        """Number of flash pages needed to hold ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0
        return -(-num_bytes // self.page_bytes)

    def word_address_to_group(self, word_address: int,
                              word_bytes: int = 4) -> int:
        """Map a word-based backbone address to its page-group number."""
        if word_address < 0:
            raise ValueError("word_address must be non-negative")
        byte_address = word_address * word_bytes
        group = byte_address // self.page_group_bytes
        if group >= self.page_groups_total:
            raise ValueError(
                f"address {word_address} beyond backbone capacity")
        return group

    def group_to_physical_pages(self, physical_group: int) -> List[PhysicalPageAddress]:
        """Expand a physical page-group number to its per-channel pages.

        The group is striped so that channel ``c`` holds pages for plane
        0..planes-1; the block/page within a die follow the group number
        sequentially (log-structured layout).
        """
        if not 0 <= physical_group < self.page_groups_total:
            raise ValueError(f"physical group {physical_group} out of range")
        # Which "die row" (package, die, block, page) this group occupies.
        row = physical_group
        page_in_block = row % self.pages_per_block
        block_row = row // self.pages_per_block
        per_die_blocks = self.blocks_per_die
        package = (block_row // per_die_blocks) % self.packages_per_channel
        die = (block_row // (per_die_blocks * self.packages_per_channel)) \
            % self.dies_per_package
        block = block_row % per_die_blocks
        pages = []
        for channel in range(self.channels):
            for plane in range(self.planes_per_die):
                pages.append(PhysicalPageAddress(
                    channel=channel, package=package, die=die, plane=plane,
                    block=block, page=page_in_block))
        return pages

    def iter_groups_for_bytes(self, start_group: int,
                              num_bytes: int) -> Iterator[int]:
        """Yield the consecutive logical groups covering ``num_bytes``."""
        for offset in range(self.bytes_to_page_groups(num_bytes)):
            yield start_group + offset
