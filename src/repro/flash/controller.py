"""FPGA-based flash controller with inbound/outbound tag queues.

Section 2.2: "our flash controller implements inbound and outbound 'tag'
queues, each of which is used for buffering the requests with minimum
overheads."  The controller receives flash transactions from the processor
network (through the tier-2 crossbar / SRIO lanes), dispatches them to its
channel, and posts completions to the outbound queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sim.engine import Environment, Event
from ..sim.resources import Store
from ..hw.spec import FlashSpec
from .channel import FlashChannel
from .geometry import PhysicalPageAddress


@dataclass
class FlashTransaction:
    """One page-granularity request handed to a controller."""

    op: str                      # "read" | "program" | "erase"
    address: PhysicalPageAddress
    tag: int = 0
    issued_at: float = 0.0
    completed_at: Optional[float] = None
    done: Optional[Event] = None

    @property
    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.issued_at


class FlashController:
    """Per-channel controller converting network requests into flash ops."""

    VALID_OPS = ("read", "program", "erase")

    def __init__(self, env: Environment, spec: FlashSpec,
                 channel: FlashChannel, queue_depth: int = 16):
        self.env = env
        self.spec = spec
        self.channel = channel
        self.inbound = Store(env, capacity=queue_depth,
                             name=f"ch{channel.channel_id}.inbound")
        self.outbound = Store(env, capacity=queue_depth,
                              name=f"ch{channel.channel_id}.outbound")
        self.completed: List[FlashTransaction] = []
        self._tag = 0
        self._service_proc = env.process(self._service_loop())

    # -- submission -----------------------------------------------------------
    def submit(self, op: str, address: PhysicalPageAddress):
        """Process generator: enqueue a transaction; returns it with a
        ``done`` event the caller can wait on."""
        if op not in self.VALID_OPS:
            raise ValueError(f"unknown flash op: {op!r}")
        self._tag += 1
        txn = FlashTransaction(op=op, address=address, tag=self._tag,
                               issued_at=self.env.now, done=self.env.event())
        yield self.inbound.put(txn)
        return txn

    # -- service loop -----------------------------------------------------------
    def _service_loop(self):
        while True:
            txn = yield self.inbound.get()
            yield from self._execute(txn)
            txn.completed_at = self.env.now
            self.completed.append(txn)
            if txn.done is not None and not txn.done.triggered:
                txn.done.succeed(txn)
            yield self.outbound.put(txn)
            # Drain the outbound queue immediately: the network-side consumer
            # in this behavioral model is the requester waiting on ``done``.
            yield self.outbound.get()

    def _execute(self, txn: FlashTransaction):
        addr = txn.address
        if txn.op == "read":
            yield from self.channel.read_page(addr.package, addr.die)
        elif txn.op == "program":
            yield from self.channel.program_page(addr.package, addr.die)
        else:
            yield from self.channel.erase_block(addr.package, addr.die)

    # -- metrics -------------------------------------------------------------
    @property
    def completed_count(self) -> int:
        return len(self.completed)

    def mean_latency(self) -> float:
        if not self.completed:
            return 0.0
        return sum(t.latency for t in self.completed) / len(self.completed)
