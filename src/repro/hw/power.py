"""Energy accounting.

The paper decomposes system energy into three buckets (Figures 3e, 13 and
16b): *data movement* (host CPU + host DRAM + PCIe activity spent shuttling
data), *computation* (the accelerator's LWPs doing useful work), and
*storage access* (the SSD / flash backbone plus the storage stack).  The
:class:`EnergyAccountant` lets every component charge energy into one of
those buckets as the simulation progresses, and also keeps a per-component
ledger for finer-grained reporting.

Instantaneous power (Figure 15b) is tracked with :class:`PowerMonitor`,
which samples the sum of per-component draws whenever a component changes
state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..sim.engine import Environment
from ..sim.stats import TimeSeries

# Canonical energy buckets used across all evaluation figures.
DATA_MOVEMENT = "data_movement"
COMPUTATION = "computation"
STORAGE_ACCESS = "storage_access"
BUCKETS = (DATA_MOVEMENT, COMPUTATION, STORAGE_ACCESS)


@dataclass
class EnergyBreakdown:
    """Energy (joules) split into the paper's three buckets."""

    data_movement: float = 0.0
    computation: float = 0.0
    storage_access: float = 0.0

    @property
    def total(self) -> float:
        return self.data_movement + self.computation + self.storage_access

    def fraction(self, bucket: str) -> float:
        total = self.total
        if total <= 0:
            return 0.0
        return getattr(self, bucket) / total

    def normalized_to(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        """Scale every bucket by ``other``'s total (for paper-style plots)."""
        denom = other.total
        if denom <= 0:
            raise ValueError("cannot normalize to zero total energy")
        return EnergyBreakdown(
            data_movement=self.data_movement / denom,
            computation=self.computation / denom,
            storage_access=self.storage_access / denom,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            DATA_MOVEMENT: self.data_movement,
            COMPUTATION: self.computation,
            STORAGE_ACCESS: self.storage_access,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "EnergyBreakdown":
        return cls(
            data_movement=data.get(DATA_MOVEMENT, 0.0),
            computation=data.get(COMPUTATION, 0.0),
            storage_access=data.get(STORAGE_ACCESS, 0.0),
        )


class EnergyAccountant:
    """Collects energy charges from every simulated component."""

    def __init__(self) -> None:
        self.breakdown = EnergyBreakdown()
        self.by_component: Dict[str, float] = {}

    def charge(self, component: str, bucket: str, joules: float) -> None:
        """Charge ``joules`` of energy consumed by ``component``."""
        if joules < 0:
            raise ValueError("energy must be non-negative")
        if bucket not in BUCKETS:
            raise ValueError(f"unknown energy bucket: {bucket!r}")
        setattr(self.breakdown, bucket, getattr(self.breakdown, bucket) + joules)
        self.by_component[component] = self.by_component.get(component, 0.0) + joules

    def charge_power(self, component: str, bucket: str, watts: float,
                     duration_s: float) -> None:
        """Charge ``watts`` drawn for ``duration_s`` seconds."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        self.charge(component, bucket, watts * duration_s)

    @property
    def total_joules(self) -> float:
        return self.breakdown.total


class PowerMonitor:
    """Tracks instantaneous system power as a time series (Fig. 15b)."""

    def __init__(self, env: Environment, baseline_w: float = 0.0):
        self.env = env
        self.baseline_w = baseline_w
        self._draws: Dict[str, float] = {}
        self.series = TimeSeries("power_w")
        self.series.record(env.now, baseline_w)

    def set_draw(self, component: str, watts: float) -> None:
        """Set the current draw of ``component`` (0 to clear)."""
        if watts < 0:
            raise ValueError("power draw must be non-negative")
        if watts == 0:
            self._draws.pop(component, None)
        else:
            self._draws[component] = watts
        self.series.record(self.env.now, self.current_power())

    def current_power(self) -> float:
        return self.baseline_w + sum(self._draws.values())

    def average_power(self, start: float = 0.0,
                      end: Optional[float] = None) -> float:
        """Time-weighted average power over [start, end]."""
        end = self.env.now if end is None else end
        if end <= start:
            return self.current_power()
        samples = self.series.samples
        total = 0.0
        prev_t, prev_v = start, self.series.value_at(start)
        for sample in samples:
            if sample.time <= start:
                continue
            if sample.time >= end:
                break
            total += prev_v * (sample.time - prev_t)
            prev_t, prev_v = sample.time, sample.value
        total += prev_v * (end - prev_t)
        return total / (end - start)
