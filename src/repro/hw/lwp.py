"""Lightweight processor (LWP) model.

The FlashAbacus prototype uses eight TI C6678-style VLIW cores.  For a
behavioral reproduction we do not emulate the instruction set; instead an
:class:`LWP` converts an instruction count into execution time using the
core frequency and an effective issue rate, while tracking busy time,
functional-unit occupancy and energy.

Two of the eight LWPs are reserved by FlashAbacus for Flashvisor and
Storengine (Section 3.3 / 4.3); the rest are *workers*.  The same model is
reused by the SIMD baseline, where all LWPs run data-parallel loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.engine import Environment
from ..sim.stats import IntervalAccumulator, TimeSeries, TimeWeightedStat
from .power import COMPUTATION, EnergyAccountant, PowerMonitor
from .spec import LWPSpec


class ClusterActivity:
    """Shared tracker of how many functional units are active cluster-wide.

    Feeds the Fig. 15a functional-unit utilization time series.
    """

    def __init__(self, env: Environment):
        self.env = env
        self.stat = TimeWeightedStat(0.0, env.now)
        self.series = TimeSeries("active_functional_units")
        self.series.record(env.now, 0.0)

    def adjust(self, delta: float) -> None:
        self.stat.adjust(self.env.now, delta)
        self.series.record(self.env.now, self.stat.value)

    @property
    def active(self) -> float:
        return self.stat.value

    def mean(self) -> float:
        return self.stat.mean(self.env.now)


@dataclass
class ComputeEstimate:
    """Breakdown of a compute phase produced by :meth:`LWP.estimate`."""

    instructions: float
    cycles: float
    seconds: float
    functional_units_used: int


class LWP:
    """One lightweight VLIW processor with private L1/L2 caches."""

    def __init__(self, env: Environment, spec: LWPSpec, lwp_id: int,
                 energy: Optional[EnergyAccountant] = None,
                 power_monitor: Optional[PowerMonitor] = None,
                 role: str = "worker",
                 activity: Optional[ClusterActivity] = None):
        self.env = env
        self.spec = spec
        self.lwp_id = lwp_id
        self.role = role
        self.energy = energy
        self.power_monitor = power_monitor
        self.activity = activity
        self._busy = IntervalAccumulator()
        self._fu_active = TimeWeightedStat(0.0, env.now)
        self.instructions_retired = 0.0
        self.kernels_executed = 0
        self.screens_executed = 0

    # -- timing model ------------------------------------------------------
    def estimate(self, instructions: float,
                 load_store_fraction: float = 0.3,
                 parallelism: float = 1.0) -> ComputeEstimate:
        """Estimate the execution profile of ``instructions`` on this core.

        ``load_store_fraction`` is the LD/ST ratio of the workload (Table 2)
        and bounds how many of the eight functional units the compiler can
        keep busy; ``parallelism`` optionally scales the effective issue
        rate for code with little ILP (serial microblocks).
        """
        if instructions < 0:
            raise ValueError("instructions must be non-negative")
        if not 0.0 <= load_store_fraction <= 1.0:
            raise ValueError("load_store_fraction must be in [0, 1]")
        if parallelism <= 0:
            raise ValueError("parallelism must be positive")
        # LD/ST-heavy code is limited by the two load/store units; compute
        # heavy code can use the four general + two multiply units.
        ld_st_issue = self.spec.load_store_units / max(load_store_fraction, 1e-9)
        compute_issue = ((self.spec.general_units + self.spec.multiply_units)
                         / max(1.0 - load_store_fraction, 1e-9))
        issue = min(self.spec.effective_ipc, ld_st_issue, compute_issue)
        issue = max(1.0, issue * parallelism)
        cycles = instructions / issue
        seconds = cycles / self.spec.frequency_hz
        fus = min(self.spec.functional_units, max(1, round(issue)))
        return ComputeEstimate(instructions=instructions, cycles=cycles,
                               seconds=seconds, functional_units_used=fus)

    # -- simulated execution ---------------------------------------------
    def compute(self, instructions: float, load_store_fraction: float = 0.3,
                parallelism: float = 1.0, bucket: str = COMPUTATION):
        """Process generator: occupy this LWP for the estimated duration."""
        est = self.estimate(instructions, load_store_fraction, parallelism)
        self.begin_busy(est.functional_units_used)
        yield self.env.timeout(est.seconds)
        self.end_busy(est.functional_units_used)
        self.instructions_retired += instructions
        if self.energy is not None:
            self.energy.charge_power(f"lwp{self.lwp_id}", bucket,
                                     self.spec.power_per_core_w, est.seconds)
        return est

    def busy_for(self, seconds: float, functional_units: int = 1,
                 bucket: str = COMPUTATION):
        """Process generator: occupy the core for a fixed duration."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.begin_busy(functional_units)
        yield self.env.timeout(seconds)
        self.end_busy(functional_units)
        if self.energy is not None:
            self.energy.charge_power(f"lwp{self.lwp_id}", bucket,
                                     self.spec.power_per_core_w, seconds)

    # -- accounting hooks ----------------------------------------------------
    def begin_busy(self, functional_units: int = 1) -> None:
        self._busy.begin(self.env.now)
        self._fu_active.adjust(self.env.now, functional_units)
        if self.activity is not None:
            self.activity.adjust(functional_units)
        if self.power_monitor is not None:
            self.power_monitor.set_draw(f"lwp{self.lwp_id}",
                                        self.spec.power_per_core_w)

    def end_busy(self, functional_units: int = 1) -> None:
        self._busy.end(self.env.now)
        self._fu_active.adjust(self.env.now, -functional_units)
        if self.activity is not None:
            self.activity.adjust(-functional_units)
        if self.power_monitor is not None and self._fu_active.value <= 0:
            self.power_monitor.set_draw(f"lwp{self.lwp_id}", 0.0)

    # -- metrics ---------------------------------------------------------------
    def busy_time(self) -> float:
        return self._busy.busy_time(self.env.now)

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Busy fraction over ``horizon`` (defaults to elapsed sim time)."""
        horizon = self.env.now if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        return min(1.0, self._busy.busy_time(self.env.now) / horizon)

    def active_functional_units(self) -> float:
        return self._fu_active.value

    def mean_functional_units(self) -> float:
        return self._fu_active.mean(self.env.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LWP(id={self.lwp_id}, role={self.role})"


class LWPCluster:
    """The full set of LWPs on the accelerator with role assignments."""

    FLASHVISOR_ROLE = "flashvisor"
    STORENGINE_ROLE = "storengine"
    WORKER_ROLE = "worker"

    def __init__(self, env: Environment, spec: LWPSpec,
                 energy: Optional[EnergyAccountant] = None,
                 power_monitor: Optional[PowerMonitor] = None,
                 reserve_management_cores: bool = True):
        self.env = env
        self.spec = spec
        self.activity = ClusterActivity(env)
        self.lwps = []
        for i in range(spec.count):
            if reserve_management_cores and i == 0:
                role = self.FLASHVISOR_ROLE
            elif reserve_management_cores and i == 1:
                role = self.STORENGINE_ROLE
            else:
                role = self.WORKER_ROLE
            self.lwps.append(LWP(env, spec, i, energy, power_monitor, role,
                                 activity=self.activity))

    @property
    def flashvisor_lwp(self) -> Optional[LWP]:
        for lwp in self.lwps:
            if lwp.role == self.FLASHVISOR_ROLE:
                return lwp
        return None

    @property
    def storengine_lwp(self) -> Optional[LWP]:
        for lwp in self.lwps:
            if lwp.role == self.STORENGINE_ROLE:
                return lwp
        return None

    @property
    def workers(self):
        return [lwp for lwp in self.lwps if lwp.role == self.WORKER_ROLE]

    def __len__(self) -> int:
        return len(self.lwps)

    def __iter__(self):
        return iter(self.lwps)

    def worker_utilization(self, horizon: Optional[float] = None) -> float:
        """Mean utilization across worker LWPs (Fig. 14 metric)."""
        workers = self.workers
        if not workers:
            return 0.0
        return sum(w.utilization(horizon) for w in workers) / len(workers)

    def total_active_functional_units(self) -> float:
        return sum(w.active_functional_units() for w in self.workers)
