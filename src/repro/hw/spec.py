"""Hardware specifications of the FlashAbacus prototype and the baseline host.

The numbers reproduce Table 1 of the paper ("Hardware specification of our
baseline") plus the quantities quoted in the prose of Sections 2.2 and 5
(page latencies, host CPU/DRAM, the Intel NVMe 750 SSD used by the SIMD
baseline).  Everything is expressed in SI base units: seconds, bytes,
bytes/second, watts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Dict

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

US = 1e-6
MS = 1e-3


@dataclass(frozen=True)
class LWPSpec:
    """One TI-style VLIW lightweight processor (Table 1, "LWP" row)."""

    count: int = 8
    frequency_hz: float = 1.0e9
    power_per_core_w: float = 0.8
    functional_units: int = 8
    multiply_units: int = 2
    general_units: int = 4
    load_store_units: int = 2
    l1_cache_bytes: int = 64 * KB
    l2_cache_bytes: int = 512 * KB
    # Effective sustained operations per cycle for the descriptor-level
    # workloads we run; a VLIW with 8 FUs rarely keeps them all busy.
    effective_ipc: float = 4.0


@dataclass(frozen=True)
class MemorySpec:
    """DDR3L working memory and the SRAM scratchpad (Table 1)."""

    ddr_capacity_bytes: int = 1 * GB
    ddr_bandwidth: float = 6.4 * GB
    ddr_latency_s: float = 60e-9
    ddr_power_w: float = 0.7
    scratchpad_capacity_bytes: int = 4 * MB
    scratchpad_bandwidth: float = 16 * GB
    scratchpad_latency_s: float = 10e-9
    scratchpad_banks: int = 8


@dataclass(frozen=True)
class InterconnectSpec:
    """Two-tier partial crossbar plus message-queue hardware (Table 1)."""

    tier1_bandwidth: float = 16 * GB
    tier1_latency_s: float = 20e-9
    tier2_bandwidth: float = 5.2 * GB
    tier2_latency_s: float = 40e-9
    message_queue_latency_s: float = 0.5e-6
    message_queue_depth: int = 64


@dataclass(frozen=True)
class PCIeSpec:
    """PCIe v2.0 x2 link between the host and the accelerator (Table 1)."""

    bandwidth: float = 1 * GB
    latency_s: float = 1e-6
    power_w: float = 0.17


@dataclass(frozen=True)
class FlashSpec:
    """Flash backbone: 4 channels x 4 TLC packages x 2 dies (Section 2.2)."""

    channels: int = 4
    packages_per_channel: int = 4
    dies_per_package: int = 2
    planes_per_die: int = 2
    page_bytes: int = 8 * KB
    pages_per_block: int = 256
    blocks_per_die: int = 512
    page_read_latency_s: float = 81 * US
    page_program_latency_s: float = 2.6 * MS
    block_erase_latency_s: float = 3.5 * MS
    # NV-DDR2 bus: ~800 MB/s per channel gives the 3.2 GB/s estimate in
    # Table 1 for the whole backbone.
    channel_bus_bandwidth: float = 800 * MB
    power_w: float = 11.0
    # Background write-buffer flushes keep only a few dies programming at a
    # time, so they draw a fraction of the fully-active backbone power.
    program_power_w: float = 4.0
    # Over-provisioning fraction reserved for garbage collection.
    overprovision: float = 0.07

    @property
    def total_dies(self) -> int:
        return self.channels * self.packages_per_channel * self.dies_per_package

    @property
    def capacity_bytes(self) -> int:
        return (self.total_dies * self.blocks_per_die * self.pages_per_block
                * self.page_bytes)

    @property
    def page_group_bytes(self) -> int:
        """A page group stripes one page across every channel and plane."""
        return self.channels * self.planes_per_die * self.page_bytes


@dataclass(frozen=True)
class HostSpec:
    """Host used by the baseline (Xeon E5-2620v3 + 32 GB DDR4 + NVMe 750)."""

    cpu_cores: int = 6
    cpu_frequency_hz: float = 2.4e9
    cpu_active_power_w: float = 85.0
    cpu_idle_power_w: float = 15.0
    dram_capacity_bytes: int = 32 * GB
    dram_bandwidth: float = 25.6 * GB
    dram_power_w: float = 6.0
    # Storage-stack costs per I/O request (file system + block layer + user
    # to kernel copies + mode switches); calibrated so data-intensive
    # PolyBench kernels spend most of their time in the storage path, as the
    # paper's Figure 3d reports.
    syscall_latency_s: float = 6e-6
    filesystem_latency_s: float = 14e-6
    driver_latency_s: float = 5e-6
    copies_per_io: int = 2


@dataclass(frozen=True)
class SSDSpec:
    """External NVMe SSD of the baseline (Intel 750-class)."""

    capacity_bytes: int = 400 * GB
    read_bandwidth: float = 2.2 * GB
    write_bandwidth: float = 0.9 * GB
    read_latency_s: float = 120 * US
    write_latency_s: float = 30 * US
    active_power_w: float = 22.0
    idle_power_w: float = 4.0


@dataclass(frozen=True)
class HardwareSpec:
    """Complete platform description used to instantiate simulations."""

    lwp: LWPSpec = field(default_factory=LWPSpec)
    memory: MemorySpec = field(default_factory=MemorySpec)
    interconnect: InterconnectSpec = field(default_factory=InterconnectSpec)
    pcie: PCIeSpec = field(default_factory=PCIeSpec)
    flash: FlashSpec = field(default_factory=FlashSpec)
    host: HostSpec = field(default_factory=HostSpec)
    ssd: SSDSpec = field(default_factory=SSDSpec)

    def as_dict(self) -> Dict:
        return asdict(self)

    def table1_rows(self) -> list:
        """Render the Table 1 rows the paper reports for our baseline."""
        flash_gb = self.flash.capacity_bytes / GB
        return [
            ("LWP", f"{self.lwp.count} processors",
             f"{self.lwp.frequency_hz / 1e9:.0f}GHz",
             f"{self.lwp.power_per_core_w}W/core", "16GB/s"),
            ("L1/L2 cache",
             f"{self.lwp.l1_cache_bytes // KB}KB/{self.lwp.l2_cache_bytes // KB}KB",
             "500MHz", "N/A", "16GB/s"),
            ("Scratchpad",
             f"{self.memory.scratchpad_capacity_bytes // MB}MB",
             "500MHz", "N/A", "16GB/s"),
            ("Memory", f"DDR3L, {self.memory.ddr_capacity_bytes // GB}GB",
             "800MHz", f"{self.memory.ddr_power_w}W",
             f"{self.memory.ddr_bandwidth / GB:.1f}GB/s"),
            ("SSD", f"{self.flash.total_dies} dies, {flash_gb:.0f}GB",
             "200MHz", f"{self.flash.power_w}W",
             f"{self.flash.channels * self.flash.channel_bus_bandwidth / GB:.1f}GB/s"),
            ("PCIe", "v2.0, 2 lanes", "5GHz", f"{self.pcie.power_w}W",
             f"{self.pcie.bandwidth / GB:.0f}GB/s"),
            ("Tier-1 crossbar", "256 lanes", "500MHz", "N/A",
             f"{self.interconnect.tier1_bandwidth / GB:.0f}GB/s"),
            ("Tier-2 crossbar", "128 lanes", "333MHz", "N/A",
             f"{self.interconnect.tier2_bandwidth / GB:.1f}GB/s"),
        ]


DEFAULT_SPEC = HardwareSpec()


def prototype_spec() -> HardwareSpec:
    """The default FlashAbacus prototype configuration (Table 1)."""
    return HardwareSpec()
