"""PCIe link between the host and the accelerator.

Used by the FlashAbacus offload path (kernel description tables are written
through a BAR window into DDR3L) and, far more heavily, by the SIMD
baseline which must stream all input/output data over this link.
"""

from __future__ import annotations

from typing import Optional

from ..sim.engine import Environment
from ..sim.resources import BandwidthPipe
from .power import DATA_MOVEMENT, EnergyAccountant
from .spec import PCIeSpec


class PCIeLink:
    """A PCIe v2.0 x2 link with bandwidth, latency and link power."""

    def __init__(self, env: Environment, spec: PCIeSpec,
                 energy: Optional[EnergyAccountant] = None,
                 name: str = "pcie"):
        self.env = env
        self.spec = spec
        self.energy = energy
        self.name = name
        self.pipe = BandwidthPipe(env, spec.bandwidth, spec.latency_s,
                                  name=name)
        self.interrupts_delivered = 0

    def transfer(self, num_bytes: int):
        """Process generator: DMA ``num_bytes`` across the link."""
        record = yield from self.pipe.transfer(num_bytes)
        if self.energy is not None:
            self.energy.charge_power(self.name, DATA_MOVEMENT,
                                     self.spec.power_w, record.duration)
        return record

    def interrupt(self):
        """Process generator: deliver a doorbell/interrupt (latency only)."""
        yield self.env.timeout(self.spec.latency_s)
        self.interrupts_delivered += 1

    def transfer_time(self, num_bytes: int) -> float:
        """Unloaded transfer time for ``num_bytes``."""
        return self.pipe.occupancy_time(num_bytes)

    @property
    def bytes_moved(self) -> int:
        return self.pipe.bytes_moved

    def utilization(self) -> float:
        return self.pipe.utilization()
