"""On-chip interconnect: two-tier crossbar and hardware message queues.

The prototype connects the LWPs and memories over a high-bandwidth tier-1
streaming crossbar and reaches the AMC/PCIe/flash side over a slower tier-2
crossbar (Table 1).  LWPs communicate through hardware message queues
attached to the network (Section 2.2); FlashAbacus uses those queues for
kernel-completion notifications and Flashvisor mapping requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..sim.engine import Environment
from ..sim.resources import BandwidthPipe, Store
from .spec import InterconnectSpec


@dataclass
class Message:
    """One entry in a hardware message queue."""

    sender: str
    kind: str
    payload: Any = None
    enqueued_at: float = 0.0
    reply_to: Optional["MessageQueue"] = None


class MessageQueue:
    """A bounded hardware queue with a fixed per-message latency."""

    def __init__(self, env: Environment, name: str,
                 latency_s: float = 0.5e-6, depth: int = 64):
        self.env = env
        self.name = name
        self.latency_s = latency_s
        self.store = Store(env, capacity=depth, name=name)
        self.messages_sent = 0
        self.messages_received = 0

    def send(self, message: Message):
        """Process generator: enqueue ``message`` (includes queue latency)."""
        message.enqueued_at = self.env.now
        yield self.env.timeout(self.latency_s)
        yield self.store.put(message)
        self.messages_sent += 1

    def receive(self):
        """Process generator: dequeue the next message (blocking)."""
        message = yield self.store.get()
        self.messages_received += 1
        return message

    def __len__(self) -> int:
        return len(self.store)


class Crossbar:
    """A crossbar tier modeled as parallel ports sharing total bandwidth."""

    def __init__(self, env: Environment, name: str, bandwidth: float,
                 latency_s: float, ports: int = 4):
        if ports < 1:
            raise ValueError("ports must be >= 1")
        self.env = env
        self.name = name
        self.ports = ports
        self.port_pipes = [
            BandwidthPipe(env, bandwidth / ports, latency_s,
                          name=f"{name}.port{i}")
            for i in range(ports)
        ]
        self._next_port = 0

    def transfer(self, num_bytes: int, port: Optional[int] = None):
        """Process generator: move bytes through one crossbar port."""
        if port is None:
            port = self._next_port
            self._next_port = (self._next_port + 1) % self.ports
        pipe = self.port_pipes[port % self.ports]
        record = yield from pipe.transfer(num_bytes)
        return record

    def bytes_moved(self) -> int:
        return sum(pipe.bytes_moved for pipe in self.port_pipes)

    def utilization(self) -> float:
        return sum(p.utilization() for p in self.port_pipes) / self.ports


class Interconnect:
    """The complete two-tier network of the FlashAbacus platform."""

    def __init__(self, env: Environment, spec: InterconnectSpec,
                 tier1_ports: int = 8, tier2_ports: int = 2):
        self.env = env
        self.spec = spec
        self.tier1 = Crossbar(env, "tier1", spec.tier1_bandwidth,
                              spec.tier1_latency_s, ports=tier1_ports)
        self.tier2 = Crossbar(env, "tier2", spec.tier2_bandwidth,
                              spec.tier2_latency_s, ports=tier2_ports)

    def new_queue(self, name: str) -> MessageQueue:
        """Create a hardware message queue attached to the network."""
        return MessageQueue(self.env, name,
                            latency_s=self.spec.message_queue_latency_s,
                            depth=self.spec.message_queue_depth)
