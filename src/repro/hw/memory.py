"""On-accelerator memory models: DDR3L working memory and the scratchpad.

DDR3L holds the data sections of each kernel (flash-mapped regions) and
buffers flash writes; the scratchpad holds Flashvisor's mapping table and
the hardware-queue entries (Section 2.2).  Both are modeled as bandwidth
pipes with capacity tracking so that allocation pressure (the reason
low-power accelerators must split work into multiple kernels) is visible.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.engine import Environment
from ..sim.resources import BandwidthPipe
from .power import EnergyAccountant, STORAGE_ACCESS, COMPUTATION
from .spec import MemorySpec


class CapacityError(MemoryError):
    """Raised when an allocation does not fit in the memory device."""


class MemoryDevice:
    """A byte-addressable memory with bandwidth, latency, and capacity."""

    def __init__(self, env: Environment, name: str, capacity_bytes: int,
                 bandwidth: float, latency_s: float,
                 power_w: float = 0.0,
                 energy: Optional[EnergyAccountant] = None,
                 energy_bucket: str = COMPUTATION):
        self.env = env
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.pipe = BandwidthPipe(env, bandwidth, latency_s, name=name)
        self.power_w = power_w
        self.energy = energy
        self.energy_bucket = energy_bucket
        self._allocations: Dict[str, int] = {}
        self.bytes_read = 0
        self.bytes_written = 0

    # -- capacity management -------------------------------------------------
    @property
    def allocated_bytes(self) -> int:
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.allocated_bytes

    def allocate(self, tag: str, num_bytes: int) -> None:
        """Reserve ``num_bytes`` under ``tag``; raises if it does not fit."""
        if num_bytes < 0:
            raise ValueError("allocation size must be non-negative")
        existing = self._allocations.get(tag, 0)
        if self.allocated_bytes - existing + num_bytes > self.capacity_bytes:
            raise CapacityError(
                f"{self.name}: cannot allocate {num_bytes} bytes for {tag!r}; "
                f"{self.free_bytes} free of {self.capacity_bytes}")
        self._allocations[tag] = existing + num_bytes

    def free(self, tag: str) -> int:
        """Release the allocation registered under ``tag``."""
        return self._allocations.pop(tag, 0)

    def holds(self, tag: str) -> bool:
        return tag in self._allocations

    # -- timed accesses -----------------------------------------------------
    def access_time(self, num_bytes: int) -> float:
        """Unloaded access time for ``num_bytes``."""
        return self.pipe.occupancy_time(num_bytes)

    def read(self, num_bytes: int):
        """Process generator: timed read of ``num_bytes``."""
        record = yield from self.pipe.transfer(num_bytes)
        self.bytes_read += num_bytes
        self._charge(record.duration)
        return record

    def write(self, num_bytes: int):
        """Process generator: timed write of ``num_bytes``."""
        record = yield from self.pipe.transfer(num_bytes)
        self.bytes_written += num_bytes
        self._charge(record.duration)
        return record

    def _charge(self, duration: float) -> None:
        if self.energy is not None and self.power_w > 0:
            self.energy.charge_power(self.name, self.energy_bucket,
                                     self.power_w, duration)

    def utilization(self) -> float:
        return self.pipe.utilization()


class DDR3L(MemoryDevice):
    """The 1 GB low-power DRAM that backs kernel data sections."""

    def __init__(self, env: Environment, spec: MemorySpec,
                 energy: Optional[EnergyAccountant] = None):
        super().__init__(env, "ddr3l", spec.ddr_capacity_bytes,
                         spec.ddr_bandwidth, spec.ddr_latency_s,
                         power_w=spec.ddr_power_w, energy=energy,
                         energy_bucket=COMPUTATION)


class Scratchpad(MemoryDevice):
    """The 4 MB SRAM scratchpad holding mapping tables and queue entries."""

    def __init__(self, env: Environment, spec: MemorySpec,
                 energy: Optional[EnergyAccountant] = None):
        super().__init__(env, "scratchpad", spec.scratchpad_capacity_bytes,
                         spec.scratchpad_bandwidth, spec.scratchpad_latency_s,
                         power_w=0.0, energy=energy,
                         energy_bucket=STORAGE_ACCESS)
        self.banks = spec.scratchpad_banks
