"""Per-device health modeling for the cluster layer.

Each device of the fleet is wrapped in a :class:`DeviceShard`: the built
backend + front-end pair plus a health state and routing counters.  Health
transitions come from the cluster's fault timeline
(:class:`~repro.platform.cluster.FaultSpec`) and change how the dispatcher
treats the device:

* ``HEALTHY`` — full dispatch capacity, receives new traffic.
* ``DEGRADED`` — a slow board: its dispatch capacity is derated by the
  cluster's ``degraded_capacity_factor``, so placement policies see a
  smaller device and route proportionally less work to it.
* ``FAILED`` — out of rotation: receives no new traffic; its queued
  backlog is evicted and rerouted; requests already in flight drain on
  the device (fail-stop with drain — no admitted request is dropped).
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING

from ..platform.config import PlatformConfig
from ..serve.backends import ServingBackend
from ..serve.frontend import ServingFrontend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serve.slo import SLOTracker


class DeviceHealth(Enum):
    """Health state of one device shard."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    FAILED = "failed"


class DeviceShard:
    """One device of the fleet: backend + front-end + health + counters."""

    def __init__(self, index: int, config: PlatformConfig,
                 backend: ServingBackend, frontend: ServingFrontend,
                 tracker: "SLOTracker"):
        self.index = index
        self.config = config
        self.backend = backend
        self.frontend = frontend
        self.tracker = tracker
        self.health = DeviceHealth.HEALTHY
        # Routing counters (cluster-level bookkeeping, not SLO accounting).
        self.routed = 0          # requests the dispatcher sent here
        self.rerouted_in = 0     # backlog records adopted from failed peers
        self.rerouted_out = 0    # backlog records evicted on failure
        # Elastic-fleet lifecycle (all no-ops on a static fleet).
        self.warming = False     # provisioned but still out of placement
        self.draining = False    # scale-down victim: no new traffic
        self.retired = False     # drained and finished; meter stopped
        self.activated_at = 0.0  # when the device started costing
        self.retired_at: float | None = None

    # -- ShardView surface (what placement policies observe) ----------------
    @property
    def queued(self) -> int:
        """Requests waiting in this shard's front-end queues."""
        return self.frontend.total_queued

    @property
    def in_flight(self) -> int:
        """Requests executing on this shard's backend."""
        return self.backend.in_flight

    @property
    def capacity(self) -> int:
        """Current dispatch capacity (health derating applied)."""
        return self.frontend.dispatch_capacity

    @property
    def energy_j(self) -> float:
        """Energy this shard's device has consumed (joules)."""
        return self.backend.energy_j

    # -- health ---------------------------------------------------------------
    @property
    def routable(self) -> bool:
        """Whether the dispatcher may send this shard new traffic.

        Failed devices are out of rotation (PR-3 fault path); elastic
        fleets additionally exclude devices still warming up and
        scale-down victims draining toward retirement.
        """
        return (self.health is not DeviceHealth.FAILED
                and not self.warming and not self.draining
                and not self.retired)

    def apply_health(self, state: DeviceHealth,
                     degraded_capacity_factor: float) -> None:
        """Switch health state and derate/restore dispatch capacity.

        Rerouting of a failed shard's backlog is the dispatcher's job
        (it owns the placement policy); this only flips the local state.
        """
        self.health = state
        if state is DeviceHealth.HEALTHY:
            self.frontend.capacity_limit = None
        elif state is DeviceHealth.DEGRADED:
            self.frontend.capacity_limit = max(
                1, int(self.backend.capacity * degraded_capacity_factor))
        else:  # FAILED: no new dispatches; in-flight work drains.
            self.frontend.capacity_limit = 0
        # Capacity may have grown: let the dispatcher re-evaluate.
        self.frontend._kick()
