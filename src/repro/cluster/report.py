"""Serializable result of one cluster serving run.

A :class:`ClusterReport` rolls the per-device
:class:`~repro.serve.report.ServingReport` objects of one fleet run into
fleet-level aggregates: conserved request counters (offered/admitted/
rejected/completed), fleet goodput, the fleet-wide latency tail,
per-tenant accounting, summed energy, placement statistics and the health
timeline that was applied.  Like the other reports it round-trips
losslessly through plain dicts so the experiment orchestrator's result
cache can persist it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..serve.report import ServingReport


@dataclass
class ClusterReport:
    """Results of one open-loop serving run on a sharded fleet."""

    system: str                 # cluster label, e.g. "cluster-4xIntraO3"
    workload: str               # scenario label, e.g. "serve-poisson-240rps"
    placement: str
    device_count: int
    duration_s: float
    makespan_s: float
    offered: int
    admitted: int
    rejected: int
    completed: int
    slo_violations: int
    offered_rps: float
    goodput_rps: float
    latency: Dict[str, Optional[float]] = field(default_factory=dict)
    per_tenant: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    energy_j: float = 0.0
    devices: List[ServingReport] = field(default_factory=list)
    placement_stats: Dict[str, Any] = field(default_factory=dict)
    health_events: List[List[Any]] = field(default_factory=list)
    # Metrics-bus timeline (repro.obs); None unless the run opted into
    # observability, so default runs keep their byte form.
    metrics: Optional[Dict[str, Any]] = None
    # Autoscaler summary (policy, scale events, size timeline, per-device
    # device-seconds); None unless the cluster ran elastic — static runs
    # keep their byte form.
    autoscaler: Optional[Dict[str, Any]] = None
    # Fleet-level learned-policy state snapshots (the placement bandit;
    # per-device admission/dispatch snapshots live on the device
    # reports); None unless the run used learned policies.
    learned: Optional[Dict[str, Any]] = None

    # -- convenience accessors ------------------------------------------------
    def percentile_s(self, key: str) -> Optional[float]:
        """Fleet latency percentile by key ("p50"/"p95"/"p99"/"p99.9")."""
        return self.latency.get(f"{key}_s")

    @property
    def p50_s(self) -> Optional[float]:
        """Fleet median end-to-end latency."""
        return self.percentile_s("p50")

    @property
    def p95_s(self) -> Optional[float]:
        """Fleet 95th-percentile end-to-end latency."""
        return self.percentile_s("p95")

    @property
    def p99_s(self) -> Optional[float]:
        """Fleet 99th-percentile end-to-end latency."""
        return self.percentile_s("p99")

    @property
    def admission_rate(self) -> float:
        """Fraction of offered requests admitted fleet-wide."""
        if self.offered == 0:
            return 0.0
        return self.admitted / self.offered

    @property
    def device_energy_j(self) -> List[float]:
        """Per-device energy totals, in device order."""
        return [device.energy_j for device in self.devices]

    @property
    def reroutes(self) -> int:
        """Backlog records moved off failed devices."""
        return int(self.placement_stats.get("reroutes", 0))

    # -- serialization --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-safe) form for caching and goldens."""
        data: Dict[str, Any] = {
            "system": self.system,
            "workload": self.workload,
            "placement": self.placement,
            "device_count": self.device_count,
            "duration_s": self.duration_s,
            "makespan_s": self.makespan_s,
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "slo_violations": self.slo_violations,
            "offered_rps": self.offered_rps,
            "goodput_rps": self.goodput_rps,
            "latency": dict(self.latency),
            "per_tenant": {tenant: dict(stats)
                           for tenant, stats in self.per_tenant.items()},
            "energy_j": self.energy_j,
            "devices": [device.to_dict() for device in self.devices],
            "placement_stats": dict(self.placement_stats),
            "health_events": [list(event) for event in self.health_events],
        }
        # Emitted only when set: runs without observability must stay
        # byte-identical to their goldens.
        if self.metrics is not None:
            data["metrics"] = dict(self.metrics)
        if self.autoscaler is not None:
            data["autoscaler"] = dict(self.autoscaler)
        if self.learned is not None:
            data["learned"] = dict(self.learned)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClusterReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            system=data["system"],
            workload=data["workload"],
            placement=data["placement"],
            device_count=data["device_count"],
            duration_s=data["duration_s"],
            makespan_s=data["makespan_s"],
            offered=data["offered"],
            admitted=data["admitted"],
            rejected=data["rejected"],
            completed=data["completed"],
            slo_violations=data["slo_violations"],
            offered_rps=data["offered_rps"],
            goodput_rps=data["goodput_rps"],
            latency=dict(data.get("latency", {})),
            per_tenant={tenant: dict(stats) for tenant, stats
                        in data.get("per_tenant", {}).items()},
            energy_j=data.get("energy_j", 0.0),
            devices=[ServingReport.from_dict(d)
                     for d in data.get("devices", [])],
            placement_stats=dict(data.get("placement_stats", {})),
            health_events=[list(event)
                           for event in data.get("health_events", [])],
            metrics=(dict(data["metrics"])
                     if data.get("metrics") is not None else None),
            autoscaler=(dict(data["autoscaler"])
                        if data.get("autoscaler") is not None else None),
            learned=(dict(data["learned"])
                     if data.get("learned") is not None else None),
        )
