"""Pluggable placement policies for the cluster dispatcher.

A placement policy picks the device shard each arriving request is routed
to.  Policies only ever see *routable* shards (healthy or degraded — never
failed ones) through the tiny :class:`ShardView` surface, and every policy
is deterministic: the same request sequence over the same fleet state
always routes identically, which is what keeps cluster runs cacheable by
content hash.

* :class:`RoundRobinPlacement` — cycle over devices, skipping
  non-routable ones.
* :class:`LeastOutstandingPlacement` — route to the device with the
  lowest backlog per unit of dispatch capacity (degraded devices look
  proportionally smaller).
* :class:`TenantAffinityPlacement` — stable-hash the tenant name onto a
  home device so a tenant's requests co-locate (warm input regions);
  falls forward deterministically when the home device is out.
* :class:`PowerAwarePlacement` — route to the device with the lowest
  accumulated energy, spreading thermal/energy load across the fleet.
* :class:`JoinShortestQueuePlacement` — route to the device with the
  fewest *queued* (not yet dispatched) requests, the textbook JSQ rule.

Every policy registers itself in the unified registry
(:mod:`repro.policy`) under the ``placement`` domain, so a
:class:`~repro.platform.ClusterConfig` picks one declaratively via a
:class:`~repro.policy.PolicySpec`.  :func:`make_placement` is the
pre-registry shim.
"""

from __future__ import annotations

import hashlib
import warnings
from typing import Protocol, Sequence

from ..platform.cluster import PLACEMENT_POLICIES
from ..policy import PolicySpec, build_policy, policy_class, register_policy
from ..serve.request import Request


class ShardView(Protocol):
    """What a placement policy may observe about one device shard."""

    @property
    def index(self) -> int: ...
    @property
    def queued(self) -> int: ...
    @property
    def in_flight(self) -> int: ...
    @property
    def capacity(self) -> int: ...
    @property
    def energy_j(self) -> float: ...


def stable_tenant_hash(tenant: str, salt: int = 0) -> int:
    """Process-independent tenant hash (built-in ``hash`` is seeded)."""
    digest = hashlib.sha256(f"{salt}:{tenant}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class PlacementPolicy:
    """Base policy: pick one shard from the routable set."""

    name = "placement"

    #: Whether ``select`` reads the shards' load/energy state (queue
    #: depth, in-flight count, capacity, accumulated energy) as opposed
    #: to only their identity (index, routability).  The epoch-parallel
    #: runner keys its epoch schedule off this: a snapshot-independent
    #: policy routes identically no matter how stale the coordinator's
    #: shard snapshots are, so epochs may widen to the next cross-shard
    #: event (fault or horizon); a snapshot-dependent policy needs the
    #: fixed exchange cadence for fresh snapshots.  Conservative default:
    #: policies that do not declare themselves independent are treated as
    #: snapshot-dependent.
    snapshot_dependent = True

    def select(self, request: Request,
               shards: Sequence[ShardView]) -> ShardView:
        """Pick the shard ``request`` is routed to."""
        raise NotImplementedError

    def on_reroute(self, record, from_device: int,
                   to_device: int) -> None:
        """A queued record moved devices (failure or scale-down drain).

        The dispatcher notifies after every reroute decision; static
        policies ignore it, learned ones count/penalize.
        """


@register_policy("placement")
class RoundRobinPlacement(PlacementPolicy):
    """Cycle over device indices, skipping non-routable devices."""

    name = "round_robin"
    snapshot_dependent = False    # routes by cursor + routability only

    def __init__(self, device_count: int):
        if device_count < 1:
            raise ValueError("device_count must be >= 1")
        self.device_count = device_count
        self._cursor = 0

    def select(self, request: Request,
               shards: Sequence[ShardView]) -> ShardView:
        """The next routable device in cyclic index order."""
        by_index = {shard.index: shard for shard in shards}
        for _ in range(self.device_count):
            index = self._cursor
            self._cursor = (self._cursor + 1) % self.device_count
            if index in by_index:
                return by_index[index]
        # The dispatcher guarantees shards is non-empty.
        return shards[0]


@register_policy("placement")
class LeastOutstandingPlacement(PlacementPolicy):
    """Lowest backlog per unit of dispatch capacity, ties to the lowest index."""

    name = "least_outstanding"

    def select(self, request: Request,
               shards: Sequence[ShardView]) -> ShardView:
        """The shard with the lowest backlog per unit of capacity."""
        def load(shard: ShardView):
            """Sort key: (relative backlog, index)."""
            outstanding = shard.queued + shard.in_flight
            return (outstanding / max(shard.capacity, 1), shard.index)
        return min(shards, key=load)


@register_policy("placement")
class TenantAffinityPlacement(PlacementPolicy):
    """Hash each tenant onto a home device; fall forward when it is out.

    The home index is computed over the *full* device count (not just the
    currently-routable set), so a tenant's home is stable across health
    transitions of unrelated devices.
    """

    name = "tenant_affinity"
    snapshot_dependent = False    # routes by tenant hash + routability only

    def __init__(self, device_count: int, salt: int = 0):
        if device_count < 1:
            raise ValueError("device_count must be >= 1")
        self.device_count = device_count
        self.salt = salt

    def home_index(self, tenant: str) -> int:
        """The tenant's stable home device index."""
        return stable_tenant_hash(tenant, self.salt) % self.device_count

    def select(self, request: Request,
               shards: Sequence[ShardView]) -> ShardView:
        """The home device if routable, else the next index after it."""
        by_index = {shard.index: shard for shard in shards}
        home = self.home_index(request.tenant)
        for offset in range(self.device_count):
            index = (home + offset) % self.device_count
            if index in by_index:
                return by_index[index]
        return shards[0]


@register_policy("placement")
class PowerAwarePlacement(PlacementPolicy):
    """Lowest accumulated energy first, ties to the lowest index."""

    name = "power_aware"

    def select(self, request: Request,
               shards: Sequence[ShardView]) -> ShardView:
        """The shard with the lowest accumulated energy."""
        return min(shards, key=lambda s: (s.energy_j, s.index))


@register_policy("placement")
class JoinShortestQueuePlacement(PlacementPolicy):
    """Fewest queued (not yet dispatched) requests, ties to the lowest index.

    The textbook JSQ rule.  Unlike :class:`LeastOutstandingPlacement` it
    ignores in-flight work and capacity: only the visible queue length
    counts, so a device with many workers mid-service but an empty queue
    looks maximally attractive.
    """

    name = "join_shortest_queue"

    def select(self, request: Request,
               shards: Sequence[ShardView]) -> ShardView:
        """The shard with the shortest queue."""
        return min(shards, key=lambda s: (s.queued, s.index))


def placement_snapshot_dependent(spec) -> bool:
    """Whether ``spec`` names a placement policy that reads shard state.

    Resolved from the class flag (like :func:`~repro.policy.registry.
    policy_is_learned`), not a name list, so third-party policies are
    classified by what they declare — and, defaulting to ``True``, are
    treated conservatively when they declare nothing.
    """
    spec = PolicySpec.coerce(spec)
    return bool(getattr(policy_class("placement", spec.name),
                        "snapshot_dependent", True))


def make_placement(name: str, device_count: int,
                   affinity_salt: int = 0) -> PlacementPolicy:
    """Deprecated: instantiate a placement policy by name.

    Kept as a shim over the unified policy registry; use
    ``repro.policy.build_policy("placement", name, device_count=...,
    salt=...)`` (or a :class:`~repro.policy.PolicySpec`) instead.
    """
    warnings.warn(
        "make_placement() is deprecated; use repro.policy.build_policy("
        "'placement', name, device_count=..., salt=...) instead",
        DeprecationWarning, stacklevel=2)
    try:
        return build_policy("placement", name, device_count=device_count,
                            salt=affinity_salt)
    except ValueError as exc:
        if "unknown placement policy" in str(exc):
            # Preserve the pre-registry message shape for existing callers.
            raise ValueError(f"unknown placement {name!r}; "
                             f"choose from {PLACEMENT_POLICIES}") from None
        raise
