"""Cluster scale-out layer: shard serving across a fleet of devices.

``repro.cluster`` sits on top of ``repro.serve``: where the serving layer
drives *one* accelerator (or baseline) under open-loop traffic, this layer
builds N independent devices — each its own
:class:`~repro.platform.PlatformBuilder` product — on one shared event
engine, routes arrivals to devices with pluggable placement policies
(round-robin, least-outstanding, tenant-affinity hashing, power-aware,
join-shortest-queue — all registered in the unified policy registry,
:mod:`repro.policy`), models per-device health (a device can be derated
or failed mid-run, its backlog rerouted without dropping admitted
requests), and rolls the per-device reports into a fleet-level
:class:`~repro.cluster.report.ClusterReport`.  Fleets can also run
*elastic*: an :class:`~repro.cluster.autoscale.AutoscaleController`
samples load each control tick and grows/shrinks the fleet through a
registered ``autoscaler`` policy, with warm-up on scale-up and a
drain-before-removal scale-down that never drops an admitted request.
"""

from .autoscale import (
    AutoscaleController,
    AutoscalerPolicy,
    FleetSignals,
    P99TargetAutoscaler,
    QueueDepthThresholdAutoscaler,
)
from .dispatcher import ClusterDispatcher, ShardTracker
from .health import DeviceHealth, DeviceShard
from .placement import (
    JoinShortestQueuePlacement,
    LeastOutstandingPlacement,
    PlacementPolicy,
    PowerAwarePlacement,
    RoundRobinPlacement,
    TenantAffinityPlacement,
    make_placement,
    stable_tenant_hash,
)
from .parallel import (
    ParallelClusterSession,
    ParallelConfig,
    run_cluster_parallel,
)
from .report import ClusterReport
from .session import ClusterSession, run_cluster

__all__ = [
    "AutoscaleController",
    "AutoscalerPolicy",
    "FleetSignals",
    "P99TargetAutoscaler",
    "QueueDepthThresholdAutoscaler",
    "ClusterDispatcher",
    "ShardTracker",
    "DeviceHealth",
    "DeviceShard",
    "JoinShortestQueuePlacement",
    "LeastOutstandingPlacement",
    "PlacementPolicy",
    "PowerAwarePlacement",
    "RoundRobinPlacement",
    "TenantAffinityPlacement",
    "make_placement",
    "stable_tenant_hash",
    "ParallelClusterSession",
    "ParallelConfig",
    "run_cluster_parallel",
    "ClusterReport",
    "ClusterSession",
    "run_cluster",
]
