"""Parallel cluster runner: device shards in worker processes.

The serial :class:`~repro.cluster.session.ClusterSession` advances every
device of the fleet on one shared event heap — N devices' events
interleave through a single priority queue on a single core.  But the
devices are *almost* independent: they only interact through routing
decisions (placement) and failure reroutes.  This module exploits that:

* every :class:`~repro.cluster.health.DeviceShard` gets its **own**
  :class:`~repro.sim.engine.Environment`, and shards are partitioned
  over worker processes (Linux ``fork`` — workers inherit the scenario,
  cluster config and the full generated request list through fork and
  never unpickle any of them);
* cross-shard interaction is quantized into **epochs** of simulated
  time.  The coordinator routes each epoch's arrivals using the
  placement policy over epoch-boundary shard snapshots, the workers
  advance their shards to the epoch end independently, and completions,
  health transitions and evicted backlogs flow back at the boundary.

The epoch schedule is derived deterministically from config alone
(:func:`build_epoch_schedule`): a boundary is forced at every fault
time — so evictions reroute at exactly the simulated instant the serial
dispatcher reroutes them — plus the arrival horizon.  When the placement
policy is *snapshot-independent* (it routes without reading shard load,
e.g. round-robin or tenant-affinity; see
:data:`~repro.cluster.placement.PlacementPolicy.snapshot_dependent`),
those forced boundaries are the whole schedule: a healthy fleet runs the
entire scenario in one coordinator round-trip.  Snapshot-dependent
policies (JSQ, least-outstanding, power-aware) additionally keep the
fixed ``epoch_s`` grid so routing keeps observing fresh queue state.
Whether adaptive widening is enabled never changes results — for
snapshot-independent policies routing cannot observe the difference, for
snapshot-dependent ones nothing widens.

What crosses the process boundary is packed flat
(:func:`pack_shard_result` / :func:`unpack_shard_result`): arrivals ship
as request indices into the fork-shared request list (never as pickled
request objects), completions as parallel typed arrays with interned
tenant indices and no reconstructible fields (the per-shard sequence is
the list position), evicted backlogs as ``(request index, admitted_at,
reroutes)`` triples, and admission outcomes as per-tenant count deltas —
only touched tenants are ever shipped.

Determinism contract: the run is seed-reproducible and **independent of
the worker count** — one worker and eight workers produce byte-identical
:class:`~repro.cluster.report.ClusterReport`s, and the in-process
``workers=1`` path executes the exact same coordinator logic on the
exact same payloads (the wire codec is lossless).  For
snapshot-independent placement the report is additionally byte-identical
to the serial session's whenever the fleet still has work at the final
epoch boundary (the normal operating regime for every shipped benchmark
and sweep): forced fault boundaries reproduce the serial reroute
interleaving exactly, shard clocks are never advanced past their last
processed event (:meth:`~repro.sim.engine.Environment.run_events`), and
the drain runs in two phases — settle every shard, compute the fleet
settle time, then finish every backend at that shared instant like the
serial session does.  In a run that goes fully idle before the horizon,
background poller events can leave a shard's clock past the fleet settle
time, and the single ``makespan_s`` value may then differ from serial;
every other field still matches.

Observability note: this runner does not support :mod:`repro.obs` —
per-worker tracers and metric samples cannot be stitched into one
coherent fleet timeline across process boundaries.  Runs that opt into
observability use the serial shared-environment session instead
(:class:`~repro.eval.cluster.ClusterExperimentSpec` makes that switch
automatically).
"""

from __future__ import annotations

import math
import multiprocessing
import os
import sys
import threading
from array import array
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..platform.cluster import ClusterConfig
from ..policy import build_policy, policy_is_learned
from ..serve.report import ServingReport
from ..serve.request import Request, RequestRecord
from ..serve.session import (
    ServingScenario,
    assemble_serving_report,
    build_serving_backend,
    latency_summary,
)
from ..serve.frontend import ServingFrontend
from ..serve.slo import SLOTracker
from ..sim.engine import Environment
from .health import DeviceHealth, DeviceShard
from .placement import placement_snapshot_dependent
from .report import ClusterReport

#: Completion event crossing the epoch boundary:
#: (completed_at, tenant_index, latency_s, violated).  The per-shard
#: sequence number is the position in the epoch's list — it is not
#: shipped.
CompletionEvent = Tuple[float, int, float, bool]

#: One evicted backlog record on the wire: (request index into the
#: shared arrival list, admitted_at, reroute count).  Everything else
#: about the record is reconstructed from the request it points at.
EvictedRecord = Tuple[int, Optional[float], int]


@dataclass(frozen=True)
class ParallelConfig:
    """Execution knobs for the parallel cluster runner.

    ``epoch_s`` is the cross-shard exchange quantum for
    snapshot-dependent placement (routing sees fresher queue state with
    shorter epochs), so it is the only field serialized into experiment
    cache keys.  ``workers`` is pure execution strategy — 0 means auto
    (one worker per device, bounded by the CPU count), 1 forces the
    in-process path — and never affects results.  ``adaptive`` widens
    epochs to the next cross-shard event when the placement policy
    provably cannot observe the difference; it is execution strategy
    too (results are byte-identical either way) and stays out of the
    cache key.
    """

    workers: int = 0
    epoch_s: float = 0.25
    adaptive: bool = True

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = auto)")
        if self.epoch_s <= 0:
            raise ValueError("epoch_s must be positive")

    def to_dict(self) -> Dict[str, object]:
        """Cache-key form: only the semantic field."""
        return {"epoch_s": self.epoch_s}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ParallelConfig":
        """Rebuild from :meth:`to_dict` output (workers stays auto)."""
        return cls(epoch_s=float(data.get("epoch_s", 0.25)))


def build_epoch_schedule(scenario: ServingScenario, cluster: ClusterConfig,
                         parallel: ParallelConfig
                         ) -> List[Tuple[float, bool]]:
    """The deterministic epoch-boundary schedule for one run.

    Returns ``[(end_s, is_fault_time), ...]`` in ascending order.  A
    boundary is forced at every fault time so evicted backlogs reroute
    at exactly the instant the serial dispatcher reroutes them, plus the
    arrival horizon.  Snapshot-dependent placement additionally keeps
    the fixed ``epoch_s`` grid (fresh load snapshots are what it routes
    on); snapshot-independent placement drops the grid when ``adaptive``
    is set — the schedule is derived from config alone, never from
    runtime state, so it is identical across worker counts and reruns.
    """
    horizon = scenario.duration_s
    fault_times = {fault.time_s for fault in cluster.faults
                   if fault.time_s > 0}
    boundaries = set(fault_times)
    boundaries.add(horizon)
    widen = parallel.adaptive and not placement_snapshot_dependent(
        cluster.placement_policy_spec())
    if not widen:
        steps = max(1, math.ceil(horizon / parallel.epoch_s))
        boundaries.update((step + 1) * parallel.epoch_s
                          for step in range(steps))
    return [(end_s, end_s in fault_times)
            for end_s in sorted(boundaries)]


class EpochTracker(SLOTracker):
    """Per-shard tracker that buffers events for epoch shipping.

    The serial session's :class:`~repro.cluster.dispatcher.ShardTracker`
    forwards completions to the fleet tracker in-process; across a
    process boundary they are instead buffered as flat tuples with
    interned tenant indices and drained into the epoch payload.
    Admission outcomes ship as per-tenant count deltas keyed by tenant
    index — a tenant that saw no traffic this epoch costs zero bytes.
    ``last_settled_s`` records the simulated time of the most recent
    settlement (completion or rejection): the coordinator takes the
    fleet-wide max as the settle instant at which every backend is
    finished, mirroring the serial session's finish-at-settle-time.
    """

    def __init__(self, env: Environment, tenants,
                 reservoir_capacity: int = 4096, seed: int = 0):
        super().__init__(tenants, reservoir_capacity=reservoir_capacity,
                         seed=seed)
        self._env = env
        self._tenant_index = {name: i for i, name in enumerate(tenants)}
        self.last_settled_s = 0.0
        self.epoch_admitted: Dict[int, int] = {}
        self.epoch_rejected: Dict[int, int] = {}
        self.epoch_completions: List[CompletionEvent] = []

    def on_admitted(self, tenant: str) -> None:
        super().on_admitted(tenant)
        index = self._tenant_index[tenant]
        self.epoch_admitted[index] = self.epoch_admitted.get(index, 0) + 1

    def on_rejected(self, tenant: str) -> None:
        super().on_rejected(tenant)
        index = self._tenant_index[tenant]
        self.epoch_rejected[index] = self.epoch_rejected.get(index, 0) + 1
        self.last_settled_s = self._env.now

    def on_completed(self, record: RequestRecord) -> None:
        super().on_completed(record)
        self.epoch_completions.append(
            (record.completed_at, self._tenant_index[record.tenant],
             record.latency_s, record.slo_met is False))
        self.last_settled_s = record.completed_at

    def drain_epoch(self) -> Tuple[Dict[int, int], Dict[int, int],
                                   List[CompletionEvent]]:
        """Hand over and reset this epoch's buffered events."""
        out = (self.epoch_admitted, self.epoch_rejected,
               self.epoch_completions)
        self.epoch_admitted = {}
        self.epoch_rejected = {}
        self.epoch_completions = []
        return out


class _FleetCompletion:
    """Duck-typed completion record for the fleet tracker's feed."""

    __slots__ = ("tenant", "latency_s", "slo_met")

    def __init__(self, tenant: str, latency_s: float, violated: bool):
        self.tenant = tenant
        self.latency_s = latency_s
        self.slo_met = not violated


class _ShardGroup:
    """One worker's slice of the fleet: shards on private environments.

    Used identically by worker processes and by the in-process
    (``workers=1``) path, so both execute the exact same code per shard
    — the determinism contract across worker counts reduces to the
    coordinator merging payloads in canonical order (the wire codec the
    forked path adds on top is lossless).
    """

    def __init__(self, scenario: ServingScenario, cluster: ClusterConfig,
                 indices: Sequence[int], requests: Sequence[Request]):
        self.scenario = scenario
        self.cluster = cluster
        self.requests = requests
        tenants = [t.name for t in scenario.tenants]
        self.shards: Dict[int, DeviceShard] = {}
        self._evicted: Dict[int, List[Tuple[int, List[EvictedRecord]]]] = {}
        self._health_events: Dict[int, List[List[Any]]] = {}
        self._self_draining: Dict[int, bool] = {}
        self._closed: Dict[int, bool] = {}
        # Global fault ordinals: the serial dispatcher fires all faults
        # from one driver over the stable time-sorted config list, so
        # same-time faults keep their config order.  Tagging every
        # eviction batch and health event with the fault's position in
        # that ordering lets the coordinator reproduce the serial
        # sequence exactly when merging across shards.
        order = sorted(range(len(cluster.faults)),
                       key=lambda i: cluster.faults[i].time_s)
        ordinal = {original: position
                   for position, original in enumerate(order)}
        for index in indices:
            config = cluster.devices[index]
            env = Environment()
            backend = build_serving_backend(scenario, config, env=env)
            # Reservoir seeds match the serial session's per-device
            # offsets, so shard-level accounting is byte-comparable.
            tracker = EpochTracker(
                env, tenants,
                reservoir_capacity=scenario.reservoir_capacity,
                seed=scenario.seed + 1000 * (index + 1))
            frontend = ServingFrontend(env, backend,
                                       scenario.make_admission(),
                                       tracker, tenants,
                                       dispatch=scenario.make_dispatch())
            shard = DeviceShard(index, config, backend, frontend, tracker)
            self.shards[index] = shard
            self._evicted[index] = []
            self._health_events[index] = []
            self._self_draining[index] = False
            self._closed[index] = False
            backend.start()
            mine = [(ordinal[i], fault)
                    for i, fault in enumerate(cluster.faults)
                    if fault.device == index]
            mine.sort(key=lambda entry: (entry[1].time_s, entry[0]))
            if mine:
                env.process(self._fault_driver(shard, mine))

    # -- in-simulation fault handling -----------------------------------
    def _fault_driver(self, shard: DeviceShard, faults):
        env = shard.backend.env
        for ordinal, fault in faults:
            delay = fault.time_s - env.now
            if delay > 0:
                yield env.timeout(delay)
            state = DeviceHealth(fault.state)
            self._health_events[shard.index].append(
                [ordinal, env.now, shard.index, state.value])
            if state is DeviceHealth.FAILED \
                    and shard.health is DeviceHealth.FAILED:
                # Repeated failure must not re-zero a self-draining
                # device's capacity (mirrors the serial dispatcher).
                continue
            shard.apply_health(
                state, self.cluster.degraded_capacity_factor)
            if state is DeviceHealth.FAILED:
                evicted = shard.frontend.evict_queued()
                if evicted:
                    self._evicted[shard.index].append(
                        (ordinal, [_pack_record(r) for r in evicted]))
            else:
                self._self_draining[shard.index] = False

    # -- per-epoch execution --------------------------------------------
    def run_epoch(self, end_s: float, at_s: float,
                  arrivals: Dict[int, Sequence[int]],
                  adopted: Dict[int, Sequence[EvictedRecord]],
                  restore: Sequence[int]) -> Dict[int, Dict[str, Any]]:
        """Advance every owned shard to ``end_s``; ship the boundary.

        ``arrivals`` are indices into the shared request list;
        ``adopted`` backlogs (evicted at ``at_s``, the previous
        boundary) are re-enqueued at exactly ``at_s``, which is when the
        serial dispatcher moves them.  The clock is never forced to
        ``end_s``: after the burst each shard's clock reads its last
        processed event, exactly like the serial shared clock would.
        """
        results: Dict[int, Dict[str, Any]] = {}
        for index in sorted(self.shards):
            shard = self.shards[index]
            env = shard.backend.env
            if index in restore:
                # Self-drain fallback: no routable peer exists, so the
                # failed device works off its own backlog (serial
                # semantics); don't re-evict it at the epoch boundary.
                self._self_draining[index] = True
            batch = adopted.get(index)
            if batch or index in restore:
                env.process(self._adopt_at(shard, at_s, batch or (),
                                           index in restore))
            mine = arrivals.get(index)
            if mine:
                env.process(_epoch_arrivals(env, shard.frontend,
                                            self.requests, mine))
            env.run_events(end_s)
            shard.backend.check_health()
            if shard.health is DeviceHealth.FAILED \
                    and not self._self_draining[index]:
                # Traffic routed here on a stale (pre-failure) snapshot
                # would otherwise sit queued forever: hand it back.
                # Unreachable with forced fault boundaries (routing
                # observes every failure at its exact time), kept as a
                # safety net for exotic schedules.
                evicted = shard.frontend.evict_queued()
                if evicted:
                    self._evicted[index].append(
                        (len(self.cluster.faults) + index,
                         [_pack_record(r) for r in evicted]))
            results[index] = self._boundary_payload(index)
        return results

    def _adopt_at(self, shard: DeviceShard, at_s: float,
                  batch: Sequence[EvictedRecord], restore: bool):
        """Deliver rerouted backlog at exactly the eviction instant."""
        env = shard.backend.env
        delay = at_s - env.now
        if delay > 0:
            yield env.timeout(delay)
        if restore:
            # Serial fallback restores the failed device's capacity the
            # moment it self-requeues (the dispatch loop must not wedge).
            shard.frontend.capacity_limit = None
        for request_index, admitted_at, reroutes in batch:
            record = RequestRecord(request=self.requests[request_index])
            record.admitted_at = admitted_at
            record.reroutes = reroutes
            shard.frontend.enqueue_record(record)

    def _boundary_payload(self, index: int) -> Dict[str, Any]:
        shard = self.shards[index]
        admitted, rejected, completions = shard.tracker.drain_epoch()
        evicted = self._evicted[index]
        self._evicted[index] = []
        events = self._health_events[index]
        self._health_events[index] = []
        return {
            "snapshot": _snapshot(shard),
            "admitted": admitted,
            "rejected": rejected,
            "completions": completions,
            "evicted": evicted,
            "health_events": events,
        }

    # -- two-phase drain -------------------------------------------------
    def settle(self, at_s: float,
               adopted: Dict[int, Sequence[EvictedRecord]],
               restore: Sequence[int]) -> Dict[int, Dict[str, Any]]:
        """Phase one of the drain: run every owned shard to idle.

        Feeds any backlog still in flight between shards (evicted at the
        final boundary ``at_s``), closes the front-ends and steps each
        shard until it has no queued or in-flight work.  Reports the
        shard's last settlement instant so the coordinator can compute
        the fleet settle time — the instant :meth:`finalize` finishes
        every backend at, mirroring the serial session's single
        finish-at-settle-time.
        """
        results: Dict[int, Dict[str, Any]] = {}
        stall_horizon = max(60.0, 10.0 * self.scenario.duration_s)
        for index in sorted(self.shards):
            shard = self.shards[index]
            env = shard.backend.env
            frontend = shard.frontend
            if index in restore:
                self._self_draining[index] = True
            batch = adopted.get(index)
            if batch or index in restore:
                env.process(self._adopt_at(shard, at_s, batch or (),
                                           index in restore))
                # Deliver before closing: the adoption event must land
                # while the dispatch loop is still alive.
                env.run_events(at_s if at_s > env.now else env.now)
            if not self._closed[index]:
                frontend.close()
                self._closed[index] = True
            last_settled = -1
            last_progress = env.now
            while not frontend.drained:
                if env.peek() == float("inf"):
                    raise RuntimeError(
                        f"device {index} stalled while draining at "
                        f"t={env.now:.3f}s")
                if shard.tracker.settled != last_settled:
                    last_settled = shard.tracker.settled
                    last_progress = env.now
                elif env.now - last_progress > stall_horizon:
                    raise RuntimeError(
                        f"device {index} made no progress for "
                        f"{stall_horizon:.0f} simulated seconds")
                env.step()
                shard.backend.check_health()
            payload = self._boundary_payload(index)
            payload["settled_s"] = shard.tracker.last_settled_s
            results[index] = payload
        return results

    def finalize(self, settle_s: float) -> Dict[int, Dict[str, Any]]:
        """Phase two: finish every backend at the fleet settle time.

        Each shard first replays its idle timeline up to ``settle_s``
        (events the serial run processed before calling ``finish()``),
        then finishes its backend and drains the remaining background
        work (Storengine flush/GC) to empty — the same clock readings
        and event order the serial session produces.
        """
        results: Dict[int, Dict[str, Any]] = {}
        for index in sorted(self.shards):
            shard = self.shards[index]
            env = shard.backend.env
            if env.now < settle_s:
                env.run(until=settle_s)
            shard.backend.check_health()
            shard.backend.finish()
            env.run()
            shard.backend.check_health()
            stats_fn = getattr(shard.backend, "scheduler_stats", None)
            report = assemble_serving_report(
                self.scenario, shard.config.system, shard.tracker,
                makespan_s=env.now, energy_j=shard.backend.energy_j,
                scheduler_stats=stats_fn() if stats_fn else None)
            payload = self._boundary_payload(index)
            payload.update({
                "report": report.to_dict(),
                "makespan_s": env.now,
                "energy_j": shard.backend.energy_j,
                "health": shard.health.value,
            })
            results[index] = payload
        return results


def _pack_record(record: RequestRecord) -> EvictedRecord:
    """Wire form of one evicted record: everything else is derivable."""
    return (record.request.request_id, record.admitted_at, record.reroutes)


def _epoch_arrivals(env: Environment, frontend: ServingFrontend,
                    requests: Sequence[Request],
                    indices: Sequence[int]):
    """Feed one epoch's routed arrivals into one shard's front-end."""
    for request_index in indices:
        request = requests[request_index]
        delay = request.arrival_s - env.now
        if delay > 0:
            yield env.timeout(delay)
        frontend.submit(request)


def _snapshot(shard: DeviceShard) -> Tuple[int, int, int, float, str]:
    """Epoch-boundary view: (queued, in_flight, capacity, energy, health)."""
    return (shard.queued, shard.in_flight, shard.capacity,
            shard.energy_j, shard.health.value)


# --------------------------------------------------------------------- #
# Wire codec (forked path only; the in-process path skips it)            #
# --------------------------------------------------------------------- #
def pack_shard_result(payload: Dict[str, Any]) -> Tuple:
    """Flatten one shard's boundary payload for the worker pipe.

    Completions become four parallel typed arrays (machine doubles,
    16-bit tenant indices, one flag byte each) instead of a list of
    per-event tuples; counters are already sparse deltas and evictions
    already index triples, so they ship as plain tuples.  Lossless:
    ``unpack_shard_result(pack_shard_result(p))`` folds identically to
    ``p``, which is what keeps the forked and in-process paths
    byte-identical.
    """
    completions = payload["completions"]
    return (
        payload["snapshot"],
        tuple(sorted(payload["admitted"].items())),
        tuple(sorted(payload["rejected"].items())),
        array("d", [c[0] for c in completions]),
        array("H", [c[1] for c in completions]),
        array("d", [c[2] for c in completions]),
        bytes(bool(c[3]) for c in completions),
        tuple((ordinal, tuple(records))
              for ordinal, records in payload["evicted"]),
        tuple(tuple(event) for event in payload["health_events"]),
        payload.get("settled_s"),
    )


def unpack_shard_result(packed: Tuple) -> Dict[str, Any]:
    """Rebuild the boundary payload :func:`pack_shard_result` flattened."""
    (snapshot, admitted, rejected, times, tenants, latencies, violated,
     evicted, events, settled_s) = packed
    payload: Dict[str, Any] = {
        "snapshot": snapshot,
        "admitted": dict(admitted),
        "rejected": dict(rejected),
        "completions": [
            (times[i], tenants[i], latencies[i], bool(violated[i]))
            for i in range(len(times))],
        "evicted": [(ordinal, list(records))
                    for ordinal, records in evicted],
        "health_events": [list(event) for event in events],
    }
    if settled_s is not None:
        payload["settled_s"] = settled_s
    return payload


class _EpochShardView:
    """Placement-policy view of one shard, coordinator side.

    Carries the latest epoch-boundary snapshot; routing a request bumps
    ``queued`` so policies like join-shortest-queue spread the epoch's
    arrivals instead of dogpiling the shortest snapshot.
    """

    __slots__ = ("index", "queued", "in_flight", "capacity", "energy_j",
                 "health")

    def __init__(self, index: int, capacity: int):
        self.index = index
        self.queued = 0
        self.in_flight = 0
        self.capacity = capacity
        self.energy_j = 0.0
        self.health = DeviceHealth.HEALTHY

    def apply(self, snapshot: Tuple[int, int, int, float, str]) -> None:
        """Fold one epoch-boundary snapshot into the view."""
        queued, in_flight, capacity, energy_j, health = snapshot
        self.queued = queued
        self.in_flight = in_flight
        self.capacity = capacity
        self.energy_j = energy_j
        self.health = DeviceHealth(health)

    @property
    def routable(self) -> bool:
        """Whether the coordinator may route new traffic here."""
        return self.health is not DeviceHealth.FAILED


# --------------------------------------------------------------------- #
# Worker process plumbing (fork-by-slot, like the orchestrator pool)     #
# --------------------------------------------------------------------- #
# The worker inherits (scenario, cluster, indices, requests) through
# fork and builds its shard group in its own process — backends and
# request objects never cross the process boundary in either direction.
# The global is only populated while the processes are being spawned.
_FORK_INIT: Dict[int, Tuple[ServingScenario, ClusterConfig,
                            Tuple[int, ...], Sequence[Request]]] = {}
_FORK_INIT_LOCK = threading.Lock()


def _worker_main(slot: int, conn) -> None:
    """Worker loop: build the shard group, serve epoch commands."""
    scenario, cluster, indices, requests = _FORK_INIT[slot]
    try:
        group = _ShardGroup(scenario, cluster, indices, requests)
        conn.send(("ready", {index: _snapshot(group.shards[index])
                             for index in indices}))
        while True:
            message = conn.recv()
            command = message[0]
            if command == "epoch":
                _, end_s, at_s, arrivals, adopted, restore = message
                results = group.run_epoch(end_s, at_s, arrivals,
                                          adopted, restore)
            elif command == "settle":
                _, at_s, adopted, restore = message
                results = group.settle(at_s, adopted, restore)
            elif command == "finalize":
                conn.send(("finalize", group.finalize(message[1])))
                continue
            else:
                return
            conn.send((command, {index: pack_shard_result(payload)
                                 for index, payload in results.items()}))
    except BaseException as error:  # ship the failure to the coordinator
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except (BrokenPipeError, OSError):
            pass
        raise


class ParallelClusterSession:
    """Runs one scenario on a fleet, shards spread over processes."""

    def __init__(self, scenario: ServingScenario, cluster: ClusterConfig,
                 parallel: Optional[ParallelConfig] = None):
        if cluster.elastic:
            # The epoch runner pre-partitions a fixed device set across
            # workers; a fleet that resizes mid-run has no stable
            # partition.  Elastic runs use the serial session.
            raise ValueError(
                "ParallelClusterSession does not support elastic "
                "clusters (autoscaler_spec set); use ClusterSession")
        learned = [
            f"{domain} {spec.name!r}" for domain, spec in (
                ("admission", scenario.effective_admission_spec()),
                ("dispatch", scenario.dispatch_spec),
                ("placement", cluster.placement_policy_spec()))
            if spec is not None and policy_is_learned(domain, spec)]
        if learned:
            # Learned policies accumulate state from the completion
            # feedback stream; per-worker copies of that state would
            # diverge from the serial model (the fleet placement bandit
            # most of all), breaking the worker-count-independence
            # contract.  Learned runs use the serial session.
            raise ValueError(
                f"ParallelClusterSession does not support learned "
                f"policies ({', '.join(learned)}); use ClusterSession")
        self.scenario = scenario
        self.cluster = cluster
        self.parallel = parallel if parallel is not None \
            else ParallelConfig()
        #: Execution-strategy stats of the last run (epoch count, mode,
        #: worker count).  Deliberately *not* part of the report: the
        #: report is byte-identical across execution strategies, so
        #: strategy metadata lives on the session.
        self.execution_stats: Dict[str, Any] = {}

    def _effective_workers(self) -> int:
        requested = self.parallel.workers
        if requested == 0:
            requested = os.cpu_count() or 1
        workers = min(requested, self.cluster.device_count)
        if workers <= 1:
            return workers
        # Fork is what makes the no-pickling worker bootstrap safe; on
        # platforms without it, fall back to the in-process path (the
        # results are identical by contract).  Daemonic processes (e.g.
        # the experiment orchestrator's pool workers) cannot fork
        # children at all, so a parallel spec executing inside the pool
        # silently takes the in-process path too.
        if not (sys.platform.startswith("linux")
                and "fork" in multiprocessing.get_all_start_methods()):
            return 1
        if multiprocessing.current_process().daemon:
            return 1
        return workers

    # ------------------------------------------------------------------ #
    # Execution                                                           #
    # ------------------------------------------------------------------ #
    def run(self) -> ClusterReport:
        """Execute the scenario across worker processes; returns report."""
        workers = self._effective_workers()
        device_count = self.cluster.device_count
        # Generated once, before any fork: workers inherit the list via
        # copy-on-write and the coordinator ships bare indices into it.
        requests = self.scenario.make_arrivals().generate(
            self.scenario.duration_s)
        if workers <= 1:
            return self._run_inline(tuple(range(device_count)), requests)
        # Striped partition: worker k owns devices k, k+W, k+2W, ... —
        # which devices land where is irrelevant to the results (the
        # coordinator merges canonically), striping just balances
        # heterogeneous fleets.
        chunks = [tuple(range(start, device_count, workers))
                  for start in range(workers)]
        return self._run_forked(chunks, requests)

    def _record_stats(self, coordinator: "_Coordinator", mode: str,
                      workers: int) -> None:
        self.execution_stats = {
            "mode": mode,
            "workers": workers,
            "epoch_s": self.parallel.epoch_s,
            "adaptive": self.parallel.adaptive,
            "epochs": coordinator.epochs_run,
            "boundaries": len(coordinator.schedule),
        }

    def _run_inline(self, indices: Tuple[int, ...],
                    requests: Sequence[Request]) -> ClusterReport:
        group = _ShardGroup(self.scenario, self.cluster, indices, requests)
        snapshots = {index: _snapshot(group.shards[index])
                     for index in indices}
        coordinator = _Coordinator(self.scenario, self.cluster,
                                   self.parallel, snapshots, requests)
        report = self._drive(coordinator, group.run_epoch, group.settle,
                             group.finalize)
        self._record_stats(coordinator, "inline", 1)
        return report

    def _run_forked(self, chunks: List[Tuple[int, ...]],
                    requests: Sequence[Request]) -> ClusterReport:
        ctx = multiprocessing.get_context("fork")
        pipes = []
        processes = []
        with _FORK_INIT_LOCK:
            _FORK_INIT.clear()
            for slot, indices in enumerate(chunks):
                _FORK_INIT[slot] = (self.scenario, self.cluster, indices,
                                    requests)
            try:
                for slot, indices in enumerate(chunks):
                    parent, child = ctx.Pipe()
                    process = ctx.Process(target=_worker_main,
                                          args=(slot, child),
                                          daemon=True)
                    process.start()
                    child.close()
                    pipes.append(parent)
                    processes.append(process)
            finally:
                _FORK_INIT.clear()
        try:
            snapshots: Dict[int, Tuple] = {}
            for parent in pipes:
                snapshots.update(_recv(parent))
            coordinator = _Coordinator(self.scenario, self.cluster,
                                       self.parallel, snapshots, requests)
            owner = {index: slot for slot, indices in enumerate(chunks)
                     for index in indices}

            def split(mapping: Dict[int, Any]) -> List[Dict[int, Any]]:
                per_slot: List[Dict[int, Any]] = \
                    [{} for _ in range(len(chunks))]
                for index, value in mapping.items():
                    per_slot[owner[index]][index] = value
                return per_slot

            def gather() -> Dict[int, Dict[str, Any]]:
                merged: Dict[int, Dict[str, Any]] = {}
                for parent in pipes:
                    merged.update({
                        index: unpack_shard_result(packed)
                        for index, packed in _recv(parent).items()})
                return merged

            def run_epoch(end_s, at_s, arrivals, adopted, restore):
                packed_arrivals = {index: array("I", ids)
                                   for index, ids in arrivals.items()}
                per_arr = split(packed_arrivals)
                per_adopt = split(adopted)
                for slot, parent in enumerate(pipes):
                    slot_restore = tuple(i for i in restore
                                         if owner[i] == slot)
                    parent.send(("epoch", end_s, at_s, per_arr[slot],
                                 per_adopt[slot], slot_restore))
                return gather()

            def settle(at_s, adopted, restore):
                per_adopt = split(adopted)
                for slot, parent in enumerate(pipes):
                    slot_restore = tuple(i for i in restore
                                         if owner[i] == slot)
                    parent.send(("settle", at_s, per_adopt[slot],
                                 slot_restore))
                return gather()

            def finalize(settle_s):
                for parent in pipes:
                    parent.send(("finalize", settle_s))
                merged: Dict[int, Dict[str, Any]] = {}
                for parent in pipes:
                    merged.update(_recv(parent))
                return merged

            report = self._drive(coordinator, run_epoch, settle, finalize)
            for parent in pipes:
                parent.send(("stop",))
            self._record_stats(coordinator, "forked", len(chunks))
            return report
        finally:
            for parent in pipes:
                parent.close()
            for process in processes:
                process.join(timeout=5.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)

    def _drive(self, coordinator: "_Coordinator", run_epoch, settle,
               finalize) -> ClusterReport:
        """The shared coordinator loop: epochs, settle, finalize.

        One code path for the in-process and forked modes — the mode
        only decides how the three callables execute, which is what
        makes worker count provably irrelevant to the results.
        """
        while True:
            step = coordinator.next_step()
            if step is None:
                break
            end_s, at_s, arrivals, adopted, restore = step
            coordinator.fold_epoch(
                run_epoch(end_s, at_s, arrivals, adopted, restore))
        adopted, restore = coordinator.route_settle()
        settle_results = settle(coordinator.last_end, adopted, restore)
        coordinator.fold_epoch(settle_results)
        if coordinator.pending_reroutes:
            # Every fault time is an epoch boundary, so an eviction can
            # only surface at a boundary fold — reaching here means the
            # schedule missed a fault.
            raise RuntimeError(
                "parallel cluster run did not settle: backlog evicted "
                "during the drain phase (fault outside the epoch "
                "schedule)")
        settle_s = coordinator.settle_time(settle_results)
        return coordinator.assemble(finalize(settle_s))


def _recv(parent) -> Any:
    """Receive one worker reply, surfacing shipped failures."""
    kind, payload = parent.recv()
    if kind == "error":
        raise RuntimeError(f"cluster worker failed: {payload}")
    return payload


class _Coordinator:
    """Epoch-boundary routing, fleet accounting and report assembly."""

    def __init__(self, scenario: ServingScenario, cluster: ClusterConfig,
                 parallel: ParallelConfig, snapshots: Dict[int, Tuple],
                 requests: Sequence[Request]):
        self.scenario = scenario
        self.cluster = cluster
        self.parallel = parallel
        self.tenants = [t.name for t in scenario.tenants]
        self.fleet = SLOTracker(
            self.tenants, reservoir_capacity=scenario.reservoir_capacity,
            seed=scenario.seed)
        # Constructed exactly like the serial dispatcher's policy
        # (device count, affinity salt, scenario seed), so stateful
        # cursors (round-robin) follow the same sequence.
        self.policy = build_policy(
            "placement", cluster.placement_policy_spec(),
            device_count=cluster.device_count,
            salt=cluster.affinity_salt, seed=scenario.seed)
        self.views = {index: _EpochShardView(index, snapshots[index][2])
                      for index in sorted(snapshots)}
        for index, snapshot in snapshots.items():
            self.views[index].apply(snapshot)
        self.requests = requests
        self.schedule = build_epoch_schedule(scenario, cluster, parallel)
        self._boundary = 0
        self.last_end = 0.0
        #: Evicted records awaiting placement: (origin, request index,
        #: admitted_at, reroutes), already in serial fault order.
        self.pending_reroutes: List[Tuple[int, int, Optional[float],
                                          int]] = []
        self.routed = {index: 0 for index in self.views}
        self.rerouted_in = {index: 0 for index in self.views}
        self.rerouted_out = {index: 0 for index in self.views}
        self.reroutes = 0
        self.cluster_rejected = 0
        self._last_reject_s = 0.0
        self.health_events: List[List[Any]] = []
        self.epochs_run = 0
        self._cursor = 0

    # -- epoch planning --------------------------------------------------
    def next_step(self) -> Optional[Tuple[float, float, Dict[int, list],
                                          Dict[int, list], List[int]]]:
        """The next epoch command, or None when epochs are exhausted.

        Once arrivals are routed and no reroutes are circulating, grid
        boundaries are skipped but every remaining *fault* boundary
        still runs: a fault striking a still-draining backlog must
        reroute at its exact simulated time, and the fold of its
        boundary is where the eviction surfaces.
        """
        while self._boundary < len(self.schedule):
            end_s, is_fault = self.schedule[self._boundary]
            if self._cursor >= len(self.requests) \
                    and not self.pending_reroutes and not is_fault:
                self._boundary += 1
                continue
            break
        else:
            return None
        self._boundary += 1
        self.epochs_run += 1
        at_s = self.last_end
        arrivals: Dict[int, list] = {}
        adopted: Dict[int, list] = {}
        restore: List[int] = []
        self._route_reroutes(adopted, restore)
        cursor = self._cursor
        requests = self.requests
        while cursor < len(requests) \
                and requests[cursor].arrival_s < end_s:
            request = requests[cursor]
            cursor += 1
            self.fleet.on_offered(request.tenant)
            routable = [view for view in self.views.values()
                        if view.routable]
            if not routable:
                self.cluster_rejected += 1
                self.fleet.on_rejected(request.tenant)
                self._last_reject_s = request.arrival_s
                continue
            view = self.policy.select(request, routable)
            view.queued += 1
            arrivals.setdefault(view.index, []).append(request.request_id)
        self._cursor = cursor
        self.last_end = end_s
        return end_s, at_s, arrivals, adopted, restore

    def route_settle(self) -> Tuple[Dict[int, list], List[int]]:
        """Place backlog still pending when the schedule ran out."""
        adopted: Dict[int, list] = {}
        restore: List[int] = []
        self._route_reroutes(adopted, restore)
        return adopted, restore

    def _route_reroutes(self, adopted: Dict[int, list],
                        restore: List[int]) -> None:
        """Place the previous boundary's evicted backlog.

        Mirrors the serial ``_reroute_backlog``: targets are the
        routable set at the fault instant (the views were updated by the
        fold of the fault's boundary), a real reroute bumps the record's
        reroute count, and the no-peer fallback self-requeues without
        counting.  Static policies' ``on_reroute`` is a no-op, so it is
        not replayed here (learned policies never reach this runner).
        """
        pending = self.pending_reroutes
        if not pending:
            return
        self.pending_reroutes = []
        targets = [view for view in self.views.values() if view.routable]
        for origin, request_index, admitted_at, reroutes in pending:
            if not targets:
                # No routable peer: the failed origin self-drains
                # (capacity restored worker-side), serial semantics.
                adopted.setdefault(origin, []).append(
                    (request_index, admitted_at, reroutes))
                if origin not in restore:
                    restore.append(origin)
                continue
            view = self.policy.select(self.requests[request_index],
                                      targets)
            view.queued += 1
            self.rerouted_in[view.index] += 1
            self.rerouted_out[origin] += 1
            self.reroutes += 1
            adopted.setdefault(view.index, []).append(
                (request_index, admitted_at, reroutes + 1))

    # -- epoch results ----------------------------------------------------
    def fold_epoch(self, results: Dict[int, Dict[str, Any]]) -> None:
        """Merge one boundary's payloads in canonical shard order."""
        completions: List[Tuple[float, int, int, int, float, bool]] = []
        evictions: List[Tuple[int, int, list]] = []
        for index in sorted(results):
            payload = results[index]
            self.views[index].apply(payload["snapshot"])
            self._fold_counters(index, payload["admitted"],
                                payload["rejected"])
            for seq, (done, tenant, latency, violated) \
                    in enumerate(payload["completions"]):
                completions.append(
                    (done, index, seq, tenant, latency, violated))
            for ordinal, records in payload["evicted"]:
                evictions.append((ordinal, index, records))
            self.health_events.extend(payload["health_events"])
        # Serial fault order: the single fault driver fires time-sorted
        # faults, so eviction batches merge by fault ordinal, not shard.
        evictions.sort(key=lambda entry: (entry[0], entry[1]))
        for _, origin, records in evictions:
            for request_index, admitted_at, reroutes in records:
                self.pending_reroutes.append(
                    (origin, request_index, admitted_at, reroutes))
        self._feed_completions(completions)

    def _fold_counters(self, index: int, admitted: Dict[int, int],
                       rejected: Dict[int, int]) -> None:
        # Count deltas are order-insensitive, so they are applied
        # directly instead of replaying one on_admitted() per request.
        # The serial dispatcher's routed counter only counts *admitted*
        # arrivals (shard-level admission rejections are excluded, and
        # adopted reroutes never re-count), which is exactly the shard's
        # admitted delta.
        for tenant_index in sorted(admitted):
            count = admitted[tenant_index]
            tenant = self.tenants[tenant_index]
            self.fleet.accounts[tenant].admitted += count
            self.fleet.aggregate.admitted += count
            self.routed[index] += count
        for tenant_index in sorted(rejected):
            count = rejected[tenant_index]
            tenant = self.tenants[tenant_index]
            self.fleet.accounts[tenant].rejected += count
            self.fleet.aggregate.rejected += count

    def _feed_completions(
            self, completions: List[Tuple[float, int, int, int,
                                          float, bool]]) -> None:
        # Canonical merge order — (time, shard, shard-sequence) — makes
        # the fleet reservoir's sample stream identical no matter how
        # shards were partitioned over workers.
        completions.sort(key=lambda c: (c[0], c[1], c[2]))
        tenants = self.tenants
        for _, _, _, tenant_index, latency, violated in completions:
            self.fleet.on_completed(
                _FleetCompletion(tenants[tenant_index], latency, violated))

    def settle_time(self, settle_results: Dict[int, Dict[str, Any]]
                    ) -> float:
        """The fleet settle instant: when serial calls ``finish()``.

        The serial session finishes every backend the moment the last
        request settles fleet-wide; that is the max over per-shard last
        settlements and coordinator-side edge rejections.
        """
        shard_settled = [payload["settled_s"]
                        for payload in settle_results.values()]
        return max([self._last_reject_s, *shard_settled], default=0.0)

    # -- final assembly ----------------------------------------------------
    def assemble(self, finish: Dict[int, Dict[str, Any]]) -> ClusterReport:
        """Fold the drain-phase payloads and build the fleet report."""
        completions: List[Tuple[float, int, int, int, float, bool]] = []
        for index in sorted(finish):
            payload = finish[index]
            self._fold_counters(index, payload["admitted"],
                                payload["rejected"])
            for seq, (done, tenant, latency, violated) \
                    in enumerate(payload["completions"]):
                completions.append(
                    (done, index, seq, tenant, latency, violated))
            self.health_events.extend(payload["health_events"])
        self._feed_completions(completions)
        scenario = self.scenario
        aggregate = self.fleet.aggregate
        duration = scenario.duration_s
        indices = sorted(finish)
        makespan_s = max(finish[index]["makespan_s"] for index in indices)
        devices = []
        for index in indices:
            device = ServingReport.from_dict(finish[index]["report"])
            # The serial session stamps every device report with the
            # shared final clock; per-shard clocks converge to the fleet
            # max by construction (finalize drains them all).
            device.makespan_s = makespan_s
            devices.append(device)
        placement_stats = {
            "routed": [self.routed[index] for index in indices],
            "rerouted_in": [self.rerouted_in[index] for index in indices],
            "rerouted_out": [self.rerouted_out[index]
                             for index in indices],
            "reroutes": self.reroutes,
            "cluster_rejected": self.cluster_rejected,
            "final_health": [finish[index]["health"] for index in indices],
        }
        # Serial event order: the fault driver fires time-sorted faults
        # in config order — exactly the ordinal each event carries.
        self.health_events.sort(key=lambda event: event[0])
        return ClusterReport(
            system=self.cluster.label,
            workload=scenario.label,
            placement=self.cluster.placement,
            device_count=len(indices),
            duration_s=duration,
            makespan_s=makespan_s,
            offered=aggregate.offered,
            admitted=aggregate.admitted,
            rejected=aggregate.rejected,
            completed=aggregate.completed,
            slo_violations=aggregate.slo_violations,
            offered_rps=aggregate.offered / duration,
            goodput_rps=aggregate.goodput_rps(duration),
            latency=latency_summary(aggregate),
            per_tenant={tenant: self.fleet.account(tenant).as_dict(duration)
                        for tenant in self.fleet.tenants()},
            energy_j=sum(finish[index]["energy_j"] for index in indices),
            devices=devices,
            placement_stats=placement_stats,
            health_events=[list(event[1:])
                           for event in self.health_events],
        )


def run_cluster_parallel(
        scenario: ServingScenario, cluster: ClusterConfig,
        parallel: Optional[ParallelConfig] = None) -> ClusterReport:
    """Convenience wrapper: run one scenario on one fleet in parallel."""
    return ParallelClusterSession(scenario, cluster, parallel).run()


__all__ = [
    "EpochTracker",
    "ParallelClusterSession",
    "ParallelConfig",
    "build_epoch_schedule",
    "pack_shard_result",
    "run_cluster_parallel",
    "unpack_shard_result",
]
