"""Parallel cluster runner: device shards in worker processes.

The serial :class:`~repro.cluster.session.ClusterSession` advances every
device of the fleet on one shared event heap — N devices' events
interleave through a single priority queue on a single core.  But the
devices are *almost* independent: they only interact through routing
decisions (placement) and failure reroutes.  This module exploits that:

* every :class:`~repro.cluster.health.DeviceShard` gets its **own**
  :class:`~repro.sim.engine.Environment`, and shards are partitioned
  over persistent worker processes (Linux ``fork``, mirroring the
  orchestrator pool's fork-by-index dispatch — workers inherit the
  scenario/cluster objects through fork and never unpickle them);
* cross-shard interaction is quantized into fixed **epochs** of
  simulated time.  The coordinator routes each epoch's arrivals using
  the placement policy over epoch-boundary shard snapshots, the workers
  advance their shards to the epoch end independently, and completions,
  health transitions and evicted backlogs flow back at the boundary.

Determinism contract: the run is seed-reproducible and **independent of
the worker count** — one worker and eight workers produce byte-identical
:class:`~repro.cluster.report.ClusterReport`s.  Everything that crosses
the epoch boundary is merged in a canonical order (completions by
``(time, shard, sequence)``, shards by index), the placement policy only
ever sees epoch-boundary snapshots, and per-shard RNG seeding matches
the serial session.  Epoch length is therefore *semantic* (it changes
when routing observes queue state) and folds into experiment cache
keys; the worker count is pure execution strategy and does not.

Observability note: this runner does not support :mod:`repro.obs` —
per-worker tracers and metric samples cannot be stitched into one
coherent fleet timeline across process boundaries.  Runs that opt into
observability use the serial shared-environment session instead
(:class:`~repro.eval.cluster.ClusterExperimentSpec` makes that switch
automatically).
"""

from __future__ import annotations

import math
import multiprocessing
import os
import sys
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..platform.cluster import ClusterConfig, FaultSpec
from ..policy import build_policy, policy_is_learned
from ..serve.report import ServingReport
from ..serve.request import RequestRecord
from ..serve.session import (
    ServingScenario,
    assemble_serving_report,
    build_serving_backend,
    latency_summary,
)
from ..serve.frontend import ServingFrontend
from ..serve.slo import SLOTracker
from ..sim.engine import Environment
from .health import DeviceHealth, DeviceShard
from .report import ClusterReport

#: Completion event crossing the epoch boundary:
#: (completed_at, shard_seq, tenant, latency_s, violated).
CompletionEvent = Tuple[float, int, str, float, bool]


@dataclass(frozen=True)
class ParallelConfig:
    """Execution knobs for the parallel cluster runner.

    ``epoch_s`` is the cross-shard exchange quantum and is *semantic*
    (routing sees fresher queue state with shorter epochs), so it is the
    only field serialized into experiment cache keys.  ``workers`` is
    pure execution strategy — 0 means auto (one worker per device,
    bounded by the CPU count), 1 forces the in-process path — and never
    affects results.
    """

    workers: int = 0
    epoch_s: float = 0.25

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = auto)")
        if self.epoch_s <= 0:
            raise ValueError("epoch_s must be positive")

    def to_dict(self) -> Dict[str, object]:
        """Cache-key form: only the semantic field."""
        return {"epoch_s": self.epoch_s}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ParallelConfig":
        """Rebuild from :meth:`to_dict` output (workers stays auto)."""
        return cls(epoch_s=float(data.get("epoch_s", 0.25)))


class EpochTracker(SLOTracker):
    """Per-shard tracker that buffers events for epoch shipping.

    The serial session's :class:`~repro.cluster.dispatcher.ShardTracker`
    forwards completions to the fleet tracker in-process; across a
    process boundary they are instead buffered as plain tuples and
    drained into the epoch payload.  Admission outcomes ship as
    per-tenant count deltas (the fleet's offered counts are recorded by
    the coordinator at routing time, mirroring the serial dispatcher).
    """

    def __init__(self, tenants, reservoir_capacity: int = 4096,
                 seed: int = 0):
        super().__init__(tenants, reservoir_capacity=reservoir_capacity,
                         seed=seed)
        self._seq = 0
        self.epoch_admitted: Dict[str, int] = {}
        self.epoch_rejected: Dict[str, int] = {}
        self.epoch_completions: List[CompletionEvent] = []

    def on_admitted(self, tenant: str) -> None:
        super().on_admitted(tenant)
        self.epoch_admitted[tenant] = \
            self.epoch_admitted.get(tenant, 0) + 1

    def on_rejected(self, tenant: str) -> None:
        super().on_rejected(tenant)
        self.epoch_rejected[tenant] = \
            self.epoch_rejected.get(tenant, 0) + 1

    def on_completed(self, record: RequestRecord) -> None:
        super().on_completed(record)
        self._seq += 1
        self.epoch_completions.append(
            (record.completed_at, self._seq, record.tenant,
             record.latency_s, record.slo_met is False))

    def drain_epoch(self) -> Tuple[Dict[str, int], Dict[str, int],
                                   List[CompletionEvent]]:
        """Hand over and reset this epoch's buffered events."""
        out = (self.epoch_admitted, self.epoch_rejected,
               self.epoch_completions)
        self.epoch_admitted = {}
        self.epoch_rejected = {}
        self.epoch_completions = []
        return out


class _FleetCompletion:
    """Duck-typed completion record for the fleet tracker's feed."""

    __slots__ = ("tenant", "latency_s", "slo_met")

    def __init__(self, tenant: str, latency_s: float, violated: bool):
        self.tenant = tenant
        self.latency_s = latency_s
        self.slo_met = not violated


class _ShardGroup:
    """One worker's slice of the fleet: shards on private environments.

    Used identically by worker processes and by the in-process
    (``workers=1``) path, so both execute the exact same code per shard
    — the determinism contract across worker counts reduces to the
    coordinator merging payloads in canonical order.
    """

    def __init__(self, scenario: ServingScenario, cluster: ClusterConfig,
                 indices: Sequence[int]):
        self.scenario = scenario
        self.cluster = cluster
        tenants = [t.name for t in scenario.tenants]
        self.shards: Dict[int, DeviceShard] = {}
        self._evicted: Dict[int, List[RequestRecord]] = {}
        self._health_events: Dict[int, List[List[Any]]] = {}
        self._self_draining: Dict[int, bool] = {}
        faults = sorted(cluster.faults, key=lambda f: f.time_s)
        for index in indices:
            config = cluster.devices[index]
            env = Environment()
            backend = build_serving_backend(scenario, config, env=env)
            # Reservoir seeds match the serial session's per-device
            # offsets, so shard-level accounting is comparable.
            tracker = EpochTracker(
                tenants,
                reservoir_capacity=scenario.reservoir_capacity,
                seed=scenario.seed + 1000 * (index + 1))
            frontend = ServingFrontend(env, backend,
                                       scenario.make_admission(),
                                       tracker, tenants,
                                       dispatch=scenario.make_dispatch())
            shard = DeviceShard(index, config, backend, frontend, tracker)
            self.shards[index] = shard
            self._evicted[index] = []
            self._health_events[index] = []
            self._self_draining[index] = False
            backend.start()
            mine = [f for f in faults if f.device == index]
            if mine:
                env.process(self._fault_driver(shard, mine))

    # -- in-simulation fault handling -----------------------------------
    def _fault_driver(self, shard: DeviceShard, faults: List[FaultSpec]):
        env = shard.backend.env
        for fault in faults:
            delay = fault.time_s - env.now
            if delay > 0:
                yield env.timeout(delay)
            state = DeviceHealth(fault.state)
            self._health_events[shard.index].append(
                [env.now, shard.index, state.value])
            if state is DeviceHealth.FAILED \
                    and shard.health is DeviceHealth.FAILED:
                # Repeated failure must not re-zero a self-draining
                # device's capacity (mirrors the serial dispatcher).
                continue
            shard.apply_health(
                state, self.cluster.degraded_capacity_factor)
            if state is DeviceHealth.FAILED:
                self._evicted[shard.index].extend(
                    shard.frontend.evict_queued())
            else:
                self._self_draining[shard.index] = False

    # -- per-epoch execution --------------------------------------------
    def run_epoch(self, end_s: float,
                  arrivals: Dict[int, list],
                  adopted: Dict[int, List[RequestRecord]],
                  restore: Sequence[int]) -> Dict[int, Dict[str, Any]]:
        """Advance every owned shard to ``end_s``; ship the boundary."""
        results: Dict[int, Dict[str, Any]] = {}
        for index in sorted(self.shards):
            shard = self.shards[index]
            env = shard.backend.env
            if index in restore:
                # Self-drain fallback: no routable peer exists, so the
                # failed device works off its own backlog (serial
                # semantics); don't re-evict it at the epoch boundary.
                shard.frontend.capacity_limit = None
                self._self_draining[index] = True
            for record in adopted.get(index, ()):
                shard.frontend.enqueue_record(record)
            mine = arrivals.get(index)
            if mine:
                env.process(_epoch_arrivals(env, shard.frontend, mine))
            while True:
                when = env.peek()
                if when > end_s:
                    break
                env.step()
                shard.backend.check_health()
            env.advance_to(end_s)
            if shard.health is DeviceHealth.FAILED \
                    and not self._self_draining[index]:
                # Traffic routed here on a stale (pre-failure) snapshot
                # would otherwise sit queued forever: hand it back.
                self._evicted[index].extend(shard.frontend.evict_queued())
            admitted, rejected, completions = shard.tracker.drain_epoch()
            evicted = self._evicted[index]
            self._evicted[index] = []
            results[index] = {
                "snapshot": _snapshot(shard),
                "admitted": admitted,
                "rejected": rejected,
                "completions": completions,
                "evicted": evicted,
                "health_events": self._health_events[index],
            }
            self._health_events[index] = []
        return results

    # -- drain + report --------------------------------------------------
    def finish(self) -> Dict[int, Dict[str, Any]]:
        """Close, drain and report every owned shard."""
        results: Dict[int, Dict[str, Any]] = {}
        for index in sorted(self.shards):
            shard = self.shards[index]
            env = shard.backend.env
            frontend = shard.frontend
            frontend.close()
            stall_horizon = max(60.0, 10.0 * self.scenario.duration_s)
            last_settled = -1
            last_progress = env.now
            while not frontend.drained:
                if env.peek() == float("inf"):
                    raise RuntimeError(
                        f"device {index} stalled while draining at "
                        f"t={env.now:.3f}s")
                if shard.tracker.settled != last_settled:
                    last_settled = shard.tracker.settled
                    last_progress = env.now
                elif env.now - last_progress > stall_horizon:
                    raise RuntimeError(
                        f"device {index} made no progress for "
                        f"{stall_horizon:.0f} simulated seconds")
                env.step()
                shard.backend.check_health()
            shard.backend.finish()
            while env.peek() != float("inf"):
                env.step()
            shard.backend.check_health()
            stats_fn = getattr(shard.backend, "scheduler_stats", None)
            report = assemble_serving_report(
                self.scenario, shard.config.system, shard.tracker,
                makespan_s=env.now, energy_j=shard.backend.energy_j,
                scheduler_stats=stats_fn() if stats_fn else None)
            admitted, rejected, completions = shard.tracker.drain_epoch()
            results[index] = {
                "report": report.to_dict(),
                "admitted": admitted,
                "rejected": rejected,
                "completions": completions,
                "health_events": self._health_events[index],
                "makespan_s": env.now,
                "energy_j": shard.backend.energy_j,
                "health": shard.health.value,
            }
            self._health_events[index] = []
        return results


def _epoch_arrivals(env: Environment, frontend: ServingFrontend,
                    requests: list):
    """Feed one epoch's routed arrivals into one shard's front-end."""
    for request in requests:
        delay = request.arrival_s - env.now
        if delay > 0:
            yield env.timeout(delay)
        frontend.submit(request)


def _snapshot(shard: DeviceShard) -> Tuple[int, int, int, float, str]:
    """Epoch-boundary view: (queued, in_flight, capacity, energy, health)."""
    return (shard.queued, shard.in_flight, shard.capacity,
            shard.energy_j, shard.health.value)


class _EpochShardView:
    """Placement-policy view of one shard, coordinator side.

    Carries the latest epoch-boundary snapshot; routing a request bumps
    ``queued`` so policies like join-shortest-queue spread the epoch's
    arrivals instead of dogpiling the shortest snapshot.
    """

    __slots__ = ("index", "queued", "in_flight", "capacity", "energy_j",
                 "health")

    def __init__(self, index: int, capacity: int):
        self.index = index
        self.queued = 0
        self.in_flight = 0
        self.capacity = capacity
        self.energy_j = 0.0
        self.health = DeviceHealth.HEALTHY

    def apply(self, snapshot: Tuple[int, int, int, float, str]) -> None:
        """Fold one epoch-boundary snapshot into the view."""
        queued, in_flight, capacity, energy_j, health = snapshot
        self.queued = queued
        self.in_flight = in_flight
        self.capacity = capacity
        self.energy_j = energy_j
        self.health = DeviceHealth(health)

    @property
    def routable(self) -> bool:
        """Whether the coordinator may route new traffic here."""
        return self.health is not DeviceHealth.FAILED


# --------------------------------------------------------------------- #
# Worker process plumbing (fork-by-index, like the orchestrator pool)    #
# --------------------------------------------------------------------- #
# The worker inherits (scenario, cluster, indices) through fork and
# builds its shard group in its own process — backends never cross the
# process boundary in either direction.  The global is only populated
# while the processes are being spawned.
_FORK_INIT: Dict[int, Tuple[ServingScenario, ClusterConfig,
                            Tuple[int, ...]]] = {}
_FORK_INIT_LOCK = threading.Lock()


def _worker_main(slot: int, conn) -> None:
    """Worker loop: build the shard group, serve epoch commands."""
    scenario, cluster, indices = _FORK_INIT[slot]
    try:
        group = _ShardGroup(scenario, cluster, indices)
        conn.send(("ready", {index: _snapshot(group.shards[index])
                             for index in indices}))
        while True:
            message = conn.recv()
            command = message[0]
            if command == "epoch":
                _, end_s, arrivals, adopted, restore = message
                conn.send(("epoch", group.run_epoch(
                    end_s, arrivals, adopted, restore)))
            elif command == "finish":
                conn.send(("finish", group.finish()))
            else:
                return
    except BaseException as error:  # ship the failure to the coordinator
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except (BrokenPipeError, OSError):
            pass
        raise


class ParallelClusterSession:
    """Runs one scenario on a fleet, shards spread over processes."""

    def __init__(self, scenario: ServingScenario, cluster: ClusterConfig,
                 parallel: Optional[ParallelConfig] = None):
        if cluster.elastic:
            # The epoch runner pre-partitions a fixed device set across
            # workers; a fleet that resizes mid-run has no stable
            # partition.  Elastic runs use the serial session.
            raise ValueError(
                "ParallelClusterSession does not support elastic "
                "clusters (autoscaler_spec set); use ClusterSession")
        learned = [
            f"{domain} {spec.name!r}" for domain, spec in (
                ("admission", scenario.effective_admission_spec()),
                ("dispatch", scenario.dispatch_spec),
                ("placement", cluster.placement_policy_spec()))
            if spec is not None and policy_is_learned(domain, spec)]
        if learned:
            # Learned policies accumulate state from the completion
            # feedback stream; per-worker copies of that state would
            # diverge from the serial model (the fleet placement bandit
            # most of all), breaking the worker-count-independence
            # contract.  Learned runs use the serial session.
            raise ValueError(
                f"ParallelClusterSession does not support learned "
                f"policies ({', '.join(learned)}); use ClusterSession")
        self.scenario = scenario
        self.cluster = cluster
        self.parallel = parallel if parallel is not None \
            else ParallelConfig()

    def _effective_workers(self) -> int:
        requested = self.parallel.workers
        if requested == 0:
            requested = os.cpu_count() or 1
        workers = min(requested, self.cluster.device_count)
        # Fork is what makes the no-pickling worker bootstrap safe; on
        # platforms without it, fall back to the in-process path (the
        # results are identical by contract).
        if workers > 1 and not (
                sys.platform.startswith("linux")
                and "fork" in multiprocessing.get_all_start_methods()):
            return 1
        return workers

    # ------------------------------------------------------------------ #
    # Execution                                                           #
    # ------------------------------------------------------------------ #
    def run(self) -> ClusterReport:
        """Execute the scenario across worker processes; returns report."""
        workers = self._effective_workers()
        device_count = self.cluster.device_count
        if workers <= 1:
            return self._run_inline(tuple(range(device_count)))
        # Striped partition: worker k owns devices k, k+W, k+2W, ... —
        # which devices land where is irrelevant to the results (the
        # coordinator merges canonically), striping just balances
        # heterogeneous fleets.
        chunks = [tuple(range(start, device_count, workers))
                  for start in range(workers)]
        return self._run_forked(chunks)

    def _run_inline(self, indices: Tuple[int, ...]) -> ClusterReport:
        group = _ShardGroup(self.scenario, self.cluster, indices)
        snapshots = {index: _snapshot(group.shards[index])
                     for index in indices}
        coordinator = _Coordinator(self.scenario, self.cluster,
                                   self.parallel, snapshots)
        while True:
            step = coordinator.next_step()
            if step is None:
                break
            end_s, arrivals, adopted, restore = step
            coordinator.fold_epoch(
                group.run_epoch(end_s, arrivals, adopted, restore))
        return coordinator.assemble(group.finish())

    def _run_forked(self, chunks: List[Tuple[int, ...]]) -> ClusterReport:
        ctx = multiprocessing.get_context("fork")
        pipes = []
        processes = []
        with _FORK_INIT_LOCK:
            _FORK_INIT.clear()
            for slot, indices in enumerate(chunks):
                _FORK_INIT[slot] = (self.scenario, self.cluster, indices)
            try:
                for slot, indices in enumerate(chunks):
                    parent, child = ctx.Pipe()
                    process = ctx.Process(target=_worker_main,
                                          args=(slot, child),
                                          daemon=True)
                    process.start()
                    child.close()
                    pipes.append(parent)
                    processes.append(process)
            finally:
                _FORK_INIT.clear()
        try:
            snapshots: Dict[int, Tuple] = {}
            for parent in pipes:
                kind, payload = parent.recv()
                if kind == "error":
                    raise RuntimeError(f"cluster worker failed: {payload}")
                snapshots.update(payload)
            coordinator = _Coordinator(self.scenario, self.cluster,
                                       self.parallel, snapshots)
            owner = {index: slot for slot, indices in enumerate(chunks)
                     for index in indices}
            while True:
                step = coordinator.next_step()
                if step is None:
                    break
                end_s, arrivals, adopted, restore = step
                per_slot: Dict[int, Tuple[dict, dict, list]] = {
                    slot: ({}, {}, []) for slot in range(len(chunks))}
                for index, reqs in arrivals.items():
                    per_slot[owner[index]][0][index] = reqs
                for index, records in adopted.items():
                    per_slot[owner[index]][1][index] = records
                for index in restore:
                    per_slot[owner[index]][2].append(index)
                for slot, parent in enumerate(pipes):
                    slot_arrivals, slot_adopted, slot_restore = \
                        per_slot[slot]
                    parent.send(("epoch", end_s, slot_arrivals,
                                 slot_adopted, slot_restore))
                merged: Dict[int, Dict[str, Any]] = {}
                for parent in pipes:
                    kind, payload = parent.recv()
                    if kind == "error":
                        raise RuntimeError(
                            f"cluster worker failed: {payload}")
                    merged.update(payload)
                coordinator.fold_epoch(merged)
            for parent in pipes:
                parent.send(("finish",))
            finish: Dict[int, Dict[str, Any]] = {}
            for parent in pipes:
                kind, payload = parent.recv()
                if kind == "error":
                    raise RuntimeError(f"cluster worker failed: {payload}")
                finish.update(payload)
            for parent in pipes:
                parent.send(("stop",))
            return coordinator.assemble(finish)
        finally:
            for parent in pipes:
                parent.close()
            for process in processes:
                process.join(timeout=5.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)


class _Coordinator:
    """Epoch-boundary routing, fleet accounting and report assembly."""

    def __init__(self, scenario: ServingScenario, cluster: ClusterConfig,
                 parallel: ParallelConfig,
                 snapshots: Dict[int, Tuple]):
        self.scenario = scenario
        self.cluster = cluster
        self.parallel = parallel
        tenants = [t.name for t in scenario.tenants]
        self.fleet = SLOTracker(
            tenants, reservoir_capacity=scenario.reservoir_capacity,
            seed=scenario.seed)
        self.policy = build_policy(
            "placement", cluster.placement_policy_spec(),
            device_count=cluster.device_count,
            salt=cluster.affinity_salt)
        self.views = {index: _EpochShardView(index, snapshots[index][2])
                      for index in sorted(snapshots)}
        for index, snapshot in snapshots.items():
            self.views[index].apply(snapshot)
        self.requests = scenario.make_arrivals().generate(
            scenario.duration_s)
        self._cursor = 0
        self._epoch = 0
        self._pending_reroutes: List[Tuple[int, RequestRecord]] = []
        self.routed = {index: 0 for index in self.views}
        self.rerouted_in = {index: 0 for index in self.views}
        self.rerouted_out = {index: 0 for index in self.views}
        self.reroutes = 0
        self.cluster_rejected = 0
        self.health_events: List[List[Any]] = []
        self.epochs_run = 0

    # -- epoch planning --------------------------------------------------
    def next_step(self) -> Optional[Tuple[float, Dict[int, list],
                                          Dict[int, List[RequestRecord]],
                                          List[int]]]:
        """The next epoch command, or None when fully settled.

        Epochs keep running past the arrival horizon while evicted
        backlogs are still in flight between shards.
        """
        done_arrivals = self._cursor >= len(self.requests)
        if done_arrivals and not self._pending_reroutes:
            return None
        if self.epochs_run > self._epoch_bound():
            raise RuntimeError(
                "parallel cluster run did not settle: evicted backlog "
                "still circulating after the fault timeline ended")
        end_s = (self._epoch + 1) * self.parallel.epoch_s
        self._epoch += 1
        self.epochs_run += 1
        arrivals: Dict[int, list] = {}
        adopted: Dict[int, List[RequestRecord]] = {}
        restore: List[int] = []
        self._route_reroutes(adopted, restore)
        cursor = self._cursor
        requests = self.requests
        while cursor < len(requests) \
                and requests[cursor].arrival_s < end_s:
            request = requests[cursor]
            cursor += 1
            self.fleet.on_offered(request.tenant)
            routable = [view for view in self.views.values()
                        if view.routable]
            if not routable:
                self.cluster_rejected += 1
                self.fleet.on_rejected(request.tenant)
                continue
            view = self.policy.select(request, routable)
            view.queued += 1
            self.routed[view.index] += 1
            arrivals.setdefault(view.index, []).append(request)
        self._cursor = cursor
        return end_s, arrivals, adopted, restore

    def _epoch_bound(self) -> int:
        """Settlement backstop: arrivals + one bounce per fault + slack."""
        base = math.ceil(self.scenario.duration_s / self.parallel.epoch_s)
        return base + 2 * (len(self.cluster.faults) + 2) \
            + self.cluster.device_count

    def _route_reroutes(self, adopted: Dict[int, List[RequestRecord]],
                        restore: List[int]) -> None:
        """Place the previous epoch's evicted backlog (canonical order)."""
        pending = self._pending_reroutes
        if not pending:
            return
        self._pending_reroutes = []
        targets = [view for view in self.views.values() if view.routable]
        for origin, record in pending:
            if not targets:
                # No routable peer: the failed origin self-drains
                # (capacity restored worker-side), serial semantics.
                adopted.setdefault(origin, []).append(record)
                if origin not in restore:
                    restore.append(origin)
                continue
            view = self.policy.select(record.request, targets)
            view.queued += 1
            self.rerouted_in[view.index] += 1
            self.rerouted_out[origin] += 1
            self.reroutes += 1
            adopted.setdefault(view.index, []).append(record)

    # -- epoch results ----------------------------------------------------
    def fold_epoch(self, results: Dict[int, Dict[str, Any]]) -> None:
        """Merge one epoch's payloads in canonical shard order."""
        completions: List[Tuple[float, int, int, str, float, bool]] = []
        for index in sorted(results):
            payload = results[index]
            self.views[index].apply(payload["snapshot"])
            self._fold_counters(payload["admitted"], payload["rejected"])
            for done, seq, tenant, latency, violated \
                    in payload["completions"]:
                completions.append(
                    (done, index, seq, tenant, latency, violated))
            for record in payload["evicted"]:
                self._pending_reroutes.append((index, record))
            self.health_events.extend(payload["health_events"])
        self._feed_completions(completions)

    def _fold_counters(self, admitted: Dict[str, int],
                       rejected: Dict[str, int]) -> None:
        # Count deltas are order-insensitive, so they are applied
        # directly instead of replaying one on_admitted() per request.
        for tenant in sorted(admitted):
            count = admitted[tenant]
            self.fleet.accounts[tenant].admitted += count
            self.fleet.aggregate.admitted += count
        for tenant in sorted(rejected):
            count = rejected[tenant]
            self.fleet.accounts[tenant].rejected += count
            self.fleet.aggregate.rejected += count

    def _feed_completions(
            self, completions: List[Tuple[float, int, int, str,
                                          float, bool]]) -> None:
        # Canonical merge order — (time, shard, shard-sequence) — makes
        # the fleet reservoir's sample stream identical no matter how
        # shards were partitioned over workers.
        completions.sort(key=lambda c: (c[0], c[1], c[2]))
        for _, _, _, tenant, latency, violated in completions:
            self.fleet.on_completed(
                _FleetCompletion(tenant, latency, violated))

    # -- final assembly ----------------------------------------------------
    def assemble(self, finish: Dict[int, Dict[str, Any]]) -> ClusterReport:
        """Fold the drain-phase payloads and build the fleet report."""
        completions: List[Tuple[float, int, int, str, float, bool]] = []
        for index in sorted(finish):
            payload = finish[index]
            self._fold_counters(payload["admitted"], payload["rejected"])
            for done, seq, tenant, latency, violated \
                    in payload["completions"]:
                completions.append(
                    (done, index, seq, tenant, latency, violated))
            self.health_events.extend(payload["health_events"])
        self._feed_completions(completions)
        scenario = self.scenario
        aggregate = self.fleet.aggregate
        duration = scenario.duration_s
        indices = sorted(finish)
        devices = [ServingReport.from_dict(finish[index]["report"])
                   for index in indices]
        placement_stats = {
            "routed": [self.routed[index] for index in indices],
            "rerouted_in": [self.rerouted_in[index] for index in indices],
            "rerouted_out": [self.rerouted_out[index]
                             for index in indices],
            "reroutes": self.reroutes,
            "cluster_rejected": self.cluster_rejected,
            "final_health": [finish[index]["health"] for index in indices],
            "epoch_s": self.parallel.epoch_s,
            "epochs": self.epochs_run,
        }
        self.health_events.sort(key=lambda e: (e[0], e[1]))
        return ClusterReport(
            system=self.cluster.label,
            workload=scenario.label,
            placement=self.cluster.placement,
            device_count=len(indices),
            duration_s=duration,
            makespan_s=max(finish[index]["makespan_s"]
                           for index in indices),
            offered=aggregate.offered,
            admitted=aggregate.admitted,
            rejected=aggregate.rejected,
            completed=aggregate.completed,
            slo_violations=aggregate.slo_violations,
            offered_rps=aggregate.offered / duration,
            goodput_rps=aggregate.goodput_rps(duration),
            latency=latency_summary(aggregate),
            per_tenant={tenant: self.fleet.account(tenant).as_dict(duration)
                        for tenant in self.fleet.tenants()},
            energy_j=sum(finish[index]["energy_j"] for index in indices),
            devices=devices,
            placement_stats=placement_stats,
            health_events=[list(event) for event in self.health_events],
        )


def run_cluster_parallel(
        scenario: ServingScenario, cluster: ClusterConfig,
        parallel: Optional[ParallelConfig] = None) -> ClusterReport:
    """Convenience wrapper: run one scenario on one fleet in parallel."""
    return ParallelClusterSession(scenario, cluster, parallel).run()


__all__ = [
    "EpochTracker",
    "ParallelClusterSession",
    "ParallelConfig",
    "run_cluster_parallel",
]
