"""The sharding dispatcher in front of the per-device front-ends.

:class:`ClusterDispatcher` is the fleet's single entry point: every
arriving request is routed to one device shard by the placement policy,
then passes that shard's own admission controller and per-tenant queues
(the existing single-device machinery, unchanged).  The dispatcher also
owns the authoritative *fleet-level* SLO accounting: offered/admitted/
rejected are recorded here, and completions are forwarded up from the
per-device trackers (:class:`ShardTracker`), so fleet counters stay
conserved even when a request is admitted on one device and — after a
failure reroute — completed on another.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..obs import CLUSTER_EDGE
from ..platform.cluster import ClusterConfig
from ..policy import build_policy
from ..serve.request import Request, RequestRecord, RequestStatus
from ..serve.slo import SLOTracker
from .health import DeviceHealth, DeviceShard
from .placement import PlacementPolicy


class ShardTracker(SLOTracker):
    """Per-device SLO tracker that forwards completions to the fleet.

    Offered/admitted/rejected stay device-local (the dispatcher records
    them at fleet level itself, after it sees the routing and admission
    outcome); completions must be forwarded from here because they arrive
    asynchronously through the device front-end's completion callback.
    """

    def __init__(self, tenants, fleet: SLOTracker,
                 reservoir_capacity: int = 4096, seed: int = 0):
        super().__init__(tenants, reservoir_capacity=reservoir_capacity,
                         seed=seed)
        self._fleet = fleet

    def on_completed(self, record: RequestRecord) -> None:
        """Record the completion locally and forward it to the fleet."""
        super().on_completed(record)
        self._fleet.on_completed(record)


class ClusterDispatcher:
    """Routes requests to device shards and handles health transitions."""

    def __init__(self, env, shards: List[DeviceShard],
                 cluster: ClusterConfig, fleet: SLOTracker,
                 policy: Optional[PlacementPolicy] = None,
                 seed: int = 0):
        if not shards:
            raise ValueError("at least one device shard is required")
        self.env = env
        self.shards = shards
        self.cluster = cluster
        self.fleet = fleet
        # An elastic fleet may grow past the initially provisioned
        # shards: the placement policy must be built over the ceiling,
        # or stateless policies (round-robin's modulo, tenant-affinity's
        # hash) could never reach a scaled-up device.  ``seed`` (the
        # scenario seed) feeds learned policies' exploration RNG; static
        # policies never name it.
        device_count = (cluster.effective_max_devices if cluster.elastic
                        else len(shards))
        self.policy = policy if policy is not None else build_policy(
            "placement", cluster.placement_policy_spec(),
            device_count=device_count, salt=cluster.affinity_salt,
            seed=seed)
        self.cluster_rejected = 0    # arrivals with no routable device
        self.reroutes = 0            # backlog records moved off failed devices
        self.health_events: List[Tuple[float, int, str]] = []
        self.closed = False
        # Observability (repro.obs): the shard front-ends record the
        # per-device request lifecycle; the dispatcher only adds what
        # never reaches a shard (cluster-edge rejections) and the
        # cross-device moves (evict/reroute).
        self._tracer = env.tracer

    # ------------------------------------------------------------------ #
    # Arrival side                                                        #
    # ------------------------------------------------------------------ #
    def routable_shards(self) -> List[DeviceShard]:
        """Shards currently accepting new traffic (not failed)."""
        return [shard for shard in self.shards if shard.routable]

    def submit(self, request: Request) -> RequestRecord:
        """Route one arrival: pick a shard, let its front-end admit it."""
        self.fleet.on_offered(request.tenant)
        routable = self.routable_shards()
        if not routable:
            # Whole fleet out of rotation: reject at the cluster edge.
            record = RequestRecord(request=request,
                                   status=RequestStatus.REJECTED)
            self.cluster_rejected += 1
            self.fleet.on_rejected(request.tenant)
            tracer = self._tracer
            if tracer is not None:
                # Edge rejections never reach a shard front-end, so the
                # dispatcher records both lifecycle spans itself.
                now = self.env.now
                tracer.span(now, "arrival", request.request_id,
                            request.tenant, CLUSTER_EDGE, request.workload)
                tracer.span(now, "reject", request.request_id,
                            request.tenant, CLUSTER_EDGE)
            return record
        shard = self.policy.select(request, routable)
        record = shard.frontend.submit(request)
        if record.status is RequestStatus.REJECTED:
            self.fleet.on_rejected(request.tenant)
        else:
            shard.routed += 1
            self.fleet.on_admitted(request.tenant)
        return record

    def close(self) -> None:
        """No more arrivals: every shard's dispatcher may drain and exit."""
        self.closed = True
        for shard in self.shards:
            shard.frontend.close()

    # ------------------------------------------------------------------ #
    # Elastic-fleet hooks (driven by the AutoscaleController)             #
    # ------------------------------------------------------------------ #
    def add_shard(self, shard: DeviceShard) -> None:
        """Adopt a freshly provisioned shard into the routable fleet."""
        if shard.index != len(self.shards):
            raise ValueError(
                f"new shard index {shard.index} must extend the fleet "
                f"({len(self.shards)} shards)")
        self.shards.append(shard)

    def drain_shard(self, victim: DeviceShard) -> bool:
        """Move a scale-down victim's backlog to its peers.

        The victim must already be marked ``draining`` (so it is out of
        ``routable_shards``).  Queued records reroute through the
        placement policy exactly like the fault path; in-flight work
        finishes on the victim.  Returns ``False`` — and clears the
        ``draining`` mark — when no peer can adopt the backlog (every
        other device failed): the scale-down is aborted rather than
        stranding admitted requests.
        """
        evicted = victim.frontend.evict_queued()
        if not evicted:
            return True
        targets = self.routable_shards()
        if not targets:
            victim.draining = False
            for record in evicted:
                victim.frontend.enqueue_record(record)
            return False
        self._place_evicted(victim, evicted, targets)
        return True

    @property
    def drained(self) -> bool:
        """True once every shard's front-end has drained."""
        return all(shard.frontend.drained for shard in self.shards)

    # ------------------------------------------------------------------ #
    # Health transitions                                                  #
    # ------------------------------------------------------------------ #
    def set_health(self, device: int, state: DeviceHealth) -> None:
        """Apply one health transition at the current simulation time.

        Failing a device evicts its queued backlog and reroutes each
        record through the placement policy; requests already in flight
        finish on the failing device (fail-stop with drain), so no
        admitted request is ever dropped.
        """
        shard = self.shards[device]
        self.health_events.append((self.env.now, device, state.value))
        if shard.retired:
            # A scale-down retired this device first: its backend is
            # finished and its meter stopped; the transition is recorded
            # but must not resurrect it.
            return
        if state is DeviceHealth.FAILED \
                and shard.health is DeviceHealth.FAILED:
            # Already failed: a repeated fault must not re-zero the
            # capacity of a device that is self-draining its backlog
            # (the no-peer fallback below), which would wedge the run.
            return
        shard.apply_health(state, self.cluster.degraded_capacity_factor)
        if state is DeviceHealth.FAILED:
            self._reroute_backlog(shard)

    def _reroute_backlog(self, failed: DeviceShard) -> None:
        evicted = failed.frontend.evict_queued()
        if not evicted:
            return
        tracer = self._tracer
        now = self.env.now
        targets = self.routable_shards()
        if not targets:
            # Nowhere to go: the failing device must drain its own backlog
            # (restore its capacity so the dispatch loop is not wedged).
            failed.frontend.capacity_limit = None
            for record in evicted:
                if tracer is not None:
                    # Self-requeue: evicted and rerouted to itself (not
                    # counted in ``reroutes``, matching the counter).
                    rid = record.request.request_id
                    tenant = record.request.tenant
                    tracer.span(now, "evict", rid, tenant, failed.index)
                    tracer.span(now, "reroute", rid, tenant,
                                failed.index, failed.index)
                failed.frontend.enqueue_record(record)
            return
        self._place_evicted(failed, evicted, targets)

    def _place_evicted(self, origin: DeviceShard,
                       evicted: List[RequestRecord],
                       targets: List[DeviceShard]) -> None:
        """Re-place an evicted backlog onto routable peers.

        The one reroute loop shared by the fault path
        (:meth:`set_health` on FAILED) and the scale-down path
        (:meth:`drain_shard`): per record, the placement policy picks a
        target from the routable set captured at eviction time, counters
        bump on both sides, and the policy is notified so learned
        placements can penalize the move.
        """
        origin.rerouted_out += len(evicted)
        self.reroutes += len(evicted)
        tracer = self._tracer
        now = self.env.now
        for record in evicted:
            target = self.policy.select(record.request, targets)
            target.rerouted_in += 1
            record.reroutes += 1
            self.policy.on_reroute(record, origin.index, target.index)
            if tracer is not None:
                rid = record.request.request_id
                tenant = record.request.tenant
                tracer.span(now, "evict", rid, tenant, origin.index)
                tracer.span(now, "reroute", rid, tenant,
                            target.index, origin.index)
            target.frontend.enqueue_record(record)
