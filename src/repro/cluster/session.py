"""Cluster session: run one serving scenario on a sharded fleet.

:class:`ClusterSession` is the fleet counterpart of
:class:`~repro.serve.session.ServingSession`: it builds every device of a
:class:`~repro.platform.cluster.ClusterConfig` on one shared
:class:`~repro.sim.engine.Environment` (each device its own
``PlatformBuilder`` product — backend, admission controller, per-tenant
queues), puts a :class:`~repro.cluster.dispatcher.ClusterDispatcher` in
front, schedules the arrival trace and the fault timeline, drives the
simulation until every request has settled, and rolls the per-device
results into a :class:`~repro.cluster.report.ClusterReport`.
"""

from __future__ import annotations

from typing import List, Optional

from ..obs import MetricsBus, ObsConfig, Tracer, wire_cluster_metrics
from ..platform.cluster import ClusterConfig, FaultSpec
from ..policy import learned_snapshot, wire_feedback
from ..serve.report import ServingReport
from ..serve.session import (
    ServingScenario,
    arrival_driver,
    assemble_serving_report,
    build_serving_backend,
    drive_until_settled,
    latency_summary,
)
from ..serve.frontend import ServingFrontend
from ..serve.slo import SLOTracker
from ..sim.engine import Environment
from .autoscale import AutoscaleController
from .dispatcher import ClusterDispatcher, ShardTracker
from .health import DeviceHealth, DeviceShard
from .report import ClusterReport


class ClusterSession:
    """Runs one :class:`ServingScenario` on one configured fleet.

    ``obs`` opts into the observability layer (:mod:`repro.obs`): with
    tracing on, every shard's front-end/backend spans are tagged with its
    device index and the dispatcher adds edge-reject and evict/reroute
    spans; with metrics on, the fleet instrument set (per-shard
    outstanding/queue depth/energy plus fleet rates) samples into a
    timeline serialized as the report's ``metrics`` field.  ``obs=None``
    (the default) is the byte-identical pre-observability path.
    """

    def __init__(self, scenario: ServingScenario, cluster: ClusterConfig,
                 obs: Optional[ObsConfig] = None):
        self.scenario = scenario
        self.cluster = cluster
        self.obs = obs
        self.tracer: Optional[Tracer] = None
        self.metrics = None
        self.autoscaler: Optional[AutoscaleController] = None
        # The last run's shards: learned-policy evaluation (learning
        # curves) reads their front-end records after the run.
        self.shards: Optional[List[DeviceShard]] = None

    # ------------------------------------------------------------------ #
    # Fleet assembly                                                      #
    # ------------------------------------------------------------------ #
    def _build_shard(self, env: Environment, fleet: SLOTracker,
                     index: int) -> DeviceShard:
        """One device shard, from the config of fleet position ``index``.

        Positions past the configured ``devices`` (elastic scale-up)
        clone the device template; either way the shard's reservoir seed
        is a pure function of the scenario seed and the index, so elastic
        runs stay byte-reproducible.
        """
        scenario = self.scenario
        tenants = [t.name for t in scenario.tenants]
        config = self.cluster.device_config(index)
        backend = build_serving_backend(scenario, config, env=env)
        # Distinct deterministic reservoir seeds per device, offset
        # past the fleet tracker's own per-tenant seed range.
        tracker = ShardTracker(
            tenants, fleet,
            reservoir_capacity=scenario.reservoir_capacity,
            seed=scenario.seed + 1000 * (index + 1))
        frontend = ServingFrontend(env, backend,
                                   scenario.make_admission(),
                                   tracker, tenants,
                                   dispatch=scenario.make_dispatch())
        shard = DeviceShard(index, config, backend, frontend, tracker)
        if self.tracer is not None:
            # Tag every span with the shard's device index so trace
            # tracks separate per device.
            shard.frontend.trace_device = shard.index
            shard.backend.bind_trace_device(shard.index)
        return shard

    def _build_shards(self, env: Environment,
                      fleet: SLOTracker) -> List[DeviceShard]:
        return [self._build_shard(env, fleet, index)
                for index in range(len(self.cluster.devices))]

    # ------------------------------------------------------------------ #
    # Simulation processes                                                #
    # ------------------------------------------------------------------ #
    @staticmethod
    def _fault_driver(env: Environment, dispatcher: ClusterDispatcher,
                      faults: List[FaultSpec]):
        for fault in faults:
            delay = fault.time_s - env.now
            if delay > 0:
                yield env.timeout(delay)
            dispatcher.set_health(fault.device,
                                  DeviceHealth(fault.state))

    # ------------------------------------------------------------------ #
    # Execution                                                           #
    # ------------------------------------------------------------------ #
    def run(self) -> ClusterReport:
        """Execute the scenario on the fleet; returns the report."""
        scenario = self.scenario
        obs = self.obs
        env = Environment()
        if obs is not None and obs.tracing:
            # Attached before the shards are built, so every front-end
            # and backend captures the tracer.
            self.tracer = Tracer(obs.trace_capacity)
            env.tracer = self.tracer
        tenants = [t.name for t in scenario.tenants]
        fleet = SLOTracker(tenants,
                           reservoir_capacity=scenario.reservoir_capacity,
                           seed=scenario.seed)
        shards = self._build_shards(env, fleet)
        dispatcher = ClusterDispatcher(env, shards, self.cluster, fleet,
                                       seed=scenario.seed)
        # Learned-policy feedback: each shard's own learned admission/
        # dispatch policies, plus the fleet-level placement policy on
        # *every* shard front-end (a placement decision's outcome
        # surfaces wherever the request completes).
        for shard in shards:
            wire_feedback(shard.frontend, extra=(dispatcher.policy,))
        self.shards = shards
        bus: Optional[MetricsBus] = None
        if obs is not None and obs.metrics:
            bus = MetricsBus(cadence_s=obs.cadence_s)
            wire_cluster_metrics(bus, fleet, shards, dispatcher)
            bus.install(env)
        controller: Optional[AutoscaleController] = None
        if self.cluster.elastic:
            # Built after metrics wiring so its latency tap chains onto
            # (rather than replaces) the bus's histogram hook.
            def shard_factory(index: int) -> DeviceShard:
                shard = self._build_shard(env, fleet, index)
                # Scale-up shards join the feedback loop like the
                # initially provisioned ones.
                wire_feedback(shard.frontend, extra=(dispatcher.policy,))
                shard.backend.start()
                return shard

            controller = AutoscaleController(env, dispatcher, self.cluster,
                                             fleet, shard_factory)
            controller.install(env)
        self.autoscaler = controller
        requests = scenario.make_arrivals().generate(scenario.duration_s)
        for shard in shards:
            shard.backend.start()
        env.process(arrival_driver(env, dispatcher, requests))
        faults = sorted(self.cluster.faults, key=lambda f: f.time_s)
        if faults:
            env.process(self._fault_driver(env, dispatcher, faults))
        def check_fleet_health():
            """Surface crashes from any shard's backend processes."""
            for shard in shards:
                shard.backend.check_health()

        drive_until_settled(env, fleet, len(requests), scenario.duration_s,
                            check_fleet_health, label="cluster run")
        if bus is not None:
            # Final sample at settle time, then retire the sampler
            # (de-scheduling its pending tick) so the drain loop below
            # terminates — and ends at the same clock reading as an
            # unobserved run.
            bus.stop(env)
        if controller is not None:
            # Same treatment for the control loop's pending tick and any
            # outstanding warm-up timers.
            controller.stop(env)
        for shard in shards:
            if not shard.retired:   # retired at scale-down: already finished
                shard.backend.finish()
        # Drain background work (Storengine flush/GC) on every device so
        # energy accounting covers every byte served fleet-wide.
        env.run()
        check_fleet_health()
        report = self._assemble_report(env, shards, dispatcher, fleet)
        if bus is not None:
            self.metrics = bus.timeline
            report.metrics = bus.timeline.to_dict()
        if controller is not None:
            report.autoscaler = controller.summary(env.now)
        report.learned = learned_snapshot({"placement": dispatcher.policy})
        return report

    # ------------------------------------------------------------------ #
    # Report assembly                                                     #
    # ------------------------------------------------------------------ #
    def _device_report(self, env: Environment,
                       shard: DeviceShard) -> ServingReport:
        stats_fn = getattr(shard.backend, "scheduler_stats", None)
        report = assemble_serving_report(
            self.scenario, shard.config.system, shard.tracker,
            makespan_s=env.now, energy_j=shard.backend.energy_j,
            scheduler_stats=stats_fn() if stats_fn else None)
        report.learned = learned_snapshot({
            "admission": shard.frontend.admission,
            "dispatch": shard.frontend.dispatch_policy})
        return report

    def _assemble_report(self, env: Environment,
                         shards: List[DeviceShard],
                         dispatcher: ClusterDispatcher,
                         fleet: SLOTracker) -> ClusterReport:
        scenario = self.scenario
        aggregate = fleet.aggregate
        duration = scenario.duration_s
        devices = [self._device_report(env, shard) for shard in shards]
        placement_stats = {
            "routed": [shard.routed for shard in shards],
            "rerouted_in": [shard.rerouted_in for shard in shards],
            "rerouted_out": [shard.rerouted_out for shard in shards],
            "reroutes": dispatcher.reroutes,
            "cluster_rejected": dispatcher.cluster_rejected,
            "final_health": [shard.health.value for shard in shards],
        }
        return ClusterReport(
            system=self.cluster.label,
            workload=scenario.label,
            placement=self.cluster.placement,
            device_count=len(shards),
            duration_s=duration,
            makespan_s=env.now,
            offered=aggregate.offered,
            admitted=aggregate.admitted,
            rejected=aggregate.rejected,
            completed=aggregate.completed,
            slo_violations=aggregate.slo_violations,
            offered_rps=aggregate.offered / duration,
            goodput_rps=aggregate.goodput_rps(duration),
            latency=latency_summary(aggregate),
            per_tenant={tenant: fleet.account(tenant).as_dict(duration)
                        for tenant in fleet.tenants()},
            energy_j=sum(shard.backend.energy_j for shard in shards),
            devices=devices,
            placement_stats=placement_stats,
            health_events=[list(event)
                           for event in dispatcher.health_events],
        )


def run_cluster(scenario: ServingScenario,
                cluster: ClusterConfig,
                obs: Optional[ObsConfig] = None) -> ClusterReport:
    """Convenience wrapper: run one scenario on one fleet."""
    return ClusterSession(scenario, cluster, obs=obs).run()
