"""Elastic fleets: the ``autoscaler`` policy domain and its control loop.

Where the PR-3 fault timeline *replays* a scripted health script, this
module closes the loop: an :class:`AutoscaleController` process samples
fleet load on a fixed simulated cadence and asks a registered
``autoscaler`` policy (registry domain #5, :mod:`repro.policy`) for a
target fleet size.  The controller then acts:

* **Scale-up** builds a brand-new :class:`~repro.cluster.health.DeviceShard`
  from the cluster's device template on the shared engine, but holds it
  out of placement for the cluster's ``warmup_s`` — the device burns
  energy and device-seconds while warming, which is the provisioning
  cost an elastic fleet pays for reacting late.
* **Scale-down** picks a victim, stops placing to it (``draining``),
  evicts its queued backlog and reroutes every record through the PR-3
  evict/reroute machinery — in-flight work finishes on the victim, so
  **no admitted request is ever dropped**.  Once the victim is empty it
  is retired: its backend leaves service mode and its device-seconds
  meter stops.

Every decision happens at a deterministic engine timeout, so elastic
runs are byte-reproducible per seed like everything else in the repo.

Built-in policies
-----------------
* ``queue_depth_threshold`` — scale on per-device load: a standing
  queue above ``scale_up_depth`` adds a device; outstanding work
  (queued + in-flight) below ``scale_down_depth`` removes one.
* ``p99_target`` — track a tail-latency target with hysteresis: the
  windowed p99 must sit above the target (or below ``low_fraction`` of
  it) for ``patience`` consecutive control ticks before the fleet moves,
  so a single noisy window cannot flap the fleet.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..policy import build_policy, register_policy

#: Action tags recorded in the controller's event log.
SCALE_UP = "scale_up"
SCALE_DOWN = "scale_down"
RETIRE = "retire"


class FleetSignals:
    """What an autoscaler policy may observe at one control tick.

    A plain read-only snapshot: the controller assembles one per tick so
    policies never touch live session objects (keeps them trivially
    testable and keeps the observation surface explicit).
    """

    __slots__ = ("now", "active_devices", "min_devices", "max_devices",
                 "queued_total", "in_flight_total", "window_completed",
                 "window_p99_s", "rolling_p99_s", "window_arrivals")

    def __init__(self, now: float, active_devices: int, min_devices: int,
                 max_devices: int, queued_total: int, in_flight_total: int,
                 window_completed: int, window_p99_s: Optional[float],
                 rolling_p99_s: Optional[float], window_arrivals: int):
        self.now = now
        self.active_devices = active_devices
        self.min_devices = min_devices
        self.max_devices = max_devices
        self.queued_total = queued_total
        self.in_flight_total = in_flight_total
        self.window_completed = window_completed
        self.window_p99_s = window_p99_s
        self.rolling_p99_s = rolling_p99_s
        self.window_arrivals = window_arrivals

    @property
    def queued_per_device(self) -> float:
        """Queued requests per active device (0 devices reads as 1)."""
        return self.queued_total / max(self.active_devices, 1)

    @property
    def outstanding_per_device(self) -> float:
        """Queued plus in-flight work per active device.

        The idleness signal: a busy-but-unqueued fleet reads ~1 request
        per device here while its instantaneous queue depth reads 0, so
        scale-down decisions keyed on this do not mistake "keeping up"
        for "idle".
        """
        return ((self.queued_total + self.in_flight_total)
                / max(self.active_devices, 1))


class AutoscalerPolicy:
    """Base policy: name a target fleet size for the current signals."""

    name = "autoscaler"

    def target(self, signals: FleetSignals) -> int:
        """Desired device count; the controller clamps to [min, max]."""
        raise NotImplementedError


@register_policy("autoscaler")
class QueueDepthThresholdAutoscaler(AutoscalerPolicy):
    """Scale on per-device load with an asymmetric dead band.

    Scale-up keys on *queued* requests per active device (above
    ``scale_up_depth`` the fleet grows by ``step``): a standing queue is
    the unambiguous overload signal.  Scale-down keys on *outstanding*
    work per device — queued plus in-flight — below ``scale_down_depth``:
    a fleet that is keeping up runs with empty queues at every tick
    instant, so queue depth alone would read a fully busy fleet as idle
    and flap it.  Keep the thresholds apart, or the fleet oscillates.
    """

    name = "queue_depth_threshold"

    def __init__(self, scale_up_depth: float = 4.0,
                 scale_down_depth: float = 0.5, step: int = 1):
        if scale_up_depth <= scale_down_depth:
            raise ValueError(
                "scale_up_depth must exceed scale_down_depth (the gap is "
                "the hysteresis dead band)")
        if step < 1:
            raise ValueError("step must be >= 1")
        self.scale_up_depth = scale_up_depth
        self.scale_down_depth = scale_down_depth
        self.step = step

    def target(self, signals: FleetSignals) -> int:
        """Grow on standing queues, shrink only when devices sit idle."""
        if signals.queued_per_device > self.scale_up_depth:
            return signals.active_devices + self.step
        if signals.outstanding_per_device < self.scale_down_depth:
            return signals.active_devices - self.step
        return signals.active_devices


@register_policy("autoscaler")
class P99TargetAutoscaler(AutoscalerPolicy):
    """Track a p99 latency target with consecutive-tick hysteresis.

    The windowed p99 (completions since the previous control tick) must
    breach for ``patience`` consecutive ticks before the fleet moves:
    above ``target_p99_s`` it grows, below ``low_fraction * target_p99_s``
    (with a near-empty queue) it shrinks.  A window with no completions
    falls back to queue pressure: a standing queue deeper than the active
    device count reads as over-target, an empty one as under-target.
    """

    name = "p99_target"

    def __init__(self, target_p99_s: float = 0.25,
                 low_fraction: float = 0.5, patience: int = 2,
                 step: int = 1):
        if target_p99_s <= 0:
            raise ValueError("target_p99_s must be positive")
        if not 0.0 < low_fraction < 1.0:
            raise ValueError("low_fraction must be in (0, 1)")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if step < 1:
            raise ValueError("step must be >= 1")
        self.target_p99_s = target_p99_s
        self.low_fraction = low_fraction
        self.patience = patience
        self.step = step
        self._over_ticks = 0
        self._under_ticks = 0

    def target(self, signals: FleetSignals) -> int:
        """Move only after ``patience`` consecutive breaching windows."""
        p99 = signals.window_p99_s
        if p99 is not None:
            over = p99 > self.target_p99_s
            under = (p99 < self.low_fraction * self.target_p99_s
                     and signals.queued_per_device < 1.0)
        else:
            # Quiet window: queue pressure stands in for the tail.
            over = signals.queued_total > signals.active_devices
            under = signals.queued_total == 0
        self._over_ticks = self._over_ticks + 1 if over else 0
        self._under_ticks = self._under_ticks + 1 if under else 0
        if self._over_ticks >= self.patience:
            self._over_ticks = 0
            return signals.active_devices + self.step
        if self._under_ticks >= self.patience:
            self._under_ticks = 0
            return signals.active_devices - self.step
        return signals.active_devices


class _LatencyTap:
    """Chains onto a front-end's ``obs_latency`` hook.

    Feeds the controller's per-window latency list and forwards to
    whatever hook was installed first (the metrics bus's histogram), so
    observability and autoscaling can share the single hook point.
    """

    __slots__ = ("window", "forward")

    def __init__(self, window: List[float], forward=None):
        self.window = window
        self.forward = forward

    def observe(self, value: float) -> None:
        self.window.append(value)
        if self.forward is not None:
            self.forward.observe(value)


class AutoscaleController:
    """The elastic-fleet control loop of one cluster run.

    Owns the policy instance, the per-tick signal assembly, the scale-up
    (build + warm-up) and scale-down (drain + retire) mechanics, and the
    cost accounting the report's ``autoscaler`` section carries.  The
    dispatcher stays the single routing authority: the controller only
    flips shard lifecycle flags and reuses the dispatcher's reroute
    machinery, exactly like the fault path does.
    """

    def __init__(self, env, dispatcher, cluster, fleet,
                 shard_factory: Callable[[int], object]):
        spec = cluster.autoscaler_spec
        if spec is None:
            raise ValueError("cluster has no autoscaler_spec")
        self.env = env
        self.dispatcher = dispatcher
        self.cluster = cluster
        self.fleet = fleet
        self.shard_factory = shard_factory
        self.policy = build_policy("autoscaler", spec)
        self.min_devices = cluster.effective_min_devices
        self.max_devices = cluster.effective_max_devices
        self.interval_s = cluster.autoscale_interval_s
        self.warmup_s = cluster.warmup_s
        #: [time, action, device] rows, in decision order.
        self.events: List[List] = []
        #: [time, active-device-count] after every change and tick.
        self.size_timeline: List[Tuple[float, int]] = [
            (env.now, len(dispatcher.shards))]
        self._window_latencies: List[float] = []
        self._last_offered = fleet.aggregate.offered
        self._last_completed = fleet.aggregate.completed
        self._stopped = False
        self._pending = None
        self._warm_timers: List = []
        for shard in dispatcher.shards:
            self._tap(shard)

    # ------------------------------------------------------------------ #
    # Wiring                                                              #
    # ------------------------------------------------------------------ #
    def _tap(self, shard) -> None:
        """Chain the latency window onto one shard's completion hook."""
        shard.frontend.obs_latency = _LatencyTap(
            self._window_latencies, shard.frontend.obs_latency)

    def install(self, env) -> None:
        """Start the control-loop process (first tick after one interval)."""
        env.process(self._loop(env))

    def _loop(self, env):
        interval = self.interval_s
        while not self._stopped:
            self._pending = env.timeout(interval)
            yield self._pending
            if self._stopped:
                return
            self.tick(env.now)

    def stop(self, env) -> None:
        """Retire the loop and de-schedule its pending timers.

        Called once the run has settled; like the metrics bus's sampler,
        the pending control tick (and any outstanding warm-up timers —
        warming after the last arrival serves nothing) is *cancelled*,
        never fired, so the post-run drain ends at the real makespan.
        """
        if self._stopped:
            return
        self._stopped = True
        pending, self._pending = self._pending, None
        if pending is not None:
            env.cancel(pending)
        for timer in self._warm_timers:
            env.cancel(timer)
        self._warm_timers = []
        # A shard still warming at stop never joins placement; clear the
        # flag anyway so `routable` reflects final health in the report.
        for shard in self.dispatcher.shards:
            shard.warming = False

    # ------------------------------------------------------------------ #
    # The control tick                                                    #
    # ------------------------------------------------------------------ #
    def _active_shards(self) -> List:
        """Shards currently provisioned (not draining, not retired)."""
        return [shard for shard in self.dispatcher.shards
                if not shard.draining and not shard.retired]

    def _signals(self, now: float) -> FleetSignals:
        active = self._active_shards()
        window = self._window_latencies
        if window:
            ordered = sorted(window)
            p99 = ordered[min(len(ordered) - 1, (99 * len(ordered)) // 100)]
        else:
            p99 = None
        aggregate = self.fleet.aggregate
        signals = FleetSignals(
            now=now,
            active_devices=len(active),
            min_devices=self.min_devices,
            max_devices=self.max_devices,
            queued_total=sum(shard.queued for shard in active),
            in_flight_total=sum(shard.in_flight for shard in active),
            window_completed=len(window),
            window_p99_s=p99,
            rolling_p99_s=self.fleet.rolling_percentile(99.0),
            window_arrivals=aggregate.offered - self._last_offered,
        )
        self._window_latencies = []
        self._last_offered = aggregate.offered
        self._last_completed = aggregate.completed
        # Window taps hold a reference to the drained list; repoint them
        # at the fresh one.
        for shard in self.dispatcher.shards:
            hook = shard.frontend.obs_latency
            if isinstance(hook, _LatencyTap):
                hook.window = self._window_latencies
        return signals

    def tick(self, now: float) -> None:
        """One control decision: retire finished drains, then resize."""
        self._retire_drained(now)
        signals = self._signals(now)
        target = self.policy.target(signals)
        target = max(self.min_devices, min(self.max_devices, target))
        active = signals.active_devices
        if target > active:
            self._scale_up(now, target - active)
        elif target < active:
            self._scale_down(now, active - target)
        self.size_timeline.append((now, len(self._active_shards())))

    def _retire_drained(self, now: float) -> None:
        """Finish the backends of drained scale-down victims."""
        for shard in self.dispatcher.shards:
            if (shard.draining and not shard.retired
                    and shard.queued == 0 and shard.in_flight == 0):
                shard.retired = True
                shard.retired_at = now
                shard.backend.finish()
                self.events.append([now, RETIRE, shard.index])

    def _scale_up(self, now: float, count: int) -> None:
        """Provision ``count`` new devices from the template."""
        if self.dispatcher.closed:
            # No arrivals are coming: new capacity could never serve a
            # request and would only inflate the cost accounting.
            return
        for _ in range(count):
            index = len(self.dispatcher.shards)
            shard = self.shard_factory(index)
            shard.activated_at = now
            if self.warmup_s > 0:
                shard.warming = True
                self._warm_timers.append(
                    self.env.process(self._warm(shard)))
            self.dispatcher.add_shard(shard)
            self.events.append([now, SCALE_UP, index])
            self._tap(shard)

    def _warm(self, shard):
        timer = self.env.timeout(self.warmup_s)
        self._warm_timers.append(timer)
        yield timer
        shard.warming = False

    def _scale_down(self, now: float, count: int) -> None:
        """Drain ``count`` victims (highest index first), never below min."""
        for _ in range(count):
            candidates = self._active_shards()
            if len(candidates) <= self.min_devices:
                return
            victim = max(candidates, key=lambda shard: shard.index)
            victim.draining = True
            if not self.dispatcher.drain_shard(victim):
                # No peer can adopt the backlog (every other device
                # failed): the scale-down is aborted, not half-applied.
                return
            self.events.append([now, SCALE_DOWN, victim.index])

    # ------------------------------------------------------------------ #
    # Cost accounting                                                     #
    # ------------------------------------------------------------------ #
    def device_seconds(self, makespan_s: float) -> List[float]:
        """Per-device provisioned time: activation to retirement (or end)."""
        return [
            (shard.retired_at if shard.retired_at is not None
             else makespan_s) - shard.activated_at
            for shard in self.dispatcher.shards]

    def summary(self, makespan_s: float) -> Dict[str, object]:
        """The report's ``autoscaler`` section (plain JSON-safe dict)."""
        per_device = self.device_seconds(makespan_s)
        sizes = [size for _, size in self.size_timeline]
        return {
            "policy": self.cluster.autoscaler_spec.to_dict(),
            "min_devices": self.min_devices,
            "max_devices": self.max_devices,
            "warmup_s": self.warmup_s,
            "interval_s": self.interval_s,
            "events": [list(event) for event in self.events],
            "size_timeline": [[t, size] for t, size in self.size_timeline],
            "device_seconds": per_device,
            "total_device_seconds": sum(per_device),
            "peak_devices": max(sizes),
            "min_active_devices": min(sizes),
            "final_devices": sizes[-1],
        }
