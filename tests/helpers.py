"""Shared test helpers (imported as ``from helpers import ...``).

Kept outside ``conftest.py`` on purpose: test modules used to do
``from conftest import run_process``, which breaks when pytest collects
the repo root — ``conftest`` then resolves to whichever of
``tests/conftest.py`` / ``benchmarks/conftest.py`` got onto ``sys.path``
first.  A uniquely named helper module has no such ambiguity.
"""

from __future__ import annotations

from repro.sim.engine import Environment


def run_process(env: Environment, generator):
    """Drive ``generator`` to completion and return its value."""
    proc = env.process(generator)
    env.run()
    if not proc.ok:
        raise proc.value
    return proc.value
