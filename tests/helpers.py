"""Shared test helpers (imported as ``from helpers import ...``).

Kept outside ``conftest.py`` on purpose: test modules used to do
``from conftest import run_process``, which breaks when pytest collects
the repo root — ``conftest`` then resolves to whichever of
``tests/conftest.py`` / ``benchmarks/conftest.py`` got onto ``sys.path``
first.  A uniquely named helper module has no such ambiguity.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

from repro.serve.backends import ServingBackend
from repro.sim.engine import Environment

#: Where the checked-in golden report fixtures live.
GOLDEN_DIR = Path(__file__).parent / "goldens"


class StubBackend(ServingBackend):
    """Fixed-service-time backend (no kernels) for front-end/cluster tests."""

    def __init__(self, env, capacity=2, service_s=0.1):
        super().__init__(env, kernel_factory=None, capacity=capacity)
        self.service_s = service_s

    def dispatch(self, record, on_complete):
        self.in_flight += 1
        self.dispatched += 1
        self._procs.append(self.env.process(
            self._serve(record, on_complete)))

    def _serve(self, record, on_complete):
        yield self.env.timeout(self.service_s)
        self.in_flight -= 1
        on_complete(record, self.env.now)


def run_process(env: Environment, generator):
    """Drive ``generator`` to completion and return its value."""
    proc = env.process(generator)
    env.run()
    if not proc.ok:
        raise proc.value
    return proc.value


# --------------------------------------------------------------------------- #
# Golden-file helpers                                                          #
# --------------------------------------------------------------------------- #
def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def canonical_golden_text(payload: Dict[str, Any]) -> str:
    """The byte-exact on-disk form of a golden fixture."""
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def check_golden(name: str, payload: Dict[str, Any],
                 update: bool = False) -> None:
    """Compare ``payload`` against the checked-in golden ``name``.

    With ``update=True`` (wired to ``pytest --update-goldens``) the
    fixture is (re)written instead of compared — run that after an
    *intentional* simulator behavior change, then commit the diff.
    """
    path = golden_path(name)
    text = canonical_golden_text(payload)
    if update:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return
    assert path.is_file(), (
        f"missing golden fixture {path.name}; regenerate with "
        f"`python -m pytest tests/test_goldens.py --update-goldens`")
    stored = path.read_text()
    assert stored == text, (
        f"golden {path.name} drifted from the current simulator output. "
        f"If the behavior change is intentional, regenerate with "
        f"`python -m pytest tests/test_goldens.py --update-goldens` and "
        f"commit the diff.")
