"""Unit tests for Storengine: flushing, journaling, garbage collection."""

import pytest

from repro.core.flashvisor import Flashvisor
from repro.core.storengine import Storengine
from repro.flash.backbone import FlashBackbone
from repro.hw.interconnect import Interconnect
from repro.hw.lwp import LWPCluster
from repro.hw.memory import DDR3L, Scratchpad
from repro.hw.power import EnergyAccountant
from repro.sim import Environment


def build_stack(spec, flash_spec=None, **storengine_kwargs):
    """Assemble Flashvisor + Storengine over a (possibly tiny) backbone."""
    env = Environment()
    energy = EnergyAccountant()
    cluster = LWPCluster(env, spec.lwp, energy)
    ddr = DDR3L(env, spec.memory, energy)
    scratchpad = Scratchpad(env, spec.memory, energy)
    interconnect = Interconnect(env, spec.interconnect)
    backbone = FlashBackbone(env, flash_spec or spec.flash, energy)
    flashvisor = Flashvisor(env, cluster.flashvisor_lwp, backbone, ddr,
                            scratchpad, interconnect.new_queue("fv"), energy)
    storengine = Storengine(env, cluster.storengine_lwp, flashvisor, backbone,
                            energy, **storengine_kwargs)
    return env, flashvisor, storengine, backbone


def run_for(env, duration):
    env.run(until=env.now + duration)


def test_storengine_flushes_pending_writes(spec):
    env, flashvisor, storengine, backbone = build_stack(spec)
    flashvisor.pending_flush_bytes = 4 * 1024 * 1024
    run_for(env, 1.0)
    assert flashvisor.pending_flush_bytes == 0
    assert storengine.stats.flushed_bytes == 4 * 1024 * 1024
    assert backbone.bulk_bytes_written >= 4 * 1024 * 1024


def test_storengine_journals_periodically(spec):
    env, _flashvisor, storengine, _backbone = build_stack(
        spec, journal_interval_s=10e-3)
    run_for(env, 0.1)
    assert storengine.stats.journal_dumps >= 5
    assert storengine.stats.journal_bytes == (storengine.stats.journal_dumps
                                              * 2 * spec.flash.page_bytes)


def test_storengine_stop_halts_background_loop(spec):
    env, _flashvisor, storengine, _backbone = build_stack(spec)
    run_for(env, 0.01)
    storengine.stop()
    run_for(env, 0.1)
    dumps_after_stop = storengine.stats.journal_dumps
    run_for(env, 0.5)
    assert storengine.stats.journal_dumps == dumps_after_stop


def test_storengine_rejects_unknown_victim_policy(spec):
    with pytest.raises(ValueError):
        build_stack(spec, victim_policy="lru")


def test_drain_flushes_everything_synchronously(spec):
    env, flashvisor, storengine, _backbone = build_stack(spec)
    storengine.stop()
    flashvisor.pending_flush_bytes = 24 * 1024 * 1024

    proc = env.process(storengine.drain())
    env.run(until=env.now + 5.0)
    assert proc.triggered
    assert flashvisor.pending_flush_bytes == 0
    assert storengine.stats.flushed_bytes == 24 * 1024 * 1024


def test_gc_reclaims_rows_when_space_runs_low(spec, tiny_flash_spec):
    env, flashvisor, storengine, backbone = build_stack(
        spec, flash_spec=tiny_flash_spec, poll_interval_s=1e-4,
        journal_interval_s=1e3)
    allocator = flashvisor.allocator
    # Fill the device up to the GC threshold with invalidated (stale) data:
    # every group is immediately rewritten, so the old groups are garbage.
    group_bytes = backbone.geometry.page_group_bytes
    writes = 0
    while not allocator.needs_gc():
        flashvisor.translate_write(0, group_bytes)
        writes += 1
        if writes > backbone.geometry.page_groups_total * 2:
            pytest.fail("device never reached the GC threshold")
    assert allocator.needs_gc()
    run_for(env, 5.0)
    assert storengine.stats.gc_invocations > 0
    assert storengine.stats.erased_rows > 0
    assert not allocator.needs_gc()


def test_gc_preserves_valid_data_mappings(spec, tiny_flash_spec):
    env, flashvisor, storengine, backbone = build_stack(
        spec, flash_spec=tiny_flash_spec, poll_interval_s=1e-4,
        journal_interval_s=1e3)
    allocator = flashvisor.allocator
    geometry = backbone.geometry
    group_bytes = geometry.page_group_bytes
    # Write a small amount of live data first (logical groups 0..3).
    live_logical = list(range(4))
    flashvisor.translate_write(0, 4 * group_bytes)
    # Then churn a single logical group until GC kicks in, creating garbage.
    churn_word = 10 * (group_bytes // 4)
    safety = geometry.page_groups_total * 3
    while not allocator.needs_gc() and safety:
        flashvisor.translate_write(churn_word, group_bytes)
        safety -= 1
    run_for(env, 5.0)
    assert storengine.stats.migrated_groups >= 0
    for logical in live_logical:
        assert flashvisor.mapping.lookup(logical) is not None


def test_greedy_victim_policy_supported(spec, tiny_flash_spec):
    env, flashvisor, storengine, backbone = build_stack(
        spec, flash_spec=tiny_flash_spec, poll_interval_s=1e-4,
        journal_interval_s=1e3, victim_policy="greedy")
    allocator = flashvisor.allocator
    group_bytes = backbone.geometry.page_group_bytes
    safety = backbone.geometry.page_groups_total * 3
    while not allocator.needs_gc() and safety:
        flashvisor.translate_write(0, group_bytes)
        safety -= 1
    run_for(env, 5.0)
    assert storengine.stats.gc_invocations > 0
