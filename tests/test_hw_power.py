"""Unit tests for energy accounting and power monitoring."""

import pytest

from repro.hw.power import (
    BUCKETS,
    COMPUTATION,
    DATA_MOVEMENT,
    STORAGE_ACCESS,
    EnergyAccountant,
    EnergyBreakdown,
    PowerMonitor,
)
from repro.sim import Environment


def test_buckets_are_the_papers_three_categories():
    assert set(BUCKETS) == {DATA_MOVEMENT, COMPUTATION, STORAGE_ACCESS}


def test_energy_breakdown_total_and_fraction():
    breakdown = EnergyBreakdown(data_movement=2.0, computation=1.0,
                                storage_access=1.0)
    assert breakdown.total == pytest.approx(4.0)
    assert breakdown.fraction(DATA_MOVEMENT) == pytest.approx(0.5)
    assert breakdown.as_dict()["total"] == pytest.approx(4.0)


def test_energy_breakdown_normalization():
    simd = EnergyBreakdown(data_movement=8.0, computation=1.0,
                           storage_access=1.0)
    flashabacus = EnergyBreakdown(data_movement=0.0, computation=1.0,
                                  storage_access=1.0)
    normalized = flashabacus.normalized_to(simd)
    assert normalized.total == pytest.approx(0.2)


def test_energy_breakdown_normalize_to_zero_rejected():
    with pytest.raises(ValueError):
        EnergyBreakdown().normalized_to(EnergyBreakdown())


def test_accountant_charges_by_component_and_bucket():
    accountant = EnergyAccountant()
    accountant.charge("lwp0", COMPUTATION, 2.0)
    accountant.charge_power("ssd", STORAGE_ACCESS, watts=10.0, duration_s=0.5)
    assert accountant.breakdown.computation == pytest.approx(2.0)
    assert accountant.breakdown.storage_access == pytest.approx(5.0)
    assert accountant.by_component == {"lwp0": 2.0, "ssd": 5.0}
    assert accountant.total_joules == pytest.approx(7.0)


def test_accountant_rejects_bad_charges():
    accountant = EnergyAccountant()
    with pytest.raises(ValueError):
        accountant.charge("x", COMPUTATION, -1.0)
    with pytest.raises(ValueError):
        accountant.charge("x", "unknown_bucket", 1.0)
    with pytest.raises(ValueError):
        accountant.charge_power("x", COMPUTATION, 1.0, -1.0)


def test_power_monitor_tracks_instantaneous_power():
    env = Environment()
    monitor = PowerMonitor(env, baseline_w=1.0)
    assert monitor.current_power() == pytest.approx(1.0)
    monitor.set_draw("lwp0", 0.8)
    monitor.set_draw("flash", 11.0)
    assert monitor.current_power() == pytest.approx(12.8)
    monitor.set_draw("flash", 0.0)
    assert monitor.current_power() == pytest.approx(1.8)


def test_power_monitor_average_power_over_window():
    env = Environment()
    monitor = PowerMonitor(env)

    def scenario(env):
        monitor.set_draw("a", 10.0)
        yield env.timeout(1.0)
        monitor.set_draw("a", 0.0)
        yield env.timeout(1.0)

    env.process(scenario(env))
    env.run()
    assert monitor.average_power(0.0, 2.0) == pytest.approx(5.0)


def test_power_monitor_rejects_negative_draw():
    env = Environment()
    monitor = PowerMonitor(env)
    with pytest.raises(ValueError):
        monitor.set_draw("x", -1.0)
