"""Unit tests for the serving arrival processes and trace helpers."""

import pytest

from repro.serve import (
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TenantSpec,
    TraceArrivals,
)
from repro.workloads import load_trace, synthetic_trace, write_trace

TENANTS = (TenantSpec("a", 2.0, 0.5), TenantSpec("b", 1.0, 0.25))


def test_tenant_spec_validation():
    with pytest.raises(ValueError):
        TenantSpec("bad", weight=0.0)
    with pytest.raises(ValueError):
        TenantSpec("bad", slo_s=0.0)


def test_poisson_rate_and_determinism():
    process = PoissonArrivals(100.0, TENANTS, seed=5)
    requests = process.generate(10.0)
    # Mean inter-arrival 10 ms over 10 s: expect ~1000 +- a loose band.
    assert 800 < len(requests) < 1200
    assert all(0.0 <= r.arrival_s < 10.0 for r in requests)
    times = [r.arrival_s for r in requests]
    assert times == sorted(times)
    assert [r.request_id for r in requests] == list(range(len(requests)))
    # Same seed, same trace; different seed, different trace.
    again = PoissonArrivals(100.0, TENANTS, seed=5).generate(10.0)
    assert again == requests
    other = PoissonArrivals(100.0, TENANTS, seed=6).generate(10.0)
    assert other != requests


def test_poisson_tenant_weights_and_slo():
    requests = PoissonArrivals(200.0, TENANTS, seed=9).generate(10.0)
    by_tenant = {"a": 0, "b": 0}
    for request in requests:
        by_tenant[request.tenant] += 1
        expected = 0.5 if request.tenant == "a" else 0.25
        assert request.slo_s == expected
        assert request.deadline_s == pytest.approx(
            request.arrival_s + expected)
    # Tenant a has twice the weight: expect roughly a 2:1 split.
    assert by_tenant["a"] > 1.5 * by_tenant["b"]


def test_poisson_workload_pool_is_validated():
    with pytest.raises(KeyError):
        PoissonArrivals(10.0, TENANTS, workloads=("NOSUCH",))
    with pytest.raises(ValueError):
        PoissonArrivals(0.0, TENANTS)
    with pytest.raises(ValueError):
        PoissonArrivals(10.0, ())


def test_mmpp_bursts_raise_the_mean_rate():
    base = 50.0
    process = MMPPArrivals(base, TENANTS, seed=4, burst_factor=6.0,
                           normal_dwell_s=1.0, burst_dwell_s=0.5)
    requests = process.generate(30.0)
    realized = len(requests) / 30.0
    assert realized > base * 1.3          # bursts add traffic...
    assert realized < process.mean_rate_rps() * 1.5   # ...but sanely
    assert requests == MMPPArrivals(
        base, TENANTS, seed=4, burst_factor=6.0, normal_dwell_s=1.0,
        burst_dwell_s=0.5).generate(30.0)


def test_diurnal_ramp_concentrates_load_mid_period():
    process = DiurnalArrivals(200.0, TENANTS, seed=8, period_s=10.0,
                              floor_fraction=0.1)
    requests = process.generate(10.0)
    edge = [r for r in requests if r.arrival_s < 2.0 or r.arrival_s > 8.0]
    middle = [r for r in requests if 3.0 < r.arrival_s < 7.0]
    assert len(middle) > 2 * len(edge)
    assert process.rate_at(5.0) == pytest.approx(200.0)
    assert process.rate_at(0.0) == pytest.approx(20.0)


def test_trace_replay_and_file_roundtrip(tmp_path):
    events = synthetic_trace(5.0, 40.0, tenants=("a", "b"),
                             workloads=("ATAX", "MVT"), seed=2)
    assert events == synthetic_trace(5.0, 40.0, tenants=("a", "b"),
                                     workloads=("ATAX", "MVT"), seed=2)
    path = tmp_path / "trace.jsonl"
    write_trace(path, events)
    assert load_trace(path) == events

    replay = TraceArrivals.from_file(path, TENANTS)
    requests = replay.generate(5.0)
    assert len(requests) == len(events)
    assert [r.arrival_s for r in requests] == [e[0] for e in events]
    # The horizon truncates the replay.
    assert len(replay.generate(2.5)) == len(
        [e for e in events if e[0] < 2.5])


def test_trace_rejects_unknown_tenant():
    with pytest.raises(ValueError):
        TraceArrivals([(0.5, "stranger", "ATAX")], TENANTS)
    with pytest.raises(ValueError):
        TraceArrivals([(-1.0, "a", "ATAX")], TENANTS)
