"""Tests for the experiment orchestrator: registry, cache, parallel runner."""

import json

import pytest

from repro.eval import (
    ExperimentOrchestrator,
    ExperimentSpec,
    ResultCache,
    WorkloadSpec,
    default_orchestrator,
    fig10a_homogeneous_throughput,
    fig11_latency,
    set_default_orchestrator,
)
from repro.platform import PlatformConfig

SCALE = 0.02


def _spec(system="IntraO3", name="ATAX", kind="homogeneous", **overrides):
    kwargs = {"system": system, "instances": 2, "input_scale": SCALE}
    kwargs.update(overrides)
    return ExperimentSpec(workload=WorkloadSpec(kind, name),
                          config=PlatformConfig(**kwargs))


# --------------------------------------------------------------------------- #
# WorkloadSpec                                                                 #
# --------------------------------------------------------------------------- #
def test_workload_spec_rejects_unknown_kind():
    with pytest.raises(ValueError):
        WorkloadSpec("imaginary", "ATAX")


def test_workload_spec_builds_each_kind():
    config = PlatformConfig(instances=2, input_scale=SCALE)
    assert len(WorkloadSpec("homogeneous", "ATAX").build(config)) == 2
    mix = WorkloadSpec("heterogeneous", "MX1").build(config)
    assert len(mix) > 2   # several applications x 2 instances each
    assert len(WorkloadSpec("realworld", "bfs").build(config)) == 2


def test_workload_spec_roundtrip():
    spec = WorkloadSpec("realworld", "wc")
    assert WorkloadSpec.from_dict(spec.to_dict()) == spec


# --------------------------------------------------------------------------- #
# ExperimentSpec keys                                                          #
# --------------------------------------------------------------------------- #
def test_experiment_key_structure_and_stability():
    spec = _spec()
    key = spec.key
    assert key.system == "IntraO3"
    assert key.workload == "ATAX"
    assert key == _spec().key
    assert key != _spec(system="InterSt").key
    assert key != _spec(input_scale=0.04).key
    # Same workload name, different kind: the hash keeps them apart.
    assert _spec(name="ATAX").key != \
        ExperimentSpec(WorkloadSpec("realworld", "ATAX"),
                       _spec().config).key


# --------------------------------------------------------------------------- #
# ResultCache                                                                  #
# --------------------------------------------------------------------------- #
def test_result_cache_disk_roundtrip(tmp_path):
    spec = _spec()
    report = spec.execute()
    cache = ResultCache(tmp_path)
    cache.put(spec.key, report, spec)
    # A fresh cache instance must hydrate the report from disk.
    fresh = ResultCache(tmp_path)
    restored = fresh.get(spec.key)
    assert restored is not None
    assert restored.to_dict() == report.to_dict()
    assert fresh.stats["hits"] == 1


def test_result_cache_survives_corrupt_entries(tmp_path):
    spec = _spec()
    cache = ResultCache(tmp_path)
    cache.put(spec.key, spec.execute(), spec)
    for path in tmp_path.glob("*.json"):
        path.write_text("{not json")
    fresh = ResultCache(tmp_path)
    assert fresh.get(spec.key) is None   # miss, not a crash


def test_result_cache_clear_spares_unrelated_files(tmp_path):
    """clear() only deletes files matching the cache's own naming scheme."""
    spec = _spec()
    cache = ResultCache(tmp_path)
    cache.put(spec.key, spec.execute(), spec)
    bystander = tmp_path / "results__final__v2.json"
    bystander.write_text("{}")
    cache.clear()
    assert bystander.exists()
    assert len(cache) == 0
    assert ResultCache(tmp_path).get(spec.key) is None


def test_result_cache_memory_only():
    cache = ResultCache(None)
    spec = _spec()
    assert cache.get(spec.key) is None
    cache.put(spec.key, spec.execute())
    assert cache.get(spec.key) is not None
    assert len(cache) == 1


# --------------------------------------------------------------------------- #
# Orchestrator: caching                                                        #
# --------------------------------------------------------------------------- #
def test_second_run_of_experiment_set_is_served_from_cache(tmp_path):
    """Acceptance: Fig. 10 + Fig. 11 set twice -> second run all cache hits."""
    workloads = ("ATAX", "MVT")
    systems = ("SIMD", "InterDy", "IntraO3")

    def experiment_set(orch):
        fig10 = fig10a_homogeneous_throughput(
            workloads=workloads, systems=systems, instances=2,
            input_scale=SCALE, orchestrator=orch)
        fig11 = fig11_latency(
            workloads=workloads, systems=systems, input_scale=SCALE,
            orchestrator=orch)
        return fig10, fig11

    first_orch = ExperimentOrchestrator(cache_dir=tmp_path)
    first = experiment_set(first_orch)
    assert first_orch.simulations_run > 0

    second_orch = ExperimentOrchestrator(cache_dir=tmp_path)
    second = experiment_set(second_orch)
    assert second_orch.simulations_run == 0          # nothing re-simulated
    assert second_orch.cache.hits > 0
    assert second == first                           # identical figure data


def test_fig11_reuses_fig10_simulations_within_one_orchestrator():
    """fig10 and fig11 share (system, workload, config) runs via the cache."""
    orch = ExperimentOrchestrator()
    fig10a_homogeneous_throughput(workloads=("ATAX",), systems=("SIMD",),
                                  instances=2, input_scale=SCALE,
                                  orchestrator=orch)
    runs_after_fig10 = orch.simulations_run
    # fig11 needs the same (SIMD, ATAX) run with identical sizing...
    fig11_latency(workloads=("ATAX",), systems=("SIMD",), input_scale=SCALE,
                  orchestrator=orch)
    # ...but fig11's homogeneous default is 6 instances vs. our explicit 2,
    # so this is a different config hash and must re-run.
    assert orch.simulations_run == runs_after_fig10 + 1
    # Re-invoking fig10 exactly as before is free.
    fig10a_homogeneous_throughput(workloads=("ATAX",), systems=("SIMD",),
                                  instances=2, input_scale=SCALE,
                                  orchestrator=orch)
    assert orch.simulations_run == runs_after_fig10 + 1


def test_default_instances_share_key_with_explicit_paper_default():
    """instances=None and the explicit paper default are the same simulation."""
    implicit = _spec(instances=None)
    explicit = _spec(instances=6)     # homogeneous paper default
    assert implicit.key == explicit.key
    hetero_implicit = _spec(kind="heterogeneous", name="MX1", instances=None)
    hetero_explicit = _spec(kind="heterogeneous", name="MX1", instances=4)
    assert hetero_implicit.key == hetero_explicit.key
    # A non-default count is still a distinct experiment.
    assert _spec(instances=2).key != explicit.key


def test_run_deduplicates_identical_specs():
    orch = ExperimentOrchestrator()
    results = orch.run([_spec(), _spec()])
    assert len(results) == 1
    assert orch.simulations_run == 1


def test_registry_records_and_resolves_experiments():
    orch = ExperimentOrchestrator()
    specs = [_spec(system="SIMD"), _spec(system="IntraO3")]
    orch.run(specs)
    seen = orch.experiments()
    assert [s.key for s in seen] == [s.key for s in specs]
    assert orch.spec_for(specs[0].key).config.system == "SIMD"
    assert orch.spec_for(_spec(system="InterSt").key) is None


def test_from_env_rejects_non_integer_parallel(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "auto")
    with pytest.raises(ValueError, match="REPRO_PARALLEL"):
        ExperimentOrchestrator.from_env()


def test_from_env_rejects_negative_parallel(monkeypatch):
    """A negative count is a config error, not a silent one-worker clamp."""
    monkeypatch.setenv("REPRO_PARALLEL", "-8")
    with pytest.raises(ValueError, match="REPRO_PARALLEL"):
        ExperimentOrchestrator.from_env()


# --------------------------------------------------------------------------- #
# Orchestrator: parallel execution                                             #
# --------------------------------------------------------------------------- #
def test_parallel_sweep_matches_serial_results():
    """Acceptance: parallel sweep over >= 4 configs == serial results."""
    systems = ("SIMD", "InterSt", "InterDy", "IntraO3")
    make = lambda: [_spec(system=s) for s in systems]  # noqa: E731

    serial = ExperimentOrchestrator(workers=1).run(make())
    parallel_orch = ExperimentOrchestrator(workers=4)
    parallel = parallel_orch.run(make(), parallel=True)

    assert set(serial) == set(parallel) and len(serial) == 4
    for key in serial:
        assert serial[key].to_dict() == parallel[key].to_dict()


def test_parallel_results_are_cached_like_serial(tmp_path):
    orch = ExperimentOrchestrator(cache_dir=tmp_path, workers=4)
    orch.run([_spec(system=s) for s in ("SIMD", "InterSt", "InterDy",
                                        "IntraO3")])
    assert len(list(tmp_path.glob("*.json"))) == 4
    again = ExperimentOrchestrator(cache_dir=tmp_path, workers=4)
    again.run([_spec(system=s) for s in ("SIMD", "InterSt", "InterDy",
                                         "IntraO3")])
    assert again.simulations_run == 0


def test_failed_experiment_does_not_discard_sibling_results(tmp_path):
    """One bad spec raises, but completed siblings are cached first."""
    good = [_spec(system=s) for s in ("SIMD", "IntraO3")]
    bad = _spec(instances=0)   # zero instances -> workload builder raises
    orch = ExperimentOrchestrator(cache_dir=tmp_path)
    with pytest.raises(ValueError):
        orch.run(good + [bad])
    # Both successful simulations were persisted before the error surfaced.
    assert len(list(tmp_path.glob("*.json"))) == 2
    again = ExperimentOrchestrator(cache_dir=tmp_path)
    again.run(good)
    assert again.simulations_run == 0


def test_wrong_shaped_cache_entry_is_a_miss(tmp_path):
    spec = _spec()
    cache = ResultCache(tmp_path)
    cache.put(spec.key, spec.execute(), spec)
    for path in tmp_path.glob("*.json"):
        path.write_text(json.dumps({"report": {"system": "SIMD",
                                               "energy": None}}))
    fresh = ResultCache(tmp_path)
    assert fresh.get(spec.key) is None


def test_compare_bundles_reports_by_system():
    orch = ExperimentOrchestrator()
    comparison = orch.compare(WorkloadSpec("homogeneous", "ATAX"),
                              ("SIMD", "IntraO3"),
                              PlatformConfig(instances=2, input_scale=SCALE))
    assert set(comparison.reports) == {"SIMD", "IntraO3"}
    assert comparison.reports["IntraO3"].system == "IntraO3"
    assert comparison.throughput("IntraO3") > comparison.throughput("SIMD")


def test_workers_must_be_positive():
    with pytest.raises(ValueError):
        ExperimentOrchestrator(workers=0)


def test_parallel_request_respects_worker_capacity(monkeypatch):
    """workers=1 is a hard bound: parallel=True must not spawn a pool."""
    import multiprocessing

    def forbidden(*args, **kwargs):
        raise AssertionError("a workers=1 orchestrator must stay serial")

    monkeypatch.setattr(multiprocessing, "get_context", forbidden)
    orch = ExperimentOrchestrator(workers=1)
    results = orch.run([_spec(system=s) for s in ("SIMD", "IntraO3")],
                       parallel=True)
    assert len(results) == 2


def test_cache_key_includes_revision(monkeypatch):
    from repro.eval import orchestrator as orch_mod
    before = _spec().key
    monkeypatch.setattr(orch_mod, "CACHE_REVISION", orch_mod.CACHE_REVISION + 1)
    assert _spec().key.config_hash != before.config_hash


# --------------------------------------------------------------------------- #
# Default orchestrator                                                         #
# --------------------------------------------------------------------------- #
def test_default_orchestrator_env_configuration(tmp_path, monkeypatch):
    set_default_orchestrator(None)
    try:
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_PARALLEL", "3")
        orch = default_orchestrator()
        assert orch.cache.cache_dir == tmp_path / "cache"
        assert orch.workers == 3
        assert default_orchestrator() is orch   # process-wide singleton
    finally:
        set_default_orchestrator(None)


def test_cache_files_record_experiment_metadata(tmp_path):
    orch = ExperimentOrchestrator(cache_dir=tmp_path)
    spec = _spec()
    orch.run([spec])
    (path,) = tmp_path.glob("*.json")
    payload = json.loads(path.read_text())
    assert payload["workload"] == {"kind": "homogeneous", "name": "ATAX"}
    assert payload["config"]["system"] == "IntraO3"
    assert payload["key"] == list(spec.key)


# --------------------------------------------------------------------------- #
# Orchestrator: persistent worker pool                                         #
# --------------------------------------------------------------------------- #
def test_persistent_pool_survives_across_runs():
    """A sweep's many run() batches share one pool launch."""
    with ExperimentOrchestrator(workers=2) as orch:
        orch.run([_spec(system=s) for s in ("SIMD", "InterSt")])
        assert orch.pool_launches == 1
        orch.run([_spec(system=s) for s in ("InterDy", "IntraO3")])
        assert orch.pool_launches == 1          # reused, not relaunched
        assert orch.simulations_run == 4
    assert orch._pool is None                   # context exit closed it


def test_persistent_pool_matches_fresh_pool_and_serial_results():
    """Worker reuse must not leak state between batches: the reports from
    a reused pool, a pool-per-run orchestrator and the serial path are
    identical."""
    systems = ("SIMD", "InterSt", "InterDy", "IntraO3")
    make = lambda: [_spec(system=s) for s in systems]  # noqa: E731

    serial = ExperimentOrchestrator(workers=1).run(make())
    with ExperimentOrchestrator(workers=2) as persistent_orch:
        # Two batches through the same warm pool: any state carried over
        # from batch one would corrupt batch two.
        first = persistent_orch.run(make()[:2])
        second = persistent_orch.run(make()[2:])
        persistent = {**first, **second}
    fresh_orch = ExperimentOrchestrator(workers=2, persistent_workers=False)
    fresh = fresh_orch.run(make())

    assert set(serial) == set(persistent) == set(fresh)
    for key in serial:
        assert serial[key].to_dict() == persistent[key].to_dict()
        assert serial[key].to_dict() == fresh[key].to_dict()
    assert fresh_orch.pool_launches == 0        # legacy path: no pool kept


def test_close_is_idempotent_and_next_run_relaunches():
    orch = ExperimentOrchestrator(workers=2)
    orch.run([_spec(system=s) for s in ("SIMD", "InterSt")])
    assert orch.pool_launches == 1
    orch.close()
    orch.close()                                # second close is a no-op
    assert orch._pool is None
    orch.run([_spec(system=s) for s in ("InterDy", "IntraO3")])
    assert orch.pool_launches == 2              # fresh pool after close
    orch.close()


def test_broken_pool_is_torn_down_and_replaced():
    """A map-machinery failure discards the pool instead of reusing it."""
    orch = ExperimentOrchestrator(workers=2)
    pool = orch._ensure_pool()

    def exploding_map(*args, **kwargs):
        raise RuntimeError("worker pipe collapsed")

    pool.map = exploding_map
    with pytest.raises(RuntimeError, match="worker pipe collapsed"):
        orch.run([_spec(system=s) for s in ("SIMD", "InterSt")])
    assert orch._pool is None                   # clean shutdown on failure
    # The next run launches a replacement pool and completes normally.
    results = orch.run([_spec(system=s) for s in ("SIMD", "InterSt")])
    assert len(results) == 2
    assert orch.pool_launches == 2
    orch.close()


def test_serial_orchestrator_never_launches_a_pool():
    orch = ExperimentOrchestrator(workers=1)
    orch.run([_spec(system=s) for s in ("SIMD", "IntraO3")])
    assert orch.pool_launches == 0
    assert orch._pool is None
