"""Eval-layer tests: knee edge cases and orchestrated cluster sweeps."""

import pytest

from repro.eval import (
    ClusterExperimentSpec,
    ElasticComparison,
    ExperimentOrchestrator,
    FleetOutcome,
    SaturationPoint,
    elastic_sweep,
    find_knee,
    format_elastic,
    format_scaling_sweep,
    saturation_sweep,
    scaling_efficiency,
    scaling_sweep,
)
from repro.cluster import ClusterReport
from repro.platform import ClusterConfig, PlatformConfig
from repro.serve import ServingScenario, TenantSpec

SCALE = 0.01

SCENARIO = ServingScenario(
    process="poisson", duration_s=0.4, seed=13,
    tenants=(TenantSpec("a", 1.0, 0.25), TenantSpec("b", 1.0, 0.25)),
    max_queue_depth=16)

DEVICE = PlatformConfig(system="IntraO3", input_scale=SCALE)


def point(rps, p99):
    return SaturationPoint(
        offered_rps=rps, actual_offered_rps=rps, goodput_rps=rps,
        admitted=10, rejected=0, completed=10, slo_violations=0,
        p50_s=p99, p95_s=p99, p99_s=p99)


# --------------------------------------------------------------------------- #
# find_knee / saturation sweep edge cases                                      #
# --------------------------------------------------------------------------- #
def test_find_knee_empty_sweep_returns_sentinel():
    assert find_knee([], slo_s=0.25) is None


def test_find_knee_all_violating_returns_sentinel():
    points = [point(20.0, 0.9), point(40.0, 1.5)]
    assert find_knee(points, slo_s=0.25) is None


def test_find_knee_simple_monotone_sweep():
    points = [point(20.0, 0.05), point(40.0, 0.1), point(80.0, 0.6)]
    assert find_knee(points, slo_s=0.25) == 40.0


def test_find_knee_ignores_noisy_post_saturation_dip():
    # A noisy seed makes p99 dip back under the SLO at 80 rps after the
    # sweep already violated at 40: the knee must stay at 20, not jump
    # to the post-saturation outlier.
    points = [point(20.0, 0.05), point(40.0, 0.6), point(80.0, 0.2)]
    assert find_knee(points, slo_s=0.25) == 20.0


def test_find_knee_treats_missing_latency_as_violation():
    # No completions at 40 rps (everything rejected): no latency data
    # cannot certify the SLO, so the knee stops before it.
    points = [point(20.0, 0.05), point(40.0, None), point(80.0, 0.05)]
    assert find_knee(points, slo_s=0.25) == 20.0


def test_find_knee_unsorted_input():
    points = [point(80.0, 0.6), point(20.0, 0.05), point(40.0, 0.1)]
    assert find_knee(points, slo_s=0.25) == 40.0


def test_saturation_sweep_empty_rates_returns_empty_curves():
    curves = saturation_sweep((), ("SIMD", "InterDy"))
    assert curves == {"SIMD": [], "InterDy": []}


def test_scaling_sweep_empty_counts_returns_empty():
    assert scaling_sweep((), 100.0) == []
    assert scaling_efficiency([]) == []


# --------------------------------------------------------------------------- #
# Orchestrated cluster sweeps                                                  #
# --------------------------------------------------------------------------- #
def test_cluster_spec_key_is_stable_and_cacheable(tmp_path):
    spec = ClusterExperimentSpec(
        scenario=SCENARIO.with_overrides(offered_rps=60.0),
        cluster=ClusterConfig.homogeneous(2, DEVICE))
    assert spec.key == spec.key
    assert spec.key.system == "cluster-2xIntraO3"
    orch = ExperimentOrchestrator(cache_dir=tmp_path)
    report = orch.run_one(spec)
    assert isinstance(report, ClusterReport)
    assert orch.simulations_run == 1
    # A cold orchestrator re-serves the run from the on-disk cache, and
    # the cached report round-trips to the same bytes.
    reload = ExperimentOrchestrator(cache_dir=tmp_path)
    again = reload.run_one(spec)
    assert reload.simulations_run == 0
    assert again.to_dict() == report.to_dict()


def test_scaling_sweep_parallel_equals_serial():
    counts = (1, 2)
    serial = scaling_sweep(
        counts, 240.0, scenario=SCENARIO, device_config=DEVICE,
        orchestrator=ExperimentOrchestrator(workers=1))
    parallel = scaling_sweep(
        counts, 240.0, scenario=SCENARIO, device_config=DEVICE,
        orchestrator=ExperimentOrchestrator(workers=2), parallel=True)
    assert [vars(p) for p in serial] == [vars(p) for p in parallel]
    assert [p.device_count for p in serial] == list(counts)
    text = format_scaling_sweep(serial, slo_s=0.25)
    assert "devices" in text and "speedup" in text
    print("\n" + text)


def test_scaling_efficiency_zero_base_is_inf_sentinel():
    class P:
        def __init__(self, n, g):
            self.device_count = n
            self.goodput_rps = g
    factors = scaling_efficiency([P(1, 0.0), P(2, 10.0)])
    assert factors[0] == 1.0
    assert factors[1] == float("inf")


def test_format_scaling_sweep_renders_inf_speedup_as_na():
    # A zero-goodput reference point makes every speedup factor the inf
    # sentinel; the table must say "n/a", not print "inf".
    class P:
        def __init__(self, n, g):
            self.device_count = n
            self.offered_rps = 100.0
            self.goodput_rps = g
            self.admitted = 0 if g == 0.0 else 10
            self.rejected = 10
            self.slo_violations = 0
            self.p50_s = None
            self.p95_s = None
            self.p99_s = None
            self.energy_j = 1.0
            self.reroutes = 0
    text = format_scaling_sweep([P(1, 0.0), P(2, 10.0)])
    assert "n/a" in text
    assert "inf" not in text


# --------------------------------------------------------------------------- #
# Elastic fleet comparison                                                     #
# --------------------------------------------------------------------------- #
def outcome(mode, device_seconds, violations=0):
    return FleetOutcome(
        mode=mode, device_seconds=device_seconds, peak_devices=4,
        low_devices=1 if mode == "elastic" else 4,
        scale_events=6 if mode == "elastic" else 0, offered=100,
        admitted=90, completed=90, dropped=0, slo_violations=violations,
        goodput_rps=200.0, p99_s=0.1, energy_j=5.0)


def test_elastic_comparison_math_and_rendering():
    comparison = ElasticComparison(
        scenario="diurnal",
        elastic=outcome("elastic", 6.0),
        static=outcome("static", 12.0, violations=9))
    assert comparison.device_seconds_saved_pct == pytest.approx(50.0)
    # Elastic is fully compliant; static lost 10% of completions.
    assert comparison.compliance_gap == pytest.approx(0.1)
    text = format_elastic([comparison])
    assert "diurnal" in text and "elastic" in text and "static" in text
    assert "saved 50.0% device-seconds" in text


def test_elastic_sweep_rejects_unknown_scenarios():
    with pytest.raises(ValueError, match="unknown elastic scenario"):
        elastic_sweep(scenarios=("diurnal", "weekly"))
