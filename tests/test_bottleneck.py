"""Trace-driven bottleneck breakdown: stage math, reconciliation, rendering."""

from repro.cluster import ClusterSession
from repro.eval import STAGES, bottleneck_breakdown, format_bottleneck
from repro.obs import ObsConfig, Tracer
from repro.platform import ClusterConfig, FaultSpec, PlatformConfig
from repro.serve import ServingScenario, ServingSession, TenantSpec

TENANTS = (TenantSpec("a", 1.0, 0.25), TenantSpec("b", 1.0, 0.25))


def span(t, phase, rid, tenant="a", device=0, aux=None):
    return (t, phase, rid, tenant, device, aux)


# --------------------------------------------------------------------------- #
# Stage arithmetic on synthetic traces                                         #
# --------------------------------------------------------------------------- #
def test_simple_request_splits_queue_and_service():
    trace = [span(0.0, "arrival", 1), span(0.0, "admit", 1),
             span(1.0, "dispatch", 1), span(3.0, "complete", 1)]
    stats = bottleneck_breakdown(trace)["a"]
    assert stats.completed == 1
    assert stats.totals == {"queue": 1.0, "reroute": 0.0, "service": 2.0}
    assert stats.total_s == 3.0
    assert stats.dominant == "service"
    assert stats.share("service") == 2.0 / 3.0


def test_evicted_request_charges_the_reroute_stage():
    # arrival 0, first dispatch 1, evicted 2, re-dispatched 5, done 6:
    # queue runs to the eviction, reroute to the *last* dispatch.
    trace = [span(0.0, "arrival", 7), span(1.0, "dispatch", 7),
             span(2.0, "evict", 7), span(5.0, "dispatch", 7),
             span(6.0, "complete", 7)]
    stats = bottleneck_breakdown(trace)["a"]
    assert stats.totals == {"queue": 2.0, "reroute": 3.0, "service": 1.0}
    assert stats.dominant == "reroute"


def test_incomplete_and_screen_events_are_skipped():
    trace = [
        # No complete span: truncated by ring wraparound, must not count.
        span(0.0, "arrival", 1), span(1.0, "dispatch", 1),
        # Screen events carry kernel ids in the request slot: ignored.
        span(0.5, "screen", 1, "ATAX", 0, (2, 0.4)),
        # Rejected request: never dispatched, never counted.
        span(0.0, "arrival", 2), span(0.0, "reject", 2),
    ]
    stats = bottleneck_breakdown(trace)
    assert stats["__all__"].completed == 0
    assert stats["__all__"].dominant is None


def test_aggregate_sums_across_tenants():
    trace = [span(0.0, "arrival", 1, "a"), span(1.0, "dispatch", 1, "a"),
             span(2.0, "complete", 1, "a"),
             span(0.0, "arrival", 2, "b"), span(3.0, "dispatch", 2, "b"),
             span(4.0, "complete", 2, "b")]
    stats = bottleneck_breakdown(trace)
    assert stats["a"].completed == 1 and stats["b"].completed == 1
    assert stats["__all__"].completed == 2
    assert stats["__all__"].totals["queue"] == 4.0
    assert stats["__all__"].totals["service"] == 2.0


def test_dominant_tie_breaks_toward_the_earlier_stage():
    trace = [span(0.0, "arrival", 1), span(1.0, "dispatch", 1),
             span(2.0, "complete", 1)]
    stats = bottleneck_breakdown(trace)["a"]
    assert stats.totals["queue"] == stats.totals["service"] == 1.0
    assert stats.dominant == "queue"


def test_accepts_tracer_or_bare_event_iterable():
    tracer = Tracer(capacity=16)
    events = [span(0.0, "arrival", 1), span(1.0, "dispatch", 1),
              span(2.0, "complete", 1)]
    for event in events:
        tracer.span(*event)
    assert bottleneck_breakdown(tracer) == bottleneck_breakdown(events)


# --------------------------------------------------------------------------- #
# Reconciliation against real runs                                             #
# --------------------------------------------------------------------------- #
def test_serving_stage_sums_reconcile_with_end_to_end_latency():
    scenario = ServingScenario(
        process="poisson", offered_rps=60.0, duration_s=0.8, seed=3,
        tenants=TENANTS, max_queue_depth=24)
    session = ServingSession(scenario,
                             PlatformConfig(system="IntraO3",
                                            input_scale=0.01),
                             obs=ObsConfig())
    report = session.run()
    stats = bottleneck_breakdown(session.tracer)
    assert stats["__all__"].completed == report.completed

    # The three stages partition each request's latency exactly: fold
    # arrival/complete times straight from the trace and compare sums.
    end_to_end = {}
    for t, phase, rid, tenant, device, aux in session.tracer:
        if phase == "arrival":
            end_to_end[rid] = -t
        elif phase == "complete":
            end_to_end[rid] += t
    total = sum(v for v in end_to_end.values() if v >= 0)
    assert abs(stats["__all__"].total_s - total) < 1e-9
    per_tenant = sum(stats[name].total_s for name in stats
                     if name != "__all__")
    assert abs(per_tenant - stats["__all__"].total_s) < 1e-9


def test_cluster_fault_run_charges_reroute_time():
    scenario = ServingScenario(
        process="poisson", offered_rps=120.0, duration_s=0.8, seed=3,
        tenants=TENANTS, max_queue_depth=24)
    cluster = ClusterConfig.homogeneous(
        2, PlatformConfig(system="IntraO3", input_scale=0.1),
        faults=(FaultSpec(0.4, 1, "failed"),))
    session = ClusterSession(scenario, cluster, obs=ObsConfig())
    report = session.run()
    assert report.reroutes > 0
    stats = bottleneck_breakdown(session.tracer)
    assert stats["__all__"].totals["reroute"] > 0.0
    for stage in STAGES:
        assert stats["__all__"].totals[stage] >= 0.0


# --------------------------------------------------------------------------- #
# Rendering                                                                    #
# --------------------------------------------------------------------------- #
def test_format_bottleneck_names_the_dominant_stage():
    trace = [span(0.0, "arrival", 1, "web"), span(1.0, "dispatch", 1, "web"),
             span(5.0, "complete", 1, "web")]
    text = format_bottleneck(bottleneck_breakdown(trace))
    for header in ("tenant", "completed", "queue_ms", "reroute_ms",
                   "service_ms", "total_ms", "dominant"):
        assert header in text
    assert "web" in text
    assert "Dominant stage:" in text
    assert "service" in text
    # The aggregate row closes the table.
    lines = [line for line in text.splitlines() if "__all__" in line]
    assert lines, "aggregate row missing"


def test_format_bottleneck_empty_breakdown():
    text = format_bottleneck(bottleneck_breakdown([]))
    assert "Bottleneck breakdown" in text
    assert "Dominant stage:" not in text
