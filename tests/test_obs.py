"""Observability layer: zero-cost when off, deterministic when on.

The two contract halves of ``repro.obs`` (ARCHITECTURE.md,
"Observability"):

* **disabled** — a run without an :class:`ObsConfig` produces reports
  byte-identical to an instrumented run minus the ``metrics`` payload
  (tracing and sampling only *read* simulation state);
* **enabled** — the same seed produces the same spans, the same
  Chrome ``trace_event`` export bytes, and span counts that reconcile
  exactly with the report's conserved request counters.
"""

import json

import pytest

from repro.cluster import ClusterSession
from repro.eval import (
    ClusterExperimentSpec,
    SaturationPoint,
    ServingExperimentSpec,
    format_saturation_sweep,
)
from repro.eval.serving import describe_fastforward
from repro.cluster.parallel import ParallelConfig
from repro.obs import (
    MetricsBus,
    MetricsTimeline,
    ObsConfig,
    Tracer,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.platform import ClusterConfig, FaultSpec, PlatformConfig
from repro.serve import (
    ServingReport,
    ServingScenario,
    ServingSession,
    TenantSpec,
)
from repro.serve.fastforward import FastForwardServingSession

SCALE = 0.01
TENANTS = (TenantSpec("a", 1.0, 0.25), TenantSpec("b", 1.0, 0.25))


def scenario(**overrides):
    kwargs = {"process": "poisson", "offered_rps": 60.0, "duration_s": 0.8,
              "seed": 3, "tenants": TENANTS, "max_queue_depth": 24}
    kwargs.update(overrides)
    return ServingScenario(**kwargs)


def config(**overrides):
    kwargs = {"system": "IntraO3", "input_scale": SCALE}
    kwargs.update(overrides)
    return PlatformConfig(**kwargs)


def serving_session(obs=None, **scenario_overrides):
    session = ServingSession(scenario(**scenario_overrides), config(),
                             obs=obs)
    report = session.run()
    return session, report


#: Cluster fault fixture: service heavy enough (input_scale) that the
#: failing device still holds queued backlog at fault time, so the trace
#: exercises evict/reroute, not just the happy path.
FAULT_SCENARIO_KW = {"offered_rps": 120.0, "duration_s": 0.8}


def faulty_cluster(devices=2):
    return ClusterConfig.homogeneous(
        devices, config(input_scale=0.1),
        faults=(FaultSpec(0.4, devices - 1, "failed"),))


# --------------------------------------------------------------------------- #
# Zero cost when disabled                                                      #
# --------------------------------------------------------------------------- #
def test_obs_run_report_matches_plain_run_minus_metrics():
    _, plain = serving_session(obs=None)
    session, observed = serving_session(obs=ObsConfig())
    observed_dict = observed.to_dict()
    assert observed_dict.pop("metrics") is not None
    assert observed_dict == plain.to_dict()
    assert "metrics" not in plain.to_dict()
    assert session.tracer is not None and session.metrics is not None


def test_fully_disabled_obs_config_is_inert():
    obs = ObsConfig(tracing=False, metrics=False)
    assert not obs.enabled
    _, plain = serving_session(obs=None)
    session, report = serving_session(obs=obs)
    assert session.tracer is None and session.metrics is None
    assert report.to_dict() == plain.to_dict()


def test_cluster_obs_run_report_matches_plain_run_minus_metrics():
    base = scenario(**FAULT_SCENARIO_KW)
    plain = ClusterSession(base, faulty_cluster()).run()
    observed = ClusterSession(base, faulty_cluster(),
                              obs=ObsConfig()).run()
    observed_dict = observed.to_dict()
    assert observed_dict.pop("metrics") is not None
    assert observed_dict == plain.to_dict()


# --------------------------------------------------------------------------- #
# Determinism when enabled                                                     #
# --------------------------------------------------------------------------- #
def test_same_seed_trace_is_byte_identical():
    session_a, _ = serving_session(obs=ObsConfig())
    session_b, _ = serving_session(obs=ObsConfig())
    assert list(session_a.tracer) == list(session_b.tracer)

    def dump(session):
        return json.dumps(to_chrome_trace(session.tracer, label="x"),
                          sort_keys=True)

    assert dump(session_a) == dump(session_b)


def test_same_seed_cluster_trace_is_byte_identical():
    runs = []
    for _ in range(2):
        session = ClusterSession(scenario(**FAULT_SCENARIO_KW), faulty_cluster(),
                                 obs=ObsConfig())
        session.run()
        runs.append(json.dumps(to_chrome_trace(session.tracer, label="x"),
                               sort_keys=True))
    assert runs[0] == runs[1]


# --------------------------------------------------------------------------- #
# Span <-> report conservation                                                 #
# --------------------------------------------------------------------------- #
def test_serving_span_counts_reconcile_with_report():
    session, report = serving_session(obs=ObsConfig())
    counts = session.tracer.phase_counts()
    assert session.tracer.dropped == 0
    assert counts.get("arrival", 0) == report.offered
    assert counts.get("admit", 0) == report.admitted
    assert counts.get("reject", 0) == report.rejected
    assert counts.get("complete", 0) == report.completed
    assert counts.get("dispatch", 0) >= report.completed
    # Every admitted request entered service exactly as often as the
    # backend accepted a dispatch.
    assert counts.get("service_begin", 0) == counts.get("dispatch", 0)


def test_cluster_span_counts_reconcile_with_report():
    session = ClusterSession(scenario(**FAULT_SCENARIO_KW), faulty_cluster(),
                             obs=ObsConfig())
    report = session.run()
    counts = session.tracer.phase_counts()
    assert counts.get("arrival", 0) == report.offered
    assert counts.get("admit", 0) == report.admitted
    assert counts.get("reject", 0) == report.rejected
    assert counts.get("complete", 0) == report.completed
    # The injected fault moved backlog off the failed device: every
    # eviction pairs with exactly one reroute span, and the pair count
    # is the report's placement counter.
    assert report.reroutes > 0
    assert counts.get("evict", 0) == counts.get("reroute", 0)
    assert counts.get("reroute", 0) >= report.reroutes


# --------------------------------------------------------------------------- #
# Ring buffer accounting                                                       #
# --------------------------------------------------------------------------- #
def test_ring_buffer_drops_oldest_and_counts_losses():
    tracer = Tracer(capacity=4)
    for i in range(10):
        tracer.span(float(i), "arrival", i, "a")
    assert len(tracer) == 4
    assert tracer.recorded == 10
    assert tracer.dropped == 6
    # Oldest events dropped first: the survivors are the newest four.
    assert [event[2] for event in tracer] == [6, 7, 8, 9]


def test_tiny_capacity_run_reports_drops_not_errors():
    session, _ = serving_session(obs=ObsConfig(trace_capacity=16))
    tracer = session.tracer
    assert len(tracer) == 16
    assert tracer.dropped == tracer.recorded - 16 > 0


def test_tracer_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


# --------------------------------------------------------------------------- #
# Metrics bus                                                                  #
# --------------------------------------------------------------------------- #
def test_metrics_timeline_round_trips_through_report():
    session, report = serving_session(obs=ObsConfig())
    assert report.metrics is not None
    rebuilt = MetricsTimeline.from_dict(report.metrics)
    assert rebuilt.series == session.metrics.series
    assert rebuilt.cadence_s == session.metrics.cadence_s
    # And through the report's own serialization.
    clone = ServingReport.from_dict(report.to_dict())
    assert clone.metrics == report.metrics


def test_serving_metrics_cover_the_wired_signal_families():
    session, _ = serving_session(obs=ObsConfig())
    names = session.metrics.names()
    for family in ("queue_depth.a", "queue_depth.b", "queue_depth.total",
                   "admitted_rps", "in_flight", "rolling_p99_s",
                   "lwp_utilization", "energy_w", "latency_window_s"):
        assert any(name.startswith(family) for name in names), (
            f"no series for {family}: {names}")


def test_bus_sample_is_idempotent_per_timestamp():
    bus = MetricsBus(cadence_s=0.5)
    bus.gauge("depth", lambda: 3.0)
    bus.sample(1.0)
    bus.sample(1.0)
    assert bus.timeline.values("depth") == [(1.0, 3.0)]


def test_rate_instrument_first_tick_is_baseline_only():
    total = {"v": 0.0}
    bus = MetricsBus(cadence_s=1.0)
    bus.rate("r", lambda: total["v"])
    bus.sample(0.0)
    assert bus.timeline.values("r") == []
    total["v"] = 10.0
    bus.sample(2.0)
    assert bus.timeline.values("r") == [(2.0, 5.0)]


def test_gauge_none_and_empty_histogram_leave_gaps():
    bus = MetricsBus(cadence_s=1.0)
    bus.gauge("g", lambda: None)
    hist = bus.histogram("h")
    bus.sample(1.0)
    assert bus.timeline.series == {}
    hist.observe(2.0)
    hist.observe(4.0)
    bus.sample(2.0)
    assert bus.timeline.values("h.count") == [(2.0, 2.0)]
    assert bus.timeline.values("h.mean") == [(2.0, 3.0)]


def test_duplicate_instrument_name_rejected():
    bus = MetricsBus(cadence_s=1.0)
    bus.counter("c")
    with pytest.raises(ValueError):
        bus.counter("c")


# --------------------------------------------------------------------------- #
# Chrome trace export                                                          #
# --------------------------------------------------------------------------- #
def test_serving_export_validates_clean():
    session, _ = serving_session(obs=ObsConfig())
    data = to_chrome_trace(session.tracer, label="serving")
    assert validate_chrome_trace(data) == []
    assert data["traceEvents"]


def test_cluster_export_validates_clean():
    session = ClusterSession(scenario(**FAULT_SCENARIO_KW), faulty_cluster(),
                             obs=ObsConfig())
    session.run()
    data = to_chrome_trace(session.tracer, label="cluster")
    assert validate_chrome_trace(data) == []


def test_validator_flags_malformed_traces():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]}) != []


# --------------------------------------------------------------------------- #
# Interplay with fast-forward and experiment caching                           #
# --------------------------------------------------------------------------- #
def test_fastforward_refuses_observed_runs_and_falls_back_exactly():
    obs = ObsConfig()
    ff_report = FastForwardServingSession(scenario(), config(),
                                          obs=obs).run()
    assert ff_report.fastforward == {
        "engaged": False,
        "reason": ("observability (tracing/metrics bus) requires the "
                   "exact engine"),
    }
    # The fallback is the instrumented exact engine: identical to a
    # plain observed session up to the refusal annotation itself.
    _, exact = serving_session(obs=obs)
    ff_dict = ff_report.to_dict()
    assert ff_dict.pop("fastforward") is not None
    assert ff_dict == exact.to_dict()


def test_obs_folds_into_experiment_cache_keys_only_when_set():
    plain_a = ServingExperimentSpec(scenario=scenario(), config=config())
    plain_b = ServingExperimentSpec(scenario=scenario(), config=config())
    observed = ServingExperimentSpec(scenario=scenario(), config=config(),
                                     obs=ObsConfig())
    assert plain_a.key == plain_b.key
    assert observed.key != plain_a.key

    cluster = faulty_cluster()
    plain_c = ClusterExperimentSpec(scenario=scenario(), cluster=cluster)
    observed_c = ClusterExperimentSpec(scenario=scenario(), cluster=cluster,
                                       obs=ObsConfig())
    assert observed_c.key != plain_c.key


def test_cluster_spec_with_obs_forces_the_serial_session():
    # The epoch-parallel runner cannot stitch per-worker tracers; an
    # observed spec must take the serial path even when parallel is set.
    spec = ClusterExperimentSpec(
        scenario=scenario(**FAULT_SCENARIO_KW), cluster=faulty_cluster(),
        parallel=ParallelConfig(), obs=ObsConfig())
    report = spec.execute()
    assert report.metrics is not None
    serial = ClusterSession(scenario(**FAULT_SCENARIO_KW), faulty_cluster(),
                            obs=ObsConfig()).run()
    assert report.to_dict() == serial.to_dict()


# --------------------------------------------------------------------------- #
# Fast-forward provenance in sweep tables                                      #
# --------------------------------------------------------------------------- #
def test_describe_fastforward_summaries():
    assert describe_fastforward(None) is None
    assert describe_fastforward({"engaged": True}) == "engaged"
    assert describe_fastforward(
        {"engaged": False, "reason": "burst detected"}
    ) == "exact (burst detected)"


def _point(rps, fastforward=None):
    return SaturationPoint(
        offered_rps=rps, actual_offered_rps=rps, goodput_rps=rps,
        admitted=10, rejected=0, completed=10, slo_violations=0,
        p50_s=0.01, p95_s=0.02, p99_s=0.03, fastforward=fastforward)


def test_sweep_table_grows_fastforward_column_only_when_annotated():
    bare = format_saturation_sweep({"SIMD": [_point(20.0)]})
    assert "fastforward" not in bare
    annotated = format_saturation_sweep(
        {"SIMD": [_point(20.0, fastforward="engaged"),
                  _point(40.0)]})
    assert "fastforward" in annotated
    assert "engaged" in annotated
