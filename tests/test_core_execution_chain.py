"""Unit tests for the multi-app execution chain (Figure 8)."""

import pytest

from repro.core.execution_chain import MultiAppExecutionChain, ScreenStatus
from repro.core.kernel import build_kernel


def make_kernel(name="k", app_id=0, mblks=2, serial=1, screens=2):
    return build_kernel(name, total_instructions=1000, input_bytes=100,
                        output_bytes=10, microblock_count=mblks,
                        serial_microblocks=serial,
                        screens_per_microblock=screens, app_id=app_id)


def test_chain_groups_kernels_by_app():
    chain = MultiAppExecutionChain()
    chain.add_kernel(make_kernel(app_id=0))
    chain.add_kernel(make_kernel(app_id=1))
    chain.add_kernel(make_kernel(app_id=0))
    assert chain.apps() == [0, 1]
    assert len(chain.chains_for_app(0)) == 2
    assert len(chain.chains_for_app(1)) == 1


def test_ready_screens_limited_to_current_microblock():
    chain = MultiAppExecutionChain()
    kernel = make_kernel(mblks=2, serial=1, screens=3)
    chain.add_kernel(kernel)
    ready = chain.ready_screens()
    # Only microblock 0's three screens are ready; the serial microblock
    # must wait.
    assert len(ready) == 3
    assert all(node.microblock.index == 0 for _c, node, _s in ready)


def test_next_microblock_unlocks_after_previous_completes():
    chain = MultiAppExecutionChain()
    kernel = make_kernel(mblks=2, serial=1, screens=2)
    kernel_chain = chain.add_kernel(kernel)
    first_ready = chain.ready_screens()
    for _chain, _node, screen in first_ready:
        chain.mark_running(screen, lwp_id=0, now=1.0)
        chain.mark_done(kernel_chain, screen, now=2.0)
    second_ready = chain.ready_screens()
    assert len(second_ready) == 1
    assert second_ready[0][1].microblock.serial


def test_completion_sets_latency():
    chain = MultiAppExecutionChain()
    kernel = make_kernel(mblks=1, serial=0, screens=2)
    kernel_chain = chain.add_kernel(kernel, now=1.0)
    for _c, _node, screen in chain.ready_screens():
        chain.mark_running(screen, lwp_id=0, now=2.0)
        chain.mark_done(kernel_chain, screen, now=5.0)
    assert chain.complete
    assert kernel_chain.completed_at == 5.0
    assert kernel_chain.latency == pytest.approx(4.0)
    assert chain.kernel_latencies() == [pytest.approx(4.0)]
    assert chain.completion_times() == [5.0]


def test_mark_running_requires_pending():
    chain = MultiAppExecutionChain()
    chain.add_kernel(make_kernel(mblks=1, serial=0, screens=1))
    _, _, screen = chain.ready_screens()[0]
    chain.mark_running(screen, lwp_id=0, now=0.0)
    with pytest.raises(ValueError):
        chain.mark_running(screen, lwp_id=1, now=0.0)


def test_mark_done_requires_running():
    chain = MultiAppExecutionChain()
    kernel_chain = chain.add_kernel(make_kernel(mblks=1, serial=0, screens=1))
    _, _, screen = chain.ready_screens()[0]
    with pytest.raises(ValueError):
        chain.mark_done(kernel_chain, screen, now=0.0)


def test_claimed_screens_not_listed_as_ready():
    chain = MultiAppExecutionChain()
    chain.add_kernel(make_kernel(mblks=1, serial=0, screens=3))
    ready = chain.ready_screens()
    ready[0][2].claimed = True
    assert len(chain.ready_screens()) == 2


def test_ready_spans_multiple_kernels_and_apps():
    chain = MultiAppExecutionChain()
    chain.add_kernel(make_kernel(app_id=0, mblks=1, serial=0, screens=2))
    chain.add_kernel(make_kernel(app_id=1, mblks=1, serial=0, screens=2))
    ready = chain.ready_screens()
    apps = {c.kernel.app_id for c, _n, _s in ready}
    assert apps == {0, 1}
    assert len(ready) == 4


def test_screen_status_lifecycle():
    chain = MultiAppExecutionChain()
    kernel_chain = chain.add_kernel(make_kernel(mblks=1, serial=0, screens=1))
    _, node, screen = chain.ready_screens()[0]
    assert screen.status is ScreenStatus.PENDING
    chain.mark_running(screen, lwp_id=4, now=1.5)
    assert screen.status is ScreenStatus.RUNNING
    assert screen.lwp_id == 4
    assert screen.started_at == 1.5
    chain.mark_done(kernel_chain, screen, now=2.5)
    assert screen.status is ScreenStatus.DONE
    assert screen.completed_at == 2.5
    assert node.complete
