"""End-to-end serving sessions, reports, and orchestrator integration."""

import pytest

from repro.eval import (
    ExperimentOrchestrator,
    ServingExperimentSpec,
    find_knee,
    format_saturation_sweep,
    saturation_sweep,
)
from repro.platform import PlatformConfig
from repro.serve import (
    ServingReport,
    ServingScenario,
    ServingSession,
    TenantSpec,
    run_serving,
)

SCALE = 0.01
TENANTS = (TenantSpec("a", 1.0, 0.25), TenantSpec("b", 1.0, 0.25))


def scenario(**overrides):
    kwargs = {"process": "poisson", "offered_rps": 60.0, "duration_s": 0.8,
              "seed": 3, "tenants": TENANTS, "max_queue_depth": 24}
    kwargs.update(overrides)
    return ServingScenario(**kwargs)


def config(system="InterDy", **overrides):
    kwargs = {"system": system, "input_scale": SCALE}
    kwargs.update(overrides)
    return PlatformConfig(**kwargs)


# --------------------------------------------------------------------------- #
# Scenario                                                                     #
# --------------------------------------------------------------------------- #
def test_scenario_validation():
    with pytest.raises(ValueError):
        scenario(process="lunar")
    with pytest.raises(ValueError):
        scenario(offered_rps=0.0)
    with pytest.raises(ValueError):
        scenario(duration_s=0.0)
    with pytest.raises(ValueError):
        scenario(tenants=())
    with pytest.raises(ValueError):
        scenario(process="trace")    # trace scenarios need events


def test_scenario_roundtrip_and_label():
    base = scenario(process="mmpp", offered_rps=42.0)
    clone = ServingScenario.from_dict(base.to_dict())
    assert clone == base
    assert clone.tenants == TENANTS
    assert base.label == "serve-mmpp-42rps"
    trace = scenario(process="trace",
                     trace_events=((0.1, "a", "ATAX"), (0.2, "b", "MVT")))
    assert ServingScenario.from_dict(trace.to_dict()) == trace


# --------------------------------------------------------------------------- #
# Sessions                                                                     #
# --------------------------------------------------------------------------- #
def check_report_invariants(report, scen):
    assert report.offered == report.admitted + report.rejected
    assert report.completed == report.admitted   # nothing left in flight
    agg = report.latency
    if report.completed:
        assert agg["p50_s"] <= agg["p95_s"] <= agg["p99_s"] \
            <= agg["p99.9_s"] <= agg["max_s"]
    # Per-tenant accounts partition the aggregate counts.
    for key in ("offered", "admitted", "rejected", "completed",
                "slo_violations"):
        total = sum(stats[key] for stats in report.per_tenant.values())
        assert total == getattr(report, key)
    assert report.goodput_rps == pytest.approx(
        (report.completed - report.slo_violations) / scen.duration_s)


def test_accelerator_session_end_to_end():
    scen = scenario()
    report = ServingSession(scen, config("InterDy")).run()
    assert report.system == "InterDy"
    assert report.workload == scen.label
    assert report.offered > 20
    assert report.rejected == 0
    check_report_invariants(report, scen)
    assert report.energy_j > 0
    assert report.scheduler_stats["screens_executed"] > 0
    # Two tenants were actually exercised.
    assert set(report.per_tenant) == {"a", "b"}
    assert all(stats["completed"] > 0
               for stats in report.per_tenant.values())


def test_baseline_session_end_to_end():
    scen = scenario(offered_rps=30.0)
    report = ServingSession(scen, config("SIMD")).run()
    assert report.system == "SIMD"
    check_report_invariants(report, scen)
    assert report.completed > 0


def test_sessions_are_deterministic():
    scen = scenario()
    first = ServingSession(scen, config("IntraO3")).run()
    second = ServingSession(scen, config("IntraO3")).run()
    assert first.to_dict() == second.to_dict()
    # A different arrival seed produces a different run.
    third = ServingSession(scen.with_overrides(seed=4),
                           config("IntraO3")).run()
    assert third.to_dict() != first.to_dict()


def test_trace_scenario_session():
    events = tuple((0.02 * i, ("a", "b")[i % 2], "ATAX")
                   for i in range(10))
    scen = scenario(process="trace", trace_events=events, duration_s=0.5)
    report = ServingSession(scen, config("InterDy")).run()
    assert report.offered == 10
    assert report.completed == 10


def test_admission_caps_overload_latency():
    # Far beyond the baseline's capacity: with a depth bound the queue
    # (and hence the tail) stays finite and requests are rejected instead.
    scen = scenario(offered_rps=240.0, max_queue_depth=4)
    report = ServingSession(scen, config("SIMD")).run()
    assert report.rejected > 0
    check_report_invariants(report, scen)


def test_run_serving_wrapper():
    scen = scenario(offered_rps=20.0, duration_s=0.4)
    by_system = run_serving(scen, system="InterDy")
    assert by_system.system == "InterDy"
    merged = run_serving(scen, config=config("IntraO3"), system="SIMD")
    assert merged.system == "SIMD"


# --------------------------------------------------------------------------- #
# Report serialization                                                         #
# --------------------------------------------------------------------------- #
def test_serving_report_roundtrip():
    report = ServingSession(scenario(), config("InterDy")).run()
    clone = ServingReport.from_dict(report.to_dict())
    assert clone.to_dict() == report.to_dict()
    assert clone.p99_s == report.p99_s
    assert clone.admission_rate == report.admission_rate


# --------------------------------------------------------------------------- #
# Orchestrator integration                                                     #
# --------------------------------------------------------------------------- #
def test_serving_spec_keys():
    spec = ServingExperimentSpec(scenario=scenario(), config=config())
    key = spec.key
    assert key.system == "InterDy"
    assert key.workload == "serve-poisson-60rps"
    assert key == ServingExperimentSpec(scenario=scenario(),
                                        config=config()).key
    assert key != ServingExperimentSpec(scenario=scenario(seed=9),
                                        config=config()).key
    assert key != ServingExperimentSpec(scenario=scenario(),
                                        config=config("IntraO3")).key


def test_serving_results_roundtrip_through_disk_cache(tmp_path):
    spec = ServingExperimentSpec(scenario=scenario(duration_s=0.5),
                                 config=config())
    first = ExperimentOrchestrator(cache_dir=tmp_path)
    report = first.run_one(spec)
    assert first.simulations_run == 1
    # A fresh orchestrator over the same directory serves from disk.
    second = ExperimentOrchestrator(cache_dir=tmp_path)
    cached = second.run_one(spec)
    assert second.simulations_run == 0
    assert isinstance(cached, ServingReport)
    assert cached.to_dict() == report.to_dict()


def test_serving_and_batch_entries_share_a_cache(tmp_path):
    from repro.eval import ExperimentSpec, WorkloadSpec
    orch = ExperimentOrchestrator(cache_dir=tmp_path)
    serving = ServingExperimentSpec(scenario=scenario(duration_s=0.4),
                                    config=config())
    batch = ExperimentSpec(
        workload=WorkloadSpec("homogeneous", "ATAX"),
        config=PlatformConfig(system="InterDy", instances=2,
                              input_scale=0.02))
    reports = orch.run([serving, batch])
    assert isinstance(reports[serving.key], ServingReport)
    from repro.core.accelerator import ExecutionReport
    assert isinstance(reports[batch.key], ExecutionReport)
    # Both survive a cold reload.
    reload = ExperimentOrchestrator(cache_dir=tmp_path)
    again = reload.run([serving, batch])
    assert reload.simulations_run == 0
    assert again[serving.key].to_dict() == reports[serving.key].to_dict()


def test_saturation_sweep_parallel_equals_serial(tmp_path):
    scen = scenario(duration_s=0.5)
    rates = (30.0, 90.0)
    serial = saturation_sweep(
        rates, ("SIMD", "InterDy"), scenario=scen,
        config=PlatformConfig(input_scale=SCALE),
        orchestrator=ExperimentOrchestrator(workers=1))
    parallel = saturation_sweep(
        rates, ("SIMD", "InterDy"), scenario=scen,
        config=PlatformConfig(input_scale=SCALE),
        orchestrator=ExperimentOrchestrator(workers=2), parallel=True)
    assert serial == parallel
    assert [p.offered_rps for p in serial["InterDy"]] == list(rates)
    print(format_saturation_sweep(serial, slo_s=0.25))


def test_sweep_shows_accelerator_sustaining_more_load():
    scen = scenario(duration_s=0.8)
    rates = (30.0, 120.0)
    curves = saturation_sweep(
        rates, ("SIMD", "InterDy"), scenario=scen,
        config=PlatformConfig(input_scale=SCALE),
        orchestrator=ExperimentOrchestrator())
    slo = 0.25
    accel_knee = find_knee(curves["InterDy"], slo)
    assert accel_knee == 120.0
    simd_knee = find_knee(curves["SIMD"], slo)
    assert simd_knee is None or simd_knee < accel_knee
    accel_at = next(p for p in curves["InterDy"]
                    if p.offered_rps == accel_knee)
    simd_at = next(p for p in curves["SIMD"]
                   if p.offered_rps == accel_knee)
    assert accel_at.goodput_rps > simd_at.goodput_rps
