"""Sustained-write garbage-collection behavior (serving-style churn).

A long run of paced overwrites — the write pattern an online serving
workload produces — must stay inside the overprovisioned region with GC
keeping up in the background, keep wear level spread bounded, and reclaim
correctly under both victim policies.
"""

import pytest

from repro.core.flashvisor import Flashvisor
from repro.core.storengine import Storengine
from repro.flash.backbone import FlashBackbone
from repro.hw.interconnect import Interconnect
from repro.hw.lwp import LWPCluster
from repro.hw.memory import DDR3L, Scratchpad
from repro.hw.power import EnergyAccountant
from repro.sim import Environment


def build_stack(spec, flash_spec, **storengine_kwargs):
    env = Environment()
    energy = EnergyAccountant()
    cluster = LWPCluster(env, spec.lwp, energy)
    ddr = DDR3L(env, spec.memory, energy)
    scratchpad = Scratchpad(env, spec.memory, energy)
    interconnect = Interconnect(env, spec.interconnect)
    backbone = FlashBackbone(env, flash_spec, energy)
    flashvisor = Flashvisor(env, cluster.flashvisor_lwp, backbone, ddr,
                            scratchpad, interconnect.new_queue("fv"), energy)
    storengine = Storengine(env, cluster.storengine_lwp, flashvisor, backbone,
                            energy, **storengine_kwargs)
    return env, flashvisor, storengine, backbone


def sustained_writer(env, flashvisor, geometry, rounds, logical_span,
                     pace_s=2e-4):
    """Paced stream of overwrites across ``logical_span`` logical groups."""
    group_bytes = geometry.page_group_bytes
    words_per_group = group_bytes // 4
    for i in range(rounds):
        logical = i % logical_span
        flashvisor.translate_write(logical * words_per_group, group_bytes)
        yield env.timeout(pace_s)


@pytest.mark.parametrize("victim_policy", ["round_robin", "greedy"])
def test_sustained_writes_stay_within_overprovisioning(
        spec, tiny_flash_spec, victim_policy):
    env, flashvisor, storengine, backbone = build_stack(
        spec, tiny_flash_spec, poll_interval_s=1e-4, journal_interval_s=1e3,
        victim_policy=victim_policy)
    geometry = backbone.geometry
    allocator = flashvisor.allocator
    # Overwrite a quarter of the logical space several device-capacities
    # over: without working GC the allocator would run out of rows.
    logical_span = max(1, geometry.page_groups_total // 4)
    rounds = geometry.page_groups_total * 4
    writer = env.process(sustained_writer(env, flashvisor, geometry, rounds,
                                          logical_span))
    env.run(until=rounds * 2e-4 + 1.0)
    assert writer.triggered and writer.ok, \
        "sustained writes must never hit OutOfSpaceError while GC runs"
    # GC actually ran and returned erased rows to the free pool.
    assert storengine.stats.gc_invocations > 0
    assert storengine.stats.erased_rows > 0
    assert len(allocator.free_rows) > 0
    # The device wrote far more physical groups than its capacity; only
    # reclamation makes that possible.
    assert allocator.groups_written > geometry.page_groups_total


@pytest.mark.parametrize("victim_policy", ["round_robin", "greedy"])
def test_sustained_writes_keep_wear_spread_bounded(
        spec, tiny_flash_spec, victim_policy):
    env, flashvisor, storengine, backbone = build_stack(
        spec, tiny_flash_spec, poll_interval_s=1e-4, journal_interval_s=1e3,
        victim_policy=victim_policy)
    geometry = backbone.geometry
    allocator = flashvisor.allocator
    logical_span = max(1, geometry.page_groups_total // 4)
    rounds = geometry.page_groups_total * 6
    env.process(sustained_writer(env, flashvisor, geometry, rounds,
                                 logical_span))
    env.run(until=rounds * 2e-4 + 1.0)
    mean_erases = (sum(r.erase_count for r in allocator.rows.values())
                   / allocator.total_rows)
    assert mean_erases >= 1.0, "churn must actually cycle the device"
    # Log-structured allocation plus pool-ordered victim selection keeps
    # erase counts close together: the spread must not grow with the
    # number of overwrite cycles.
    assert allocator.wear_spread() <= 3


@pytest.mark.parametrize("victim_policy", ["round_robin", "greedy"])
def test_sustained_writes_preserve_live_mappings(
        spec, tiny_flash_spec, victim_policy):
    env, flashvisor, storengine, backbone = build_stack(
        spec, tiny_flash_spec, poll_interval_s=1e-4, journal_interval_s=1e3,
        victim_policy=victim_policy)
    geometry = backbone.geometry
    group_bytes = geometry.page_group_bytes
    words_per_group = group_bytes // 4
    # Live data parked at the top of the logical space, written once.
    live_base = geometry.page_groups_total // 2
    live_logical = list(range(live_base, live_base + 4))
    flashvisor.translate_write(live_base * words_per_group, 4 * group_bytes)
    # Churn the bottom of the logical space until GC has migrated rows.
    logical_span = max(1, geometry.page_groups_total // 4)
    rounds = geometry.page_groups_total * 4
    env.process(sustained_writer(env, flashvisor, geometry, rounds,
                                 logical_span))
    env.run(until=rounds * 2e-4 + 1.0)
    assert storengine.stats.erased_rows > 0
    for logical in live_logical:
        physical = flashvisor.mapping.lookup(logical)
        assert physical is not None
        # The maintained reverse direction agrees after arbitrary GC moves.
        assert flashvisor.mapping.reverse_lookup(physical) == logical
