"""Unit tests for admission control and the serving front-end/dispatcher."""

import pytest

from repro.serve import (
    DeadlineAwareAdmission,
    QueueDepthAdmission,
    Request,
    RequestStatus,
    ServingFrontend,
    SLOTracker,
)
from repro.policy import build_policy
from repro.serve.backends import ServingBackend
from repro.sim import Environment


class StubBackend(ServingBackend):
    """Fixed-service-time backend for front-end tests."""

    def __init__(self, env, capacity=2, service_s=0.1):
        super().__init__(env, kernel_factory=None, capacity=capacity)
        self.service_s = service_s
        self.order = []

    def dispatch(self, record, on_complete):
        self.in_flight += 1
        self.dispatched += 1
        self.order.append(record.request.request_id)
        self._procs.append(self.env.process(
            self._serve(record, on_complete)))

    def _serve(self, record, on_complete):
        yield self.env.timeout(self.service_s)
        self.in_flight -= 1
        on_complete(record, self.env.now)


def make_frontend(env, tenants=("a", "b"), capacity=2, service_s=0.1,
                  admission=None):
    backend = StubBackend(env, capacity=capacity, service_s=service_s)
    tracker = SLOTracker(tenants)
    frontend = ServingFrontend(
        env, backend,
        admission or build_policy("admission", "none"), tracker, tenants)
    return frontend, backend, tracker


def request(i, tenant="a", arrival=0.0, slo=None):
    return Request(request_id=i, tenant=tenant, workload="ATAX",
                   arrival_s=arrival, slo_s=slo)


def test_frontend_dispatches_up_to_capacity_and_completes():
    env = Environment()
    frontend, backend, tracker = make_frontend(env, capacity=2,
                                               service_s=0.1)

    def arrivals():
        for i in range(5):
            frontend.submit(request(i, "a"))
        frontend.close()
        yield env.timeout(0)

    env.process(arrivals())
    env.run()
    assert tracker.completed == 5
    assert tracker.rejected == 0
    assert backend.dispatched == 5
    assert frontend.drained
    # Two at a time: 5 requests x 0.1 s over capacity 2 -> 0.3 s makespan.
    assert env.now == pytest.approx(0.3)
    account = tracker.account("a")
    assert account.latency.count == 5
    assert account.latency.max == pytest.approx(0.3)


def test_frontend_round_robin_across_tenants():
    env = Environment()
    frontend, backend, _tracker = make_frontend(env, capacity=1,
                                                service_s=0.05)

    def arrivals():
        # Tenant a floods first, then tenant b files two requests; with
        # round-robin dispatch b must not wait for all of a's backlog.
        for i in range(4):
            frontend.submit(request(i, "a"))
        for i in range(4, 6):
            frontend.submit(request(i, "b"))
        frontend.close()
        yield env.timeout(0)

    env.process(arrivals())
    env.run()
    # First dispatch happens while only tenant a has arrivals; after that
    # the queues alternate.
    assert backend.order[:4] == [0, 4, 1, 5]


def test_queue_depth_admission_rejects_excess():
    env = Environment()
    admission = QueueDepthAdmission(max_tenant_depth=2)
    frontend, _backend, tracker = make_frontend(
        env, tenants=("a",), capacity=1, service_s=1.0, admission=admission)

    def arrivals():
        for i in range(6):
            frontend.submit(request(i, "a"))
            yield env.timeout(0)     # let the dispatcher react per arrival
        frontend.close()

    env.process(arrivals())
    env.run()
    # One dispatched immediately, two queued, the rest rejected on arrival.
    assert tracker.rejected == 3
    assert tracker.completed == 3
    rejected = [r for r in frontend.records
                if r.status is RequestStatus.REJECTED]
    assert len(rejected) == 3
    assert all(r.latency_s is None for r in rejected)


def test_deadline_admission_learns_and_rejects():
    admission = DeadlineAwareAdmission(ewma_alpha=0.5)

    class View:
        total_queued = 10
        in_flight = 2
        dispatch_capacity = 2

        def queue_depth(self, tenant):
            return 10

    view = View()
    generous = request(0, "a", slo=100.0)
    tight = request(1, "a", slo=0.5)
    # Before any completion feedback the estimator is blind, so the
    # cold-start window is bounded: a 12-deep backlog over capacity 2
    # exceeds the default two dispatch waves and is rejected, not
    # admitted blindly (the pre-fix behavior).
    assert not admission.admit(tight, view)
    admission.observe_service_time(0.2)
    # Backlog of 12 over capacity 2 -> 6 waves of 0.2 s + own service.
    assert admission.estimated_completion_s(view) == pytest.approx(1.4)
    assert not admission.admit(tight, view)
    assert admission.admit(generous, view)
    # EWMA follows the service-time signal.
    admission.observe_service_time(0.4)
    assert admission.service_estimate_s == pytest.approx(0.3)


def test_deadline_admission_in_frontend_rejects_hopeless_requests():
    env = Environment()
    admission = DeadlineAwareAdmission(ewma_alpha=1.0)
    frontend, _backend, tracker = make_frontend(
        env, tenants=("a",), capacity=1, service_s=0.2, admission=admission)

    def arrivals():
        frontend.submit(request(0, "a", slo=0.3))
        yield env.timeout(0.25)          # first completes, estimator learns
        for i in range(1, 6):
            frontend.submit(request(i, "a", slo=0.3))
        frontend.close()

    env.process(arrivals())
    env.run()
    # 0.2 s service vs. 0.3 s SLO: one more request fits, the backlog
    # beyond it is rejected at arrival instead of timing out in queue.
    assert tracker.completed >= 2
    assert tracker.rejected >= 2
    assert tracker.completed + tracker.rejected == 6


def test_build_admission_rejects_unknown_policy():
    with pytest.raises(ValueError):
        build_policy("admission", "magic")


def test_frontend_rejects_unknown_tenant():
    env = Environment()
    frontend, _backend, _tracker = make_frontend(env, tenants=("a",))
    with pytest.raises(ValueError):
        frontend.submit(request(0, "nobody"))
