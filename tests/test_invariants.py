"""Conservation invariants for serving and cluster runs.

Request accounting must be conserved at every level: nothing offered may
vanish (offered == admitted + rejected), every admitted request must
settle by the time a run drains (admitted == completed, in-flight == 0),
per-tenant counters must sum to the run totals, and fleet energy must be
the sum of the per-device totals.  Checked both at end-of-run (via the
reports) and *mid-run* (stepping a front-end manually), including runs
with mid-run device failures where requests migrate between devices.
"""

import pytest

from repro.cluster import run_cluster
from repro.platform import ClusterConfig, FaultSpec, PlatformConfig
from repro.serve import (
    Request,
    ServingFrontend,
    ServingScenario,
    SLOTracker,
    TenantSpec,
    run_serving,
)
from repro.policy import build_policy
from repro.sim import Environment

from helpers import StubBackend

SCENARIO = ServingScenario(
    process="poisson", offered_rps=480.0, duration_s=0.5, seed=9,
    tenants=(TenantSpec("a", 2.0, 0.25), TenantSpec("b", 1.0, 0.25)),
    max_queue_depth=8)

DEVICE = PlatformConfig(system="IntraO3", input_scale=0.01)


def assert_report_conserved(report):
    """The end-of-run invariants every serving-style report must satisfy."""
    assert report.offered == report.admitted + report.rejected
    # The session drains before reporting: nothing is in flight.
    assert report.admitted == report.completed
    assert report.slo_violations <= report.completed
    # Per-tenant counters sum to the run totals.
    for counter in ("offered", "admitted", "rejected", "completed",
                    "slo_violations"):
        total = sum(stats[counter] for stats in report.per_tenant.values())
        assert total == getattr(report, counter), counter


def test_serving_report_conservation():
    report = run_serving(SCENARIO, config=DEVICE)
    assert report.rejected > 0      # the load actually sheds; not vacuous
    assert_report_conserved(report)


def test_serving_report_conservation_baseline():
    report = run_serving(SCENARIO,
                         config=PlatformConfig(system="SIMD",
                                               input_scale=0.01))
    assert_report_conserved(report)


def test_cluster_report_conservation():
    report = run_cluster(SCENARIO, ClusterConfig.homogeneous(2, DEVICE))
    assert_report_conserved(report)
    # Fleet energy is exactly the sum of the per-device totals.
    assert report.energy_j == pytest.approx(
        sum(device.energy_j for device in report.devices))
    assert all(device.energy_j > 0 for device in report.devices)
    # Without failures, per-device counters also sum to fleet totals.
    for counter in ("admitted", "rejected", "completed"):
        assert sum(getattr(device, counter)
                   for device in report.devices) \
            == getattr(report, counter), counter


def test_cluster_conservation_survives_device_failure():
    """Failure rerouting must not leak or duplicate a single request."""
    cluster = ClusterConfig.homogeneous(
        3, DEVICE, faults=(FaultSpec(0.15, 1, "failed"),))
    report = run_cluster(SCENARIO.with_overrides(offered_rps=1500.0),
                         cluster)
    assert report.reroutes > 0
    assert_report_conserved(report)
    # Completions migrated across devices, yet still sum to the fleet
    # total (a request is completed on exactly one device).
    assert sum(device.completed for device in report.devices) \
        == report.completed
    assert report.energy_j == pytest.approx(
        sum(device.energy_j for device in report.devices))


def test_learned_feedback_accounting_is_conserved():
    """Feedback events == completed requests: one event per completion,
    no event for rejects, no double-count on reroutes."""
    from repro.policy import PolicySpec

    scenario = SCENARIO.with_overrides(
        admission_spec=PolicySpec("adaptive_admission"),
        dispatch_spec=PolicySpec("epsilon_greedy_dispatch"))
    cluster = ClusterConfig.homogeneous(
        3, DEVICE, placement_spec=PolicySpec("linucb_placement"),
        faults=(FaultSpec(0.15, 1, "failed"),))
    report = run_cluster(scenario.with_overrides(offered_rps=1500.0),
                         cluster)
    assert_report_conserved(report)
    assert report.reroutes > 0      # the failure path actually fired
    # The fleet-level placement bandit is wired to every shard
    # front-end, so it hears exactly one feedback event per completion
    # fleet-wide, pops every routed request, and saw each queued-request
    # migration exactly once (a rerouted request still learns once).
    placement = report.learned["placement"]
    assert placement["feedback_events"] == report.completed
    assert placement["reroute_events"] == report.reroutes
    # Placement selects a shard *before* that shard's admission rules,
    # so routed-then-rejected requests leave pending entries no feedback
    # ever pops; at drain the leftovers are exactly the rejects.
    assert placement["pending"] == report.rejected
    # Per-shard learned admission/dispatch snapshots live in the device
    # reports; each shard hears its own completions, which sum to the
    # fleet total.
    for domain in ("admission", "dispatch"):
        per_shard = [device.learned[domain]["feedback_events"]
                     for device in report.devices]
        assert sum(per_shard) == report.completed, domain


def test_mid_run_conservation_at_every_event():
    """offered == rejected + completed + queued + in-flight, at all times."""
    env = Environment()
    tenants = ("a", "b")
    backend = StubBackend(env, capacity=2, service_s=0.05)
    tracker = SLOTracker(tenants)
    frontend = ServingFrontend(
        env, backend,
        build_policy("admission", {"name": "queue_depth",
                                   "params": {"max_tenant_depth": 3}}),
        tracker, tenants)

    def arrivals():
        for i in range(20):
            frontend.submit(Request(request_id=i, tenant=tenants[i % 2],
                                    workload="ATAX", arrival_s=env.now))
            yield env.timeout(0.01)
        frontend.close()

    env.process(arrivals())
    while env.peek() != float("inf"):
        env.step()
        agg = tracker.aggregate
        assert agg.offered == agg.admitted + agg.rejected
        assert agg.offered == (agg.rejected + agg.completed
                               + frontend.total_queued
                               + backend.in_flight)
    assert frontend.drained
    assert tracker.aggregate.offered == 20
