"""Unit tests for Flashvisor: translation, protection, and timed mapping."""

import pytest

from repro.core.flashvisor import Flashvisor
from repro.core.kernel import build_kernel
from repro.flash.backbone import FlashBackbone
from repro.hw.interconnect import Interconnect
from repro.hw.lwp import LWPCluster
from repro.hw.memory import DDR3L, Scratchpad
from repro.hw.power import EnergyAccountant
from repro.sim import Environment

from helpers import run_process


@pytest.fixture
def flashvisor_setup(spec):
    env = Environment()
    energy = EnergyAccountant()
    cluster = LWPCluster(env, spec.lwp, energy)
    ddr = DDR3L(env, spec.memory, energy)
    scratchpad = Scratchpad(env, spec.memory, energy)
    interconnect = Interconnect(env, spec.interconnect)
    backbone = FlashBackbone(env, spec.flash, energy)
    flashvisor = Flashvisor(env, cluster.flashvisor_lwp, backbone, ddr,
                            scratchpad, interconnect.new_queue("fv"), energy)
    return env, flashvisor, backbone, energy


def make_kernel(input_bytes=1024 * 1024, output_bytes=1024):
    return build_kernel("k", total_instructions=1e6, input_bytes=input_bytes,
                        output_bytes=output_bytes, microblock_count=1,
                        serial_microblocks=0, screens_per_microblock=1)


# --------------------------------------------------------------------------- #
# Pure translation logic                                                       #
# --------------------------------------------------------------------------- #
def test_translate_read_maps_unmapped_groups_on_first_use(flashvisor_setup):
    _env, flashvisor, _backbone, _energy = flashvisor_setup
    groups = flashvisor.translate_read(0, 256 * 1024)
    assert len(groups) == 4          # 256 KB / 64 KB page groups
    # Repeating the translation returns the same physical groups.
    assert flashvisor.translate_read(0, 256 * 1024) == groups


def test_translate_write_allocates_fresh_groups(flashvisor_setup):
    _env, flashvisor, _backbone, _energy = flashvisor_setup
    first = flashvisor.translate_write(0, 128 * 1024)
    second = flashvisor.translate_write(0, 128 * 1024)
    assert first != second           # log-structured: new physical groups
    # The mapping table now points at the second allocation.
    current = [flashvisor.mapping.lookup(g)
               for g in range(len(second))]
    assert current == second


def test_translation_counts_are_tracked(flashvisor_setup):
    _env, flashvisor, _backbone, _energy = flashvisor_setup
    flashvisor.translate_read(0, 64 * 1024)
    flashvisor.translate_write(16384, 64 * 1024)
    assert flashvisor.stats.translations == 2


def test_mapping_table_fits_in_scratchpad(flashvisor_setup):
    _env, flashvisor, _backbone, _energy = flashvisor_setup
    # Paper: ~2 MB mapping for the 32 GB backbone, within the 4 MB scratchpad.
    assert flashvisor.mapping_table_bytes() == 2 * 1024 * 1024
    assert flashvisor.scratchpad.holds("flashvisor.mapping_table")


# --------------------------------------------------------------------------- #
# Timed mapping operations                                                     #
# --------------------------------------------------------------------------- #
def test_map_for_read_brings_data_into_ddr(flashvisor_setup):
    env, flashvisor, backbone, energy = flashvisor_setup
    kernel = make_kernel(input_bytes=4 * 1024 * 1024)

    result = run_process(env, flashvisor.map_for_read(kernel, 0,
                                                      kernel.input_bytes))
    assert result == kernel.input_bytes
    assert backbone.bulk_bytes_read == kernel.input_bytes
    assert flashvisor.ddr.bytes_written == kernel.input_bytes
    assert flashvisor.stats.read_requests == 1
    assert env.now > backbone.bulk_read_time(kernel.input_bytes)
    assert energy.breakdown.storage_access > 0


def test_map_for_write_buffers_in_ddr_without_flash_program(flashvisor_setup):
    env, flashvisor, backbone, _energy = flashvisor_setup
    kernel = make_kernel()

    result = run_process(env, flashvisor.map_for_write(kernel, 1 << 20,
                                                       512 * 1024))
    assert result == 512 * 1024
    assert flashvisor.pending_flush_bytes == 512 * 1024
    # The program itself is deferred to Storengine.
    assert backbone.bulk_bytes_written == 0


def test_map_zero_bytes_is_a_noop(flashvisor_setup):
    env, flashvisor, _backbone, _energy = flashvisor_setup
    kernel = make_kernel()
    assert run_process(env, flashvisor.map_for_read(kernel, 0, 0)) == 0
    assert flashvisor.stats.read_requests == 0


def test_releases_range_lock_after_mapping(flashvisor_setup):
    env, flashvisor, _backbone, _energy = flashvisor_setup
    kernel = make_kernel()
    run_process(env, flashvisor.map_for_read(kernel, 0, 128 * 1024))
    assert len(flashvisor.range_lock) == 0


def test_conflicting_write_mappings_serialize(flashvisor_setup):
    env, flashvisor, _backbone, _energy = flashvisor_setup
    kernel_a = make_kernel()
    kernel_b = make_kernel()
    order = []

    def writer(env, kernel, tag):
        yield from flashvisor.map_for_write(kernel, 0, 128 * 1024)
        order.append((tag, env.now))

    env.process(writer(env, kernel_a, "a"))
    env.process(writer(env, kernel_b, "b"))
    env.run()
    assert len(order) == 2
    assert flashvisor.stats.lock_conflicts > 0
    # The second writer must finish strictly after the first.
    assert order[1][1] > order[0][1]


def test_concurrent_readers_of_shared_input_do_not_conflict(flashvisor_setup):
    env, flashvisor, _backbone, _energy = flashvisor_setup
    kernel_a = make_kernel()
    kernel_b = make_kernel()

    def reader(env, kernel):
        yield from flashvisor.map_for_read(kernel, 0, 256 * 1024)

    env.process(reader(env, kernel_a))
    env.process(reader(env, kernel_b))
    env.run()
    assert flashvisor.stats.lock_conflicts == 0
    assert flashvisor.stats.read_requests == 2


def test_flashvisor_lwp_charged_for_translation(flashvisor_setup):
    env, flashvisor, _backbone, _energy = flashvisor_setup
    kernel = make_kernel(input_bytes=16 * 1024 * 1024)
    run_process(env, flashvisor.map_for_read(kernel, 0, kernel.input_bytes))
    assert flashvisor.lwp.busy_time() > 0
